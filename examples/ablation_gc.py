"""Ablation walk-through: what each half of the technique buys.

GCX = static projection + dynamic buffer minimization (active GC).
This example switches the two halves off independently and shows the
peak buffer for each configuration — the experiment that isolates the
paper's contribution from prior projection-only work.

Run with::

    python examples/ablation_gc.py
"""

from repro import GCXEngine
from repro.baselines import FullDomEngine
from repro.bench.reporting import format_table
from repro.xmark import ADAPTED_QUERIES, generate_document


def main() -> None:
    xml = generate_document(scale=4.0, seed=42)
    print(f"document: {len(xml):,} bytes")
    # One engine per configuration, reused across all queries — each
    # engine's plan cache compiles every query exactly once.
    full_engine = FullDomEngine(record_series=False)
    projection_engine = GCXEngine(gc_enabled=False, record_series=False)
    gcx_engine = GCXEngine(record_series=False)
    no_witness_engine = GCXEngine(first_witness=False, record_series=False)
    rows = []
    for key in ("q1", "q6", "q13", "q20", "q8"):
        query = ADAPTED_QUERIES[key]
        full = full_engine.query(query.text, xml)
        projection = projection_engine.query(query.text, xml)
        gcx = gcx_engine.query(query.text, xml)
        no_witness = no_witness_engine.query(query.text, xml)
        assert full.output == projection.output == gcx.output == no_witness.output
        rows.append(
            [
                key,
                full.stats.watermark,
                projection.stats.watermark,
                no_witness.stats.watermark,
                gcx.stats.watermark,
            ]
        )
    print()
    print("peak buffered nodes per configuration:")
    print(
        format_table(
            [
                "query",
                "no projection (DOM)",
                "projection only",
                "GCX w/o [1]",
                "GCX full",
            ],
            rows,
        )
    )
    print()
    print("reading: projection removes what the query never touches;")
    print("active GC removes what the query is *finished with* — the")
    print("difference between the last two columns is the paper's claim.")


if __name__ == "__main__":
    main()
