"""XMark workloads: streaming vs blocking queries (paper Figure 4/5).

Generates an XMark-style auction document, runs the adapted Q6
(streamable descendant scan) and Q8 (value join) with GCX, plots both
buffer profiles, and compares all four engines on the join.

Run with::

    python examples/xmark_join_analysis.py [scale]
"""

import sys

from repro import GCXEngine
from repro.baselines import (
    FluxLikeEngine,
    FullDomEngine,
    ProjectionOnlyEngine,
    UnsupportedQueryError,
)
from repro.bench.harness import compare_engines
from repro.bench.reporting import ascii_plot, format_table
from repro.xmark import ADAPTED_QUERIES, XMARK_DTD, generate_document
from repro.xmlio.dtd import parse_dtd


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 4.0
    xml = generate_document(scale=scale, seed=42)
    print(f"document: scale={scale}, {len(xml):,} bytes")
    print()

    engine = GCXEngine()
    for key, title in (("q6", "Q6 — items below regions (streaming)"),
                       ("q8", "Q8 — people x closed_auctions join (blocking)")):
        result = engine.query(ADAPTED_QUERIES[key].text, xml)
        print(ascii_plot(result.stats.series, width=70, height=12, title=title))
        print(f"    {result.stats.summary()}")
        print()

    # Push mode produces the very same evaluation: feed Q6 chunk by
    # chunk through a StreamSession and compare against the pull run.
    plan = engine.compile(ADAPTED_QUERIES["q6"].text)
    session = engine.session(plan)
    for start in range(0, len(xml), 4096):
        session.feed(xml[start : start + 4096])
    pushed = session.finish()
    pulled = engine.run(plan, xml)
    print(
        "push-mode session (4 KiB chunks) matches pull mode: "
        f"output={pushed.output == pulled.output} "
        f"watermark={pushed.stats.watermark}=={pulled.stats.watermark}"
    )
    print()

    print("engine comparison on the join (Q8):")
    engines = [
        GCXEngine(record_series=False),
        FluxLikeEngine(dtd=parse_dtd(XMARK_DTD), record_series=False),
        ProjectionOnlyEngine(record_series=False),
        FullDomEngine(record_series=False),
    ]
    results = compare_engines(engines, ADAPTED_QUERIES["q8"].text, xml, "q8", "doc")
    print(
        format_table(
            ["engine", "time", "peak nodes", "est. memory"],
            [
                [r.engine, f"{r.seconds:.2f}s", r.watermark, r.cell().split(" / ")[1]]
                for r in results
            ],
        )
    )
    print()
    print("note: the FluX-like engine reports n/a for Q6 (descendant axis),")
    print("mirroring FluXQuery's n/a entries in the paper's Figure 5:")
    try:
        FluxLikeEngine(dtd=parse_dtd(XMARK_DTD)).compile(ADAPTED_QUERIES["q6"].text)
    except UnsupportedQueryError as exc:
        print(f"  UnsupportedQueryError: {exc}")


if __name__ == "__main__":
    main()
