"""Quickstart: compile and run a streaming XQuery with GCX.

Run with::

    python examples/quickstart.py
"""

from repro import GCXEngine

XML = """
<library>
  <book year="2007"><title>Streaming XQuery</title><pages>12</pages></book>
  <book year="1999"><title>Old Classics</title><pages>400</pages></book>
  <journal><title>VLDB Proceedings</title></journal>
  <book year="2006"><title>Buffer Management</title><pages>8</pages></book>
</library>
"""

QUERY = """
<recent> {
  for $b in /library/book return
    if ($b/@year >= 2006) then <hit>{ $b/title }</hit> else ()
} </recent>
"""


def main() -> None:
    engine = GCXEngine()

    # One-shot evaluation:
    result = engine.query(QUERY, XML)
    print("result:")
    print(" ", result.output)
    print()

    # What the engine measured while streaming:
    stats = result.stats
    print("run statistics:")
    print(f"  tokens processed ....... {stats.tokens}")
    print(f"  peak buffered nodes .... {stats.watermark}")
    print(f"  nodes ever buffered .... {stats.nodes_buffered}")
    print(f"  nodes purged by GC ..... {stats.nodes_purged}")
    print(f"  buffered at the end .... {stats.final_buffered}")
    print()

    # The static analysis behind it: projection paths become roles and
    # signOff statements (the paper's Figure 3(a) visualisation).
    compiled = engine.compile(QUERY)
    print("static analysis:")
    print(compiled.describe())


if __name__ == "__main__":
    main()
