"""Quickstart: compile once, stream many with GCX.

Shows the three ways to drive the engine — one-shot evaluation, the
compile-once plan reused across documents (with the plan cache doing
the bookkeeping), and a push-based :class:`StreamSession` fed the
document in arbitrary chunks, the way a server would.

Run with::

    python examples/quickstart.py
"""

from repro import GCXEngine

XML = """
<library>
  <book year="2007"><title>Streaming XQuery</title><pages>12</pages></book>
  <book year="1999"><title>Old Classics</title><pages>400</pages></book>
  <journal><title>VLDB Proceedings</title></journal>
  <book year="2006"><title>Buffer Management</title><pages>8</pages></book>
</library>
"""

MORE_XML = """
<library>
  <book year="2024"><title>Chunked Parsing</title><pages>7</pages></book>
</library>
"""

QUERY = """
<recent> {
  for $b in /library/book return
    if ($b/@year >= 2006) then <hit>{ $b/title }</hit> else ()
} </recent>
"""


def main() -> None:
    engine = GCXEngine()

    # One-shot evaluation:
    result = engine.query(QUERY, XML)
    print("result:")
    print(" ", result.output)
    print()

    # What the engine measured while streaming:
    stats = result.stats
    print("run statistics:")
    print(f"  tokens processed ....... {stats.tokens}")
    print(f"  peak buffered nodes .... {stats.watermark}")
    print(f"  nodes ever buffered .... {stats.nodes_buffered}")
    print(f"  nodes purged by GC ..... {stats.nodes_purged}")
    print(f"  buffered at the end .... {stats.final_buffered}")
    print()

    # Compile once, stream many: static analysis runs a single time,
    # then the immutable plan serves any number of documents.
    plan = engine.compile(QUERY)
    for label, doc in (("XML", XML), ("MORE_XML", MORE_XML)):
        print(f"plan over {label}: {engine.run(plan, doc).output}")
    print(f"plan cache: {engine.plan_cache.stats}")
    print()

    # Push mode: feed the document in arbitrary chunks (here: tiny
    # 16-character pieces) through a StreamSession.  Output, watermark
    # and series are identical to the one-shot run above.
    session = engine.session(plan)
    for start in range(0, len(XML), 16):
        session.feed(XML[start : start + 16])
    streamed = session.finish()
    print("session result:", streamed.output)
    print("identical to one-shot:", streamed.output == result.output)
    print()

    # The static analysis behind it: projection paths become roles and
    # signOff statements (the paper's Figure 3(a) visualisation).
    print("static analysis:")
    print(plan.describe())


if __name__ == "__main__":
    main()
