"""The paper's running example, end to end.

Reproduces the demo walk-through of Sections 1–3: the bib query, its
roles r1–r7, the rewritten query with signOff statements, the buffer
snapshot of Figure 1, and the buffer profiles of Figures 3(b) and 3(c).

Run with::

    python examples/bib_buffer_demo.py
"""

from repro import GCXEngine
from repro.bench.reporting import ascii_plot
from repro.core.buffer import Buffer
from repro.core.matcher import PathMatcher
from repro.core.projector import StreamProjector
from repro.datasets.bib import (
    BIB_QUERY,
    figure3b_document,
    figure3c_document,
)
from repro.xmlio.lexer import make_lexer


def show_static_analysis(engine: GCXEngine) -> None:
    compiled = engine.compile(BIB_QUERY)
    print("=" * 70)
    print("STATIC ANALYSIS (paper Section 2)")
    print("=" * 70)
    print(compiled.describe())
    print()


def show_figure1(engine: GCXEngine) -> None:
    """Project the stream prefix of Figure 1(a) and print the buffer
    with its role annotations."""
    print("=" * 70)
    print("FIGURE 1(a): buffer for prefix <bib><book><title/><author/></book>...")
    print("=" * 70)
    compiled = engine.compile(BIB_QUERY)
    buffer = Buffer()
    matcher = PathMatcher(
        [(role.name, role.path) for role in compiled.analysis.roles]
    )
    projector = StreamProjector(
        make_lexer("<bib><book><title/><author/></book></bib>"), matcher, buffer
    )
    projector.run_to_end()
    print(buffer.render())
    print()


def show_figure3(engine: GCXEngine) -> None:
    print("=" * 70)
    print("FIGURE 3: dynamic buffer management")
    print("=" * 70)
    for label, document in (
        ("(b) 9 x article + 1 x book", figure3b_document()),
        ("(c) 9 x book + 1 x article", figure3c_document()),
    ):
        result = engine.query(BIB_QUERY, document)
        print(ascii_plot(result.stats.series, width=60, height=12, title=label))
        print(f"    output: {result.output}")
        print(f"    {result.stats.summary()}")
        print()


def main() -> None:
    engine = GCXEngine()
    show_static_analysis(engine)
    show_figure1(engine)
    show_figure3(engine)
    print("paper check: Figure 3(c) reports 23 buffered nodes at </bib>;")
    result = engine.query(BIB_QUERY, figure3c_document())
    print(f"measured watermark: {result.stats.watermark}")


if __name__ == "__main__":
    main()
