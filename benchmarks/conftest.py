"""Shared fixtures and report plumbing for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures and
writes a plain-text report into ``benchmarks/results/``; the pytest
terminal summary lists the files so they are easy to find after
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os

import pytest

from repro.xmark.generator import generate_document

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_written: list[str] = []


def write_report(name: str, content: str) -> str:
    """Write a report file and remember it for the terminal summary."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
    _written.append(path)
    return path


def pytest_terminal_summary(terminalreporter):
    if _written:
        terminalreporter.write_sep("-", "paper reproduction reports")
        for path in _written:
            terminalreporter.write_line(path)


@pytest.fixture(scope="session")
def xmark_fig4():
    """Document for the Figure 4 buffer plots (~0.5 MB, ~40k tokens —
    the paper used a 10 MB document; the section order and join
    cardinalities, which shape the plots, are preserved)."""
    return generate_document(scale=8.0, seed=42)


@pytest.fixture(scope="session")
def xmark_scales():
    """The four document sizes of the Figure 5 table, scaled down
    1000x from the paper's 10/50/100/200 MB."""
    return {
        "10KB": generate_document(scale_for("10KB"), seed=1),
        "50KB": generate_document(scale_for("50KB"), seed=2),
        "100KB": generate_document(scale_for("100KB"), seed=3),
        "200KB": generate_document(scale_for("200KB"), seed=4),
    }


def scale_for(label: str) -> float:
    from repro.xmark.generator import scale_for_bytes

    target = int(label.replace("KB", "")) * 1000
    return scale_for_bytes(target)
