"""Per-stage profiling harness: where does a streamed byte go?

Times (and optionally cProfiles) each pipeline stage in isolation over
one XMark document, so a perf regression can be attributed to a layer
— lexer, projector, evaluator — instead of showing up only as a slower
end-to-end number.  Stages build on each other, so the deltas between
consecutive rows approximate each layer's own cost:

* ``lexer_str``      — str event fast path (the oracle scanner)
* ``lexer_bytes``    — bytes-domain event fast path (DESIGN.md §11)
* ``projector``      — compiled DFA projector over the bytes lexer
  (XMark Q1's path set: mostly ``skip_subtree``)
* ``engine``         — full compiled run (projector + VM + writer),
  bytes input
* ``engine_str``     — the same over str input (what the engine paid
  before the bytes path, minus the wire decode it also needed)

``--kernel`` selects which kernel tier the projector/engine stages
run: the table-driven interpreters (``tables``), the per-plan
generated code of DESIGN.md §12 (``codegen``), or — the default —
``both``, which emits one row per variant (``projector:tables`` next
to ``projector:codegen``) so the generated kernels' margin is itself
a per-stage attribution.

Usage::

    PYTHONPATH=src python benchmarks/profile_stages.py
    PYTHONPATH=src python benchmarks/profile_stages.py --scale 16 \
        --kernel codegen --cprofile engine:codegen --top 15
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time

from repro.bench.reporting import format_table
from repro.core.buffer import Buffer
from repro.core.codegen import GeneratedStreamProjector
from repro.core.engine import GCXEngine
from repro.core.projector import CompiledStreamProjector
from repro.xmark.generator import generate_document
from repro.xmark.queries import ADAPTED_QUERIES
from repro.xmlio.lexer import make_lexer


def _drain_events(source):
    lexer = make_lexer(source)
    sink: list = []
    count = 0
    while True:
        got = lexer.tokens_into(sink)
        if not got:
            return count + len(sink)
        count += len(sink)
        sink.clear()


def build_stages(scale: float, query_key: str, kernel: str = "both"):
    """Return ``(document_bytes, [(stage, callable), ...])``.

    *kernel* is ``tables``, ``codegen`` or ``both``; the projector and
    engine stages appear once per selected kernel tier, suffixed with
    the tier name when more than one is selected.
    """
    document = generate_document(scale=scale, seed=42)
    data = document.encode("utf-8")
    variants = ("tables", "codegen") if kernel == "both" else (kernel,)

    def projector_only(plan, use_codegen):
        def run():
            buffer = Buffer()
            buffer.stats.record_series = False
            lexer = make_lexer(data)
            if use_codegen:
                GeneratedStreamProjector(
                    plan.kernels.projector, lexer, plan.dfa, buffer
                ).run_to_end()
            else:
                CompiledStreamProjector(lexer, plan.dfa, buffer).run_to_end()
            return buffer.stats.tokens

        return run

    stages = [
        ("lexer_str", lambda: _drain_events(document)),
        ("lexer_bytes", lambda: _drain_events(data)),
    ]
    suffix = (lambda name, v: f"{name}:{v}") if len(variants) > 1 else (
        lambda name, _v: name
    )
    for variant in variants:
        use_codegen = variant == "codegen"
        engine = GCXEngine(record_series=False, codegen=use_codegen)
        plan = engine.compile(ADAPTED_QUERIES[query_key].text)
        if use_codegen and (
            plan.kernels is None or plan.kernels.projector is None
        ):
            raise SystemExit(
                f"query {query_key} has no generated projector kernel"
            )
        stages.append(
            (suffix("projector", variant), projector_only(plan, use_codegen))
        )
        stages.append(
            (
                suffix("engine", variant),
                lambda engine=engine, plan=plan: engine.run(plan, data),
            )
        )
    # the str-input engine row attributes the wire-decode cost, one
    # tier is enough: use the last configured engine
    stages.append(
        ("engine_str", lambda engine=engine, plan=plan: engine.run(plan, document))
    )
    return data, stages


def time_stage(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=8.0, help="XMark scale")
    parser.add_argument("--query", default="q1", choices=sorted(ADAPTED_QUERIES))
    parser.add_argument("--repeat", type=int, default=3, help="runs per stage")
    parser.add_argument(
        "--kernel",
        default="both",
        choices=("tables", "codegen", "both"),
        help="kernel tier for the projector/engine stages: the "
        "table-driven interpreters, the generated per-plan code, or "
        "one row per tier (default)",
    )
    parser.add_argument(
        "--cprofile",
        metavar="STAGE",
        help="additionally cProfile one stage and print its hottest functions",
    )
    parser.add_argument("--top", type=int, default=12, help="cProfile rows")
    args = parser.parse_args(argv)

    data, stages = build_stages(args.scale, args.query, args.kernel)
    mb = len(data) / 1e6

    rows = []
    previous = None
    for stage, fn in stages:
        seconds = time_stage(fn, args.repeat)
        delta = "" if previous is None else f"{(seconds - previous) * 1000:+.1f}"
        rows.append(
            [stage, f"{seconds * 1000:.1f}", f"{mb / seconds:.2f}", delta]
        )
        previous = seconds
    print(f"document: {mb:.3f} MB (scale {args.scale}), query {args.query}")
    print(
        format_table(
            ["stage", "ms (best)", "MB/s", "delta ms vs previous"], rows
        )
    )

    if args.cprofile:
        wanted = dict(stages)
        if args.cprofile not in wanted:
            parser.error(
                f"unknown stage {args.cprofile!r}; "
                f"pick one of {', '.join(name for name, _ in stages)}"
            )
        print(f"\ncProfile of stage {args.cprofile!r}:")
        profiler = cProfile.Profile()
        profiler.enable()
        wanted[args.cprofile]()
        profiler.disable()
        pstats.Stats(profiler).sort_stats("tottime").print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
