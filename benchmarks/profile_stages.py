"""Per-stage profiling harness: where does a streamed byte go?

Times (and optionally cProfiles) each pipeline stage in isolation over
one XMark document, so a perf regression can be attributed to a layer
— lexer, projector, evaluator — instead of showing up only as a slower
end-to-end number.  Stages build on each other, so the deltas between
consecutive rows approximate each layer's own cost:

* ``lexer_str``      — str event fast path (the oracle scanner)
* ``lexer_bytes``    — bytes-domain event fast path (DESIGN.md §11)
* ``projector``      — compiled DFA projector over the bytes lexer
  (XMark Q1's path set: mostly ``skip_subtree``)
* ``engine``         — full compiled run (projector + VM + writer),
  bytes input
* ``engine_str``     — the same over str input (what the engine paid
  before the bytes path, minus the wire decode it also needed)

``--kernel`` selects which kernel tier the projector/engine stages
run: the table-driven interpreters (``tables``), the per-plan
generated code of DESIGN.md §12 with the per-event lexer pull
(``codegen``), the fused batch-scan lexer front-end of DESIGN.md §15
(``fused``), or — the default — ``both``, which emits one row per
variant (``projector:tables`` next to ``projector:codegen`` and
``projector:fused``) so each tier's margin is itself a per-stage
attribution.

A second table attributes the lexer's *own* cost per routine —
markup dispatch, text scanning, entity resolution, and chunked-input
refill — by draining same-size synthesized documents each dominated
by exactly one routine, and reports which scanner backend ran
(``repro.xmlio.cscan.status``: the compiled C batch scanner or the
pure-Python fallback).

Usage::

    PYTHONPATH=src python benchmarks/profile_stages.py
    PYTHONPATH=src python benchmarks/profile_stages.py --scale 16 \
        --kernel codegen --cprofile engine:codegen --top 15
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time

from repro.bench.reporting import format_table
from repro.core.buffer import Buffer
from repro.core.codegen import GeneratedStreamProjector
from repro.core.engine import GCXEngine
from repro.core.projector import CompiledStreamProjector
from repro.xmark.generator import generate_document
from repro.xmark.queries import ADAPTED_QUERIES
from repro.xmlio import cscan
from repro.xmlio.lexer import make_lexer


def _drain_events(source):
    lexer = make_lexer(source)
    sink: list = []
    count = 0
    while True:
        got = lexer.tokens_into(sink)
        if not got:
            return count + len(sink)
        count += len(sink)
        sink.clear()


def _attribution_documents(size: int) -> list:
    """Synthesized ~*size*-byte documents, each dominated by exactly
    one lexer routine, so the routine's cost shows up as that row's
    throughput (markup-heavy XMark sits between the extremes)."""

    def fill(unit: bytes) -> bytes:
        return b"<r>" + unit * max(1, (size - 7) // len(unit)) + b"</r>"

    return [
        # attr-less two-level elements with one-char text: nearly every
        # scanned byte is a tag — times the markup dispatch
        ("markup dispatch", fill(b"<a><b>x</b><c>y</c></a>")),
        # long entity-free character runs: times the bulk text scan
        (
            "text scan",
            fill(
                b"<p>"
                + b"streaming xml projection pays for text scans " * 23
                + b"</p>"
            ),
        ),
        # text dense with references: every run needs entity resolution
        (
            "entity resolution",
            fill(b"<p>" + b"&amp;&lt;fish&gt;&#64;chips " * 37 + b"</p>"),
        ),
    ]


def build_lexer_stages(size: int) -> list:
    """Per-routine lexer rows: ``(name, document_bytes, callable)``.

    The refill row drains the markup document through the chunked
    (pull-mode) lexer; its delta against the whole-buffer markup row
    is the per-refill bookkeeping the batch scanner must amortize.
    """
    stages = [
        (name, doc, lambda doc=doc: _drain_events(doc))
        for name, doc in _attribution_documents(size)
    ]
    markup = stages[0][1]
    chunks = [markup[i : i + 4096] for i in range(0, len(markup), 4096)]
    stages.append(
        (
            "refill (4 KiB chunks)",
            markup,
            lambda chunks=chunks: _drain_events(iter(chunks)),
        )
    )
    return stages


def build_stages(scale: float, query_key: str, kernel: str = "both"):
    """Return ``(document_bytes, [(stage, callable), ...])``.

    *kernel* is ``tables``, ``codegen`` or ``both``; the projector and
    engine stages appear once per selected kernel tier, suffixed with
    the tier name when more than one is selected.
    """
    document = generate_document(scale=scale, seed=42)
    data = document.encode("utf-8")
    variants = ("tables", "codegen", "fused") if kernel == "both" else (kernel,)

    def projector_only(plan, variant):
        def run():
            buffer = Buffer()
            buffer.stats.record_series = False
            lexer = make_lexer(data)
            if variant == "fused":
                GeneratedStreamProjector(
                    plan.kernels.lexer, lexer, plan.dfa, buffer
                ).run_to_end()
            elif variant == "codegen":
                GeneratedStreamProjector(
                    plan.kernels.projector, lexer, plan.dfa, buffer
                ).run_to_end()
            else:
                CompiledStreamProjector(lexer, plan.dfa, buffer).run_to_end()
            return buffer.stats.tokens

        return run

    stages = [
        ("lexer_str", lambda: _drain_events(document)),
        ("lexer_bytes", lambda: _drain_events(data)),
    ]
    suffix = (lambda name, v: f"{name}:{v}") if len(variants) > 1 else (
        lambda name, _v: name
    )
    for variant in variants:
        use_codegen = variant != "tables"
        engine = GCXEngine(
            record_series=False,
            codegen=use_codegen,
            fused_lexer=variant == "fused",
        )
        plan = engine.compile(ADAPTED_QUERIES[query_key].text)
        if variant == "codegen" and (
            plan.kernels is None or plan.kernels.projector is None
        ):
            raise SystemExit(
                f"query {query_key} has no generated projector kernel"
            )
        if variant == "fused" and (
            plan.kernels is None or plan.kernels.lexer is None
        ):
            if kernel == "fused":
                raise SystemExit(
                    f"query {query_key} has no fused lexer kernel"
                )
            continue  # plan declined fusion; skip the tier's rows
        stages.append(
            (suffix("projector", variant), projector_only(plan, variant))
        )
        stages.append(
            (
                suffix("engine", variant),
                lambda engine=engine, plan=plan: engine.run(plan, data),
            )
        )
    # the str-input engine row attributes the wire-decode cost, one
    # tier is enough: use the last configured engine
    stages.append(
        ("engine_str", lambda engine=engine, plan=plan: engine.run(plan, document))
    )
    return data, stages


def time_stage(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=8.0, help="XMark scale")
    parser.add_argument("--query", default="q1", choices=sorted(ADAPTED_QUERIES))
    parser.add_argument("--repeat", type=int, default=3, help="runs per stage")
    parser.add_argument(
        "--kernel",
        default="both",
        choices=("tables", "codegen", "fused", "both"),
        help="kernel tier for the projector/engine stages: the "
        "table-driven interpreters, the generated per-plan code with "
        "per-event lexing, the fused batch-scan lexer front-end, or "
        "one row per tier (default)",
    )
    parser.add_argument(
        "--cprofile",
        metavar="STAGE",
        help="additionally cProfile one stage and print its hottest functions",
    )
    parser.add_argument("--top", type=int, default=12, help="cProfile rows")
    args = parser.parse_args(argv)

    data, stages = build_stages(args.scale, args.query, args.kernel)
    mb = len(data) / 1e6

    rows = []
    previous = None
    for stage, fn in stages:
        seconds = time_stage(fn, args.repeat)
        delta = "" if previous is None else f"{(seconds - previous) * 1000:+.1f}"
        rows.append(
            [stage, f"{seconds * 1000:.1f}", f"{mb / seconds:.2f}", delta]
        )
        previous = seconds
    print(f"document: {mb:.3f} MB (scale {args.scale}), query {args.query}")
    print(
        format_table(
            ["stage", "ms (best)", "MB/s", "delta ms vs previous"], rows
        )
    )

    lexer_rows = []
    for name, doc, fn in build_lexer_stages(len(data)):
        seconds = time_stage(fn, args.repeat)
        lexer_rows.append(
            [
                name,
                f"{len(doc) / 1e6:.3f}",
                f"{seconds * 1000:.1f}",
                f"{len(doc) / 1e6 / seconds:.2f}",
            ]
        )
    # cscan.status reflects what actually ran above: "active" for the
    # compiled batch scanner, otherwise the reason the pure-Python
    # fallback was used (no compiler, GCX_NO_CSCAN, self-test, ...)
    print(f"\nlexer attribution (bytes scanner: {cscan.status}):")
    print(format_table(["routine", "MB", "ms (best)", "MB/s"], lexer_rows))

    if args.cprofile:
        wanted = dict(stages)
        if args.cprofile not in wanted:
            parser.error(
                f"unknown stage {args.cprofile!r}; "
                f"pick one of {', '.join(name for name, _ in stages)}"
            )
        print(f"\ncProfile of stage {args.cprofile!r}:")
        profiler = cProfile.Profile()
        profiler.enable()
        wanted[args.cprofile]()
        profiler.disable()
        pstats.Stats(profiler).sort_stats("tottime").print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
