"""Extension benchmark: the original-form XMark queries.

The paper adapted XMark's queries because GCX did "not yet cover
aggregation".  Our reproduction implements aggregation and attribute
value templates as extensions, so the queries also run in (near-)
original form.  This benchmark compares the adapted and original
forms: the buffering class of each query must not change, which
demonstrates that the 2007 adaptations preserved the experiments'
meaning — and that counting is *cheaper* than materializing output
(count roles buffer matched nodes, not subtrees).
"""

from __future__ import annotations

from conftest import write_report

from repro.baselines import FullDomEngine
from repro.bench.reporting import format_table
from repro.core.engine import GCXEngine
from repro.xmark.queries import ADAPTED_QUERIES, EXTRA_QUERIES


PAIRS = (
    ("q6", "q6-original"),
    ("q8", "q8-original"),
    ("q13", "q13-original"),
)


def test_original_forms_match_oracle(benchmark, xmark_fig4):
    gcx = GCXEngine(record_series=False)
    dom = FullDomEngine(record_series=False)
    for key in ("q6-original", "q8-original", "q13-original"):
        query = EXTRA_QUERIES[key]
        assert (
            gcx.query(query.text, xmark_fig4).output
            == dom.query(query.text, xmark_fig4).output
        ), key
    benchmark.pedantic(
        lambda: gcx.query(EXTRA_QUERIES["q13-original"].text, xmark_fig4),
        rounds=3,
        iterations=1,
    )


def test_original_vs_adapted_buffering_class(benchmark, xmark_fig4):
    engine = GCXEngine(record_series=False)
    rows = []
    watermarks = {}
    for adapted_key, original_key in PAIRS:
        adapted = engine.query(ADAPTED_QUERIES[adapted_key].text, xmark_fig4)
        original = engine.query(EXTRA_QUERIES[original_key].text, xmark_fig4)
        watermarks[adapted_key] = adapted.stats.watermark
        watermarks[original_key] = original.stats.watermark
        rows.append(
            [
                adapted_key,
                adapted.stats.watermark,
                original.stats.watermark,
                f"{original.stats.elapsed:.2f}s",
            ]
        )
    benchmark.pedantic(
        lambda: engine.query(EXTRA_QUERIES["q6-original"].text, xmark_fig4),
        rounds=1,
        iterations=1,
    )
    write_report(
        "extensions_original_forms.txt",
        "Extension study: adapted (2007) vs original-form XMark queries\n\n"
        + format_table(
            ["query", "adapted watermark", "original watermark", "original time"],
            rows,
        ),
    )
    # Q13 stays streaming in both forms.
    assert watermarks["q13-original"] < 60
    # counting Q6 holds every matched item node until the aggregate's
    # scope ($r) closes — but NOT their subtrees: the buffer stays an
    # order of magnitude below the full projected regions section
    items = xmark_fig4.count("<item ")
    assert items <= watermarks["q6-original"] <= items + 20
    # the join stays blocking in both forms
    assert watermarks["q8-original"] > 100
