"""Ablation benchmarks (experiments A1, A2 in DESIGN.md).

A1 isolates the *dynamic* half of the paper's contribution: the same
engine with signOff execution disabled degenerates to static
projection.  A2 isolates the first-witness ``[1]`` optimisation on
existence tests.  A third study shows the multi-pass workload
(grouped Q20) where active GC cannot beat projection — the boundary of
the technique.
"""

from __future__ import annotations

from conftest import write_report

from repro.bench.reporting import format_table
from repro.core.engine import GCXEngine
from repro.datasets.bib import BIB_QUERY, make_bib_document
from repro.xmark.queries import ADAPTED_QUERIES, EXTRA_QUERIES


def test_ablation_gc(benchmark, xmark_fig4):
    """A1: active GC on vs off, per adapted query."""
    rows = []
    ratios = {}
    for key in ("q1", "q6", "q8", "q13", "q20"):
        query = ADAPTED_QUERIES[key]
        on = GCXEngine(record_series=False).query(query.text, xmark_fig4)
        off = GCXEngine(gc_enabled=False, record_series=False).query(
            query.text, xmark_fig4
        )
        assert on.output == off.output
        ratios[key] = off.stats.watermark / max(1, on.stats.watermark)
        rows.append(
            [
                key,
                on.stats.watermark,
                off.stats.watermark,
                f"{ratios[key]:.1f}x",
            ]
        )
    benchmark.pedantic(
        lambda: GCXEngine(record_series=False).query(
            ADAPTED_QUERIES["q1"].text, xmark_fig4
        ),
        rounds=1,
        iterations=1,
    )
    write_report(
        "ablation_gc.txt",
        "A1: peak buffered nodes, active GC on vs off (static projection)\n\n"
        + format_table(["query", "gc on", "gc off", "reduction"], rows),
    )
    # streaming queries gain an order of magnitude; the join gains little
    assert ratios["q1"] > 10
    assert ratios["q6"] > 10
    assert ratios["q13"] > 5
    assert ratios["q8"] < 3


def test_ablation_first_witness(benchmark):
    """A2: the [1] predicate on existence tests bounds witness buffering."""
    # a document whose entries have many potential witnesses
    entries = "".join(
        "<entry>" + "<price>1</price>" * 30 + "</entry>" for _ in range(10)
    )
    xml = f"<bib>{entries}</bib>"
    query = (
        "for $x in /bib/entry return "
        'if (exists $x/price) then "y" else "n"'
    )
    fast = GCXEngine(record_series=False).query(query, xml)
    slow = GCXEngine(first_witness=False, record_series=False).query(query, xml)
    benchmark.pedantic(
        lambda: GCXEngine(record_series=False).query(query, xml),
        rounds=3,
        iterations=1,
    )
    write_report(
        "ablation_first_witness.txt",
        "A2: peak buffered nodes for an exists-heavy query\n\n"
        + format_table(
            ["variant", "watermark"],
            [
                ["[1] first witness", fast.stats.watermark],
                ["all witnesses", slow.stats.watermark],
            ],
        ),
    )
    assert fast.output == slow.output
    assert fast.stats.watermark * 5 < slow.stats.watermark


def test_ablation_multipass_boundary(benchmark, xmark_fig4):
    """Grouped Q20 needs four passes over people: GC degenerates to
    projection — the documented boundary of active garbage collection."""
    single = GCXEngine(record_series=False).query(
        ADAPTED_QUERIES["q20"].text, xmark_fig4
    )
    grouped = GCXEngine(record_series=False).query(
        EXTRA_QUERIES["q20-grouped"].text, xmark_fig4
    )
    grouped_nogc = GCXEngine(gc_enabled=False, record_series=False).query(
        EXTRA_QUERIES["q20-grouped"].text, xmark_fig4
    )
    benchmark.pedantic(
        lambda: GCXEngine(record_series=False).query(
            ADAPTED_QUERIES["q20"].text, xmark_fig4
        ),
        rounds=1,
        iterations=1,
    )
    write_report(
        "ablation_multipass.txt",
        "Boundary study: single-pass vs grouped (multi-pass) Q20\n\n"
        + format_table(
            ["variant", "watermark"],
            [
                ["q20 single pass, gc on", single.stats.watermark],
                ["q20 grouped, gc on", grouped.stats.watermark],
                ["q20 grouped, gc off", grouped_nogc.stats.watermark],
            ],
        ),
    )
    assert single.stats.watermark * 5 < grouped.stats.watermark
    # on a multi-pass query GC buys almost nothing over projection
    assert grouped.stats.watermark > 0.8 * grouped_nogc.stats.watermark


def test_ablation_signoff_granularity(benchmark):
    """Per-node preemption (GCX) vs scope-coarsened signOffs (the
    FluX-like placement) on the paper's bib example at larger sizes."""
    from repro.baselines import FluxLikeEngine
    from repro.xmlio.dtd import parse_dtd

    dtd = parse_dtd("<!ELEMENT bib (book|article)*>")
    xml = make_bib_document(["book", "article"] * 100)
    gcx = GCXEngine(record_series=False).query(BIB_QUERY, xml)
    flux = FluxLikeEngine(dtd=dtd, record_series=False).query(BIB_QUERY, xml)
    benchmark.pedantic(
        lambda: GCXEngine(record_series=False).query(BIB_QUERY, xml),
        rounds=3,
        iterations=1,
    )
    write_report(
        "ablation_granularity.txt",
        "signOff granularity: per-node (gcx) vs scope (flux-like)\n\n"
        + format_table(
            ["engine", "watermark"],
            [["gcx", gcx.stats.watermark], ["flux-like", flux.stats.watermark]],
        ),
    )
    assert gcx.output == flux.output
    assert gcx.stats.watermark < flux.stats.watermark
