"""Microbenchmarks: throughput of the pipeline stages.

Not a paper table, but the numbers the paper's timing column depends
on: raw lexer speed, projector speed with a selective vs subtree-heavy
path set, and full engine throughput.  Useful for tracking performance
regressions of the reproduction itself.
"""

from __future__ import annotations

import pytest

from repro.core.buffer import Buffer
from repro.core.engine import GCXEngine
from repro.core.matcher import PathMatcher
from repro.core.projector import StreamProjector
from repro.xmark.queries import ADAPTED_QUERIES
from repro.xmlio.lexer import make_lexer, tokenize
from repro.xpath.parser import parse_path


@pytest.fixture(scope="module")
def document(xmark_fig4):
    return xmark_fig4


def test_lexer_throughput(benchmark, document):
    def run():
        count = 0
        for _token in tokenize(document):
            count += 1
        return count

    tokens = benchmark(run)
    assert tokens > 10_000


def test_projector_selective_path(benchmark, document):
    """A selective path set: most of the stream is skipped."""
    paths = [("r1", parse_path("/site/people/person"))]

    def run():
        buffer = Buffer()
        buffer.stats.record_series = False
        matcher = PathMatcher(paths)
        StreamProjector(make_lexer(document), matcher, buffer).run_to_end()
        return buffer.stats.tokens

    tokens = benchmark(run)
    assert tokens > 10_000


def test_projector_subtree_heavy_path(benchmark, document):
    """A subtree path buffers (and materializes) most of the document."""
    paths = [
        ("r1", parse_path("/site")),
        ("r2", parse_path("/site/descendant-or-self::node()")),
    ]

    def run():
        buffer = Buffer()
        buffer.stats.record_series = False
        matcher = PathMatcher(paths)
        StreamProjector(make_lexer(document), matcher, buffer).run_to_end()
        return buffer.live_count

    live = benchmark(run)
    assert live > 10_000


def test_engine_q1_throughput(benchmark, document):
    engine = GCXEngine(record_series=False)
    compiled = engine.compile(ADAPTED_QUERIES["q1"].text)

    result = benchmark.pedantic(
        lambda: engine.run(compiled, document), rounds=3, iterations=1
    )
    assert result.stats.final_buffered == 0


def test_compile_throughput(benchmark):
    engine = GCXEngine()
    compiled = benchmark(lambda: engine.compile(ADAPTED_QUERIES["q8"].text))
    assert len(compiled.analysis.roles) > 5
