"""Microbenchmarks: throughput of the pipeline stages.

Not a paper table, but the numbers the paper's timing column depends
on: raw lexer speed (token objects, chunked input, and the slotted
event fast path), projector speed with a selective path set for both
the interpreting NFA and the compiled lazy-DFA kernel, full engine
throughput in pull mode (again both kernels) and through a push-based
:class:`StreamSession`, and the cost of compilation with and without
the plan cache.  Useful for tracking performance regressions of the
reproduction itself.

Besides the pytest-benchmark timings, every test records one plain
measurement into ``BENCH_throughput.json`` at the repository root
(MB/s — or ops/s for compile-style entries — and peak buffered
nodes), so the perf trajectory stays diffable across pull requests.
``engine_q1_pull`` deliberately stays pinned to the interpreting
oracle: the ``engine_q1_compiled`` / ``engine_q1_pull`` ratio is the
compiled kernel's speedup, and CI fails when it drops below 1.
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from repro.bench.harness import run_chunked
from repro.bench.reporting import merge_bench_json, throughput_entry
from repro.core.buffer import Buffer
from repro.core.codegen import GeneratedStreamProjector
from repro.core.engine import GCXEngine
from repro.core.matcher import PathDFA, PathMatcher
from repro.core.projector import CompiledStreamProjector, StreamProjector
from repro.xmark.queries import ADAPTED_QUERIES
from repro.xmlio.lexer import make_lexer, tokenize
from repro.xpath.parser import parse_path

_BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_throughput.json",
)
_CHUNK = 64 * 1024

_records: dict[str, dict] = {}


def _record(name: str, seconds: float, input_bytes: int, peak_buffer: int) -> None:
    """One measurement entry for the JSON file."""
    _records[name] = throughput_entry(seconds, input_bytes, peak_buffer)


def _paired_best(fn_a, fn_b, rounds: int = 11) -> tuple[float, float]:
    """Best-of-*rounds* for two callables, timed interleaved in one
    window with the cyclic GC paused, so the codegen/tables gate pairs
    compare numbers from the same scheduler/thermal conditions and a
    collection pause cannot land on only one side's rounds."""
    best_a = best_b = float("inf")
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(rounds):
            started = time.perf_counter()
            fn_a()
            best_a = min(best_a, time.perf_counter() - started)
            started = time.perf_counter()
            fn_b()
            best_b = min(best_b, time.perf_counter() - started)
    finally:
        if was_enabled:
            gc.enable()
    return best_a, best_b


def _record_benchmark(
    benchmark, fallback, name: str, input_bytes: int, peak_buffer: int
) -> None:
    """Record the best time pytest-benchmark already measured.

    Falls back to one plain timed run only when the benchmark stats
    are unavailable (e.g. ``--benchmark-disable``).
    """
    try:
        seconds = benchmark.stats.stats.min
    except AttributeError:
        started = time.perf_counter()
        fallback()
        seconds = time.perf_counter() - started
    _record(name, seconds, input_bytes, peak_buffer)


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    if not _records:
        return
    # Merge with existing entries so a filtered run ('-k lexer') does
    # not silently drop the other tracked measurements.
    merge_bench_json(_BENCH_JSON, _records)


@pytest.fixture(scope="module")
def document(xmark_fig4):
    return xmark_fig4


def _drain(source) -> int:
    """Tokenize *source* to exhaustion through the event fast path."""
    lexer = make_lexer(source)
    sink: list = []
    count = 0
    while True:
        got = lexer.tokens_into(sink)
        if not got:
            return count + len(sink)
        count += len(sink)
        sink.clear()


def _drain_fused(data: bytes, live: dict) -> tuple[int, int]:
    """Drain *data* through the fused batch scan (DESIGN.md §15):
    ``project_into`` tokenizes until it commits a start tag outside
    *live*, then ``skip_subtree`` consumes the dead subtree without
    building events.  Returns ``(events, subtrees_skipped)``."""
    lexer = make_lexer(data)
    sink: list = []
    count = 0
    skipped = 0
    while True:
        got = lexer.project_into(sink, live)
        if got == 0:
            return count + len(sink), skipped
        if got < 0:
            lexer.skip_subtree()
            skipped += 1
        count += len(sink)
        sink.clear()


def _filled(unit: bytes, size: int) -> bytes:
    """A well-formed document of roughly *size* bytes built from
    repeating *unit* under one root."""
    return b"<r>" + unit * max(1, (size - 7) // len(unit)) + b"</r>"


def test_lexer_throughput(benchmark, document):
    def run():
        count = 0
        for _token in tokenize(document):
            count += 1
        return count

    tokens = benchmark(run)
    assert tokens > 10_000
    _record_benchmark(benchmark, run, "lexer", len(document), 0)


def test_lexer_chunked_throughput(benchmark, document):
    """The incremental path: the same stream cut into 64 KiB chunks."""
    chunks = [
        document[start : start + _CHUNK]
        for start in range(0, len(document), _CHUNK)
    ]

    def run():
        count = 0
        for _token in tokenize(iter(chunks)):
            count += 1
        return count

    tokens = benchmark(run)
    assert tokens > 10_000
    _record_benchmark(benchmark, run, "lexer_chunked", len(document), 0)


def test_lexer_event_fast_path_throughput(benchmark, document):
    """The slotted event fast path: tuples via tokens_into(), no
    StartTag/Attribute/Text allocation."""

    def run():
        lexer = make_lexer(document)
        sink: list = []
        count = 0
        while True:
            got = lexer.tokens_into(sink)
            if not got:
                return count + len(sink)
            count += len(sink)
            sink.clear()

    tokens = benchmark(run)
    assert tokens > 10_000
    _record_benchmark(benchmark, run, "lexer_events", len(document), 0)


def test_lexer_bytes_event_fast_path_throughput(benchmark, document):
    """The bytes-domain lexer (DESIGN.md §11) on the same event fast
    path: raw UTF-8 in, markup scanned as bytes, names decoded once,
    text decoded lazily.  The CI gate enforces lexer_bytes >=
    lexer_events — the bytes kernel must never fall behind the str
    scanner it replaces on the hot path."""
    data = document.encode("utf-8")

    def run():
        lexer = make_lexer(data)
        sink: list = []
        count = 0
        while True:
            got = lexer.tokens_into(sink)
            if not got:
                return count + len(sink)
            count += len(sink)
            sink.clear()

    tokens = benchmark(run)
    assert tokens > 10_000
    # identical classification, not merely "fast"
    reference = make_lexer(document)
    ref_sink: list = []
    while reference.tokens_into(ref_sink):
        pass
    byte_lexer = make_lexer(data)
    byte_sink: list = []
    while byte_lexer.tokens_into(byte_sink):
        pass
    assert byte_sink == ref_sink
    _record_benchmark(benchmark, run, "lexer_bytes", len(data), 0)


def test_lexer_bytes_fused_throughput(benchmark, document):
    """The fused batch scan (DESIGN.md §15) at the lexer stage:
    ``project_into`` with XMark Q1's live tag alphabet stops right
    behind every start tag the plan's DFA could never match and
    ``skip_subtree`` consumes the subtree without building one event
    tuple.  XMark's dead forest is fine-grained (~780 subtrees of a
    few hundred bytes each), so with the C scanner active each stop's
    Python round trip costs about what the skipped bytes save and the
    pair sits at parity; the pure-Python backend shows the fused win
    directly (~1.1x), and the engine-level entries carry the tier's
    real margin.  The CI gate holds the pair at a 0.85 floor while
    the ``skipped`` assertion below pins that pruning actually
    happened.  Both entries are recorded from one paired interleaved
    loop (the same discipline as the codegen pairs), the plain side
    replacing the sequentially-timed number of
    ``test_lexer_bytes_event_fast_path_throughput``."""
    data = document.encode("utf-8")
    live = dict.fromkeys(("site", "people", "person", "name"))

    def run_fused():
        return _drain_fused(data, live)

    def run_plain():
        return _drain(data)

    events, skipped = benchmark(run_fused)
    assert events > 1_000
    assert skipped > 100  # the alphabet must actually prune XMark
    best_fused, best_plain = _paired_best(run_fused, run_plain)
    _record("lexer_bytes_fused", best_fused, len(data), 0)
    _record("lexer_bytes", best_plain, len(data), 0)


def test_lexer_bytes_text_heavy(benchmark, document):
    """Shape matrix, text-dominant feed: long entity-free character
    runs between sparse tags — times the bulk text scan, where the
    batch scanner's ``find``-to-the-next-``<`` jump shows most.
    Recorded so scanner wins cannot overfit to XMark's markup mix."""
    data = _filled(
        b"<p>" + b"streaming xml projection pays for text scans " * 23 + b"</p>",
        len(document),
    )

    def run():
        return _drain(data)

    events = benchmark(run)
    assert events > 1_000
    _record_benchmark(benchmark, run, "lexer_bytes_text_heavy", len(data), 0)


def test_lexer_bytes_attr_heavy(benchmark, document):
    """Shape matrix, attribute-dominant feed: most scanned bytes sit
    inside quoted attribute values — times the quote-delimiter scan
    and attribute assembly."""
    data = _filled(
        b'<e id="a0" cat="tools &amp; dies" href="http://example.com/x?a=1" '
        b'rank="17" note="quoted values dominate this document shape"/>',
        len(document),
    )

    def run():
        return _drain(data)

    events = benchmark(run)
    assert events > 1_000
    _record_benchmark(benchmark, run, "lexer_bytes_attr_heavy", len(data), 0)


def test_lexer_bytes_deep_skip(benchmark, document):
    """Shape matrix, skip-dominant feed: dead subtrees nested 24 deep
    drained through the fused ``project_into``/``skip_subtree`` path —
    times the depth-tracking skip scan, the routine XMark Q1 leans on
    hardest."""
    depth = 24
    opens = b"".join(b"<d%d>" % i for i in range(depth))
    closes = b"".join(b"</d%d>" % i for i in reversed(range(depth)))
    unit = b"<live>x</live><dead>" + opens + b"deep data" + closes + b"</dead>"
    data = _filled(unit, len(document))
    live = dict.fromkeys(("r", "live"))

    def run():
        return _drain_fused(data, live)

    events, skipped = benchmark(run)
    assert events > 100
    assert skipped >= (len(data) - 7) // len(unit)  # every <dead> skipped
    _record_benchmark(benchmark, run, "lexer_bytes_deep_skip", len(data), 0)


def test_projector_selective_path(benchmark, document):
    """A selective path set: most of the stream is skipped."""
    paths = [("r1", parse_path("/site/people/person"))]

    def run():
        buffer = Buffer()
        buffer.stats.record_series = False
        matcher = PathMatcher(paths)
        StreamProjector(make_lexer(document), matcher, buffer).run_to_end()
        return buffer.stats.tokens

    tokens = benchmark(run)
    assert tokens > 10_000
    _record_benchmark(benchmark, run, "projector_selective", len(document), 0)


def test_projector_dfa_selective_path(benchmark, document):
    """The compiled kernel on the same selective path set: DFA-state
    integers on the stack, memoized transitions, lexer-level skips."""
    paths = [("r1", parse_path("/site/people/person"))]
    dfa = PathDFA(PathMatcher(paths))  # shared memo, as plans share it

    def run():
        buffer = Buffer()
        buffer.stats.record_series = False
        CompiledStreamProjector(make_lexer(document), dfa, buffer).run_to_end()
        return buffer.stats.tokens

    tokens = benchmark(run)
    assert tokens > 10_000
    _record_benchmark(benchmark, run, "projector_dfa", len(document), 0)


def test_projector_q1_codegen_throughput(benchmark, document):
    """The generated projector kernel (DESIGN.md §12) against the
    table-driven kernel it was generated from, on XMark Q1's real path
    set over raw bytes.  This is the stage where specialization
    shows, and the CI gate holds projector_q1_codegen against
    projector_q1_tables, so both entries are recorded from one paired
    interleaved loop (two sequentially-timed tests would hand the
    gate numbers from different scheduler windows)."""
    data = document.encode("utf-8")
    engine = GCXEngine(record_series=False)
    plan = engine.compile(ADAPTED_QUERIES["q1"].text)
    assert plan.kernels is not None and plan.kernels.projector is not None

    def run_tables():
        buffer = Buffer()
        buffer.stats.record_series = False
        CompiledStreamProjector(make_lexer(data), plan.dfa, buffer).run_to_end()
        return buffer.stats

    def run_codegen():
        buffer = Buffer()
        buffer.stats.record_series = False
        GeneratedStreamProjector(
            plan.kernels.projector, make_lexer(data), plan.dfa, buffer
        ).run_to_end()
        return buffer.stats

    stats = benchmark.pedantic(run_codegen, rounds=3, iterations=1)
    reference = run_tables()
    assert stats.tokens == reference.tokens
    assert stats.watermark == reference.watermark
    assert stats.subtrees_skipped == reference.subtrees_skipped

    best_codegen, best_tables = _paired_best(run_codegen, run_tables)
    _record("projector_q1_codegen", best_codegen, len(data), stats.watermark)
    _record("projector_q1_tables", best_tables, len(data), reference.watermark)


def test_projector_subtree_heavy_path(benchmark, document):
    """A subtree path buffers (and materializes) most of the document."""
    paths = [
        ("r1", parse_path("/site")),
        ("r2", parse_path("/site/descendant-or-self::node()")),
    ]

    def run():
        buffer = Buffer()
        buffer.stats.record_series = False
        matcher = PathMatcher(paths)
        StreamProjector(make_lexer(document), matcher, buffer).run_to_end()
        return buffer.live_count

    live = benchmark(run)
    assert live > 10_000


def test_engine_q1_throughput(benchmark, document):
    """Pull mode through the interpreting NFA projector (the oracle) —
    the fixed baseline the compiled kernel is gated against."""
    engine = GCXEngine(record_series=False, compiled=False)
    compiled = engine.compile(ADAPTED_QUERIES["q1"].text)

    result = benchmark.pedantic(
        lambda: engine.run(compiled, document), rounds=3, iterations=1
    )
    assert result.stats.final_buffered == 0
    _record_benchmark(
        benchmark,
        lambda: engine.run(compiled, document),
        "engine_q1_pull",
        len(document),
        result.stats.watermark,
    )


def test_engine_q1_compiled_throughput(benchmark, document):
    """Pull mode through the compiled lazy-DFA kernel, pinned to the
    table-driven tier (``codegen=False``) so this entry stays the
    baseline the generated kernels of DESIGN.md §12 are gated against."""
    engine = GCXEngine(record_series=False, codegen=False)
    compiled = engine.compile(ADAPTED_QUERIES["q1"].text)
    oracle = GCXEngine(record_series=False, compiled=False)

    result = benchmark.pedantic(
        lambda: engine.run(compiled, document), rounds=3, iterations=1
    )
    assert result.stats.final_buffered == 0
    # byte-identical to the oracle, not merely "passes its own tests"
    reference = oracle.run(oracle.compile(ADAPTED_QUERIES["q1"].text), document)
    assert result.output == reference.output
    assert result.stats.watermark == reference.stats.watermark
    assert result.stats.tokens == reference.stats.tokens
    _record_benchmark(
        benchmark,
        lambda: engine.run(compiled, document),
        "engine_q1_compiled",
        len(document),
        result.stats.watermark,
    )


def test_engine_q1_compiled_bytes_throughput(benchmark, document):
    """The full bytes path (DESIGN.md §11): the same compiled kernels
    fed raw UTF-8 bytes — what the server and the CLI actually stream —
    so the lexer scans the wire representation with no decode pass.
    Byte-identical to the str-fed oracle.  Pinned to the table-driven
    tier (``codegen=False``): this is the entry ``engine_q1_codegen``
    is gated against — and when the codegen test also runs, it
    re-records this entry from a paired interleaved measurement so the
    gated ratio never compares two different thermal windows."""
    data = document.encode("utf-8")
    engine = GCXEngine(record_series=False, codegen=False)
    compiled = engine.compile(ADAPTED_QUERIES["q1"].text)
    oracle = GCXEngine(record_series=False, compiled=False, compiled_eval=False)

    result = benchmark.pedantic(
        lambda: engine.run(compiled, data), rounds=3, iterations=1
    )
    assert result.stats.final_buffered == 0
    reference = oracle.run(oracle.compile(ADAPTED_QUERIES["q1"].text), document)
    assert result.output == reference.output
    assert result.stats.watermark == reference.stats.watermark
    assert result.stats.tokens == reference.stats.tokens
    _record_benchmark(
        benchmark,
        lambda: engine.run(compiled, data),
        "engine_q1_compiled_bytes",
        len(data),
        result.stats.watermark,
    )


def test_engine_q1_codegen_throughput(benchmark, document):
    """The per-plan generated-code kernels (DESIGN.md §12) at the
    engine's default tier — which, for bytes input, now includes the
    fused batch-scan lexer front-end of DESIGN.md §15: the same bytes
    workload as ``engine_q1_compiled_bytes``, run through the
    exec-compiled specializations instead of the table-driven
    interpreters they were generated from.  Byte-identical
    output AND an identical buffering profile (watermark, token count)
    to the table tier — specialization must never change what is
    buffered, only how fast the loop dispatches.

    The JSON entries for both tiers are recorded from one paired
    interleaved loop: the gate compares a few-percent margin, and two
    sequentially-timed tests would hand it numbers from different
    scheduler/thermal windows."""
    data = document.encode("utf-8")
    engine = GCXEngine(record_series=False)
    compiled = engine.compile(ADAPTED_QUERIES["q1"].text)
    assert compiled.kernels is not None
    assert compiled.kernels.projector is not None
    oracle = GCXEngine(record_series=False, codegen=False)
    table_plan = oracle.compile(ADAPTED_QUERIES["q1"].text)

    result = benchmark.pedantic(
        lambda: engine.run(compiled, data), rounds=3, iterations=1
    )
    assert result.stats.final_buffered == 0
    reference = oracle.run(table_plan, data)
    assert result.output == reference.output
    assert result.stats.watermark == reference.stats.watermark
    assert result.stats.tokens == reference.stats.tokens
    assert result.stats.subtrees_skipped == reference.stats.subtrees_skipped

    best_codegen, best_tables = _paired_best(
        lambda: engine.run(compiled, data), lambda: oracle.run(table_plan, data)
    )
    _record("engine_q1_codegen", best_codegen, len(data), result.stats.watermark)
    _record(
        "engine_q1_compiled_bytes", best_tables, len(data), reference.stats.watermark
    )


def test_evaluator_interp_throughput(benchmark, document):
    """Evaluator isolation, interpreting side: the compiled DFA
    projector feeds the AST-walking PullEvaluator — the fixed oracle
    baseline the operator-program VM is gated against.  XMark Q8 (the
    value join) is the evaluator-bound workload: its nested loops and
    comparisons over the buffer are pure evaluation work, so the
    evaluator pair measures the evaluation kernel, not the projector."""
    engine = GCXEngine(record_series=False, compiled_eval=False)
    compiled = engine.compile(ADAPTED_QUERIES["q8"].text)

    result = benchmark.pedantic(
        lambda: engine.run(compiled, document), rounds=3, iterations=1
    )
    assert result.stats.watermark > 0
    _record_benchmark(
        benchmark,
        lambda: engine.run(compiled, document),
        "evaluator_interp",
        len(document),
        result.stats.watermark,
    )


def test_evaluator_vm_throughput(benchmark, document):
    """Evaluator isolation, compiled side: the same DFA projector
    feeds the operator-program VM, pinned to the table-driven tier
    (``codegen=False``), so the difference to ``evaluator_interp`` is
    purely the evaluation kernel, not the generated code of §12."""
    engine = GCXEngine(record_series=False, codegen=False)
    compiled = engine.compile(ADAPTED_QUERIES["q8"].text)
    assert compiled.program is not None
    oracle = GCXEngine(record_series=False, compiled_eval=False)

    result = benchmark.pedantic(
        lambda: engine.run(compiled, document), rounds=3, iterations=1
    )
    # byte-identical to the oracle, not merely "passes its own tests"
    reference = oracle.run(oracle.compile(ADAPTED_QUERIES["q8"].text), document)
    assert result.output == reference.output
    assert result.stats.watermark == reference.stats.watermark
    assert result.stats.tokens == reference.stats.tokens
    _record_benchmark(
        benchmark,
        lambda: engine.run(compiled, document),
        "evaluator_vm",
        len(document),
        result.stats.watermark,
    )


def test_session_q1_throughput(benchmark, document):
    """Push mode: the same workload fed chunk-wise through a session.
    Runs the default (codegen) tier — what the server actually serves."""
    engine = GCXEngine(record_series=False)
    plan = engine.compile(ADAPTED_QUERIES["q1"].text)

    def run():
        return run_chunked(engine, plan, document, _CHUNK)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.stats.final_buffered == 0
    _record_benchmark(
        benchmark, run, "engine_q1_session", len(document), result.stats.watermark
    )


def test_compile_throughput(benchmark):
    engine = GCXEngine()
    compile_uncached = lambda: engine._compile(ADAPTED_QUERIES["q8"].text)  # noqa: E731
    compiled = benchmark(compile_uncached)
    assert len(compiled.analysis.roles) > 5
    _record_benchmark(benchmark, compile_uncached, "compile_uncached", 0, 0)


def test_plan_cache_hit_throughput(benchmark):
    """A cache hit must be orders of magnitude cheaper than a compile."""
    engine = GCXEngine()
    engine.compile(ADAPTED_QUERIES["q8"].text)  # warm the cache

    compile_cached = lambda: engine.compile(ADAPTED_QUERIES["q8"].text)  # noqa: E731
    compiled = benchmark(compile_cached)
    assert len(compiled.analysis.roles) > 5
    assert engine.plan_cache.stats.misses == 1
    _record_benchmark(benchmark, compile_cached, "compile_cached", 0, 0)
