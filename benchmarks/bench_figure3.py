"""Figure 3(b)/(c): buffer profiles of the paper's running example.

Regenerates the two buffer plots of the demo (experiments E1, E2 in
DESIGN.md): the intro query over a bib document with ten children —
nine articles + one book (3b, bounded buffer) and nine books + one
article (3c, staircase up to 23 buffered nodes at ``</bib>``).
"""

from __future__ import annotations

from conftest import write_report

from repro.bench.reporting import ascii_plot
from repro.core.engine import GCXEngine
from repro.datasets.bib import BIB_QUERY, figure3b_document, figure3c_document


def profile(document):
    return GCXEngine().query(BIB_QUERY, document).stats


def test_figure3_report(benchmark):
    stats_b = profile(figure3b_document())
    stats_c = profile(figure3c_document())
    benchmark(lambda: GCXEngine().query(BIB_QUERY, figure3c_document()))

    report = "\n\n".join(
        [
            "Figure 3 reproduction: buffer profiles of the intro query",
            ascii_plot(
                stats_b.series,
                width=60,
                height=12,
                title="(b) 9 x article + 1 x book",
            ),
            ascii_plot(
                stats_c.series,
                width=60,
                height=12,
                title="(c) 9 x book + 1 x article",
            ),
            "paper: 3(c) buffers 23 nodes when </bib> is read\n"
            f"measured: watermark(3b)={stats_b.watermark} "
            f"watermark(3c)={stats_c.watermark} "
            f"(tokens: {stats_b.tokens}/{stats_c.tokens})",
        ]
    )
    write_report("figure3.txt", report)

    # Paper-pinned shape assertions.
    assert stats_b.tokens == stats_c.tokens == 82
    assert stats_c.watermark == 23
    assert stats_b.watermark <= 8
    assert stats_b.final_buffered == stats_c.final_buffered == 0


def test_figure3b_bounded_vs_3c_linear(benchmark):
    """The 3(b) document evaluates with a buffer independent of the
    number of articles; the 3(c) staircase grows with the books."""
    from repro.datasets.bib import make_bib_document

    def watermark(kinds):
        return GCXEngine().query(BIB_QUERY, make_bib_document(kinds)).stats.watermark

    small_articles = watermark(["article"] * 5 + ["book"])
    many_articles = watermark(["article"] * 50 + ["book"])
    small_books = watermark(["book"] * 5 + ["article"])
    many_books = watermark(["book"] * 50 + ["article"])
    benchmark(lambda: watermark(["book"] * 50 + ["article"]))

    assert many_articles == small_articles  # bounded
    assert many_books - small_books == 2 * 45  # two nodes per extra book
