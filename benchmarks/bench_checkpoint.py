"""Checkpoint cost: snapshot/restore latency and blob size (§16).

The operational premise of DESIGN.md §16 is that active garbage
collection keeps a session's live state — and therefore its snapshot —
*small*: blob size should track ``peak_buffer_nodes``, not document
size.  This module measures, for the XMark queries with the three
distinct buffer profiles (Q1 near-empty, Q8 join state, Q20 aggregate
state), the latency of ``snapshot()`` (freeze → encode → thaw) and of
``restore()`` mid-document on the Figure 4 document, plus the blob
size, and records them into ``BENCH_throughput.json`` next to the
throughput entries so the size↔watermark correlation stays diffable
across pull requests.  No gate here yet — the unbounded-stream gate
(ROADMAP) will assert flat snapshot size over an infinite stream.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench.reporting import merge_bench_json
from repro.core.engine import GCXEngine
from repro.xmark.queries import ADAPTED_QUERIES

_BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_throughput.json",
)
_CHUNK = 64 * 1024
_ROUNDS = 7

_entries: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    if _entries:
        merge_bench_json(_BENCH_JSON, _entries)


@pytest.fixture(scope="module")
def document(xmark_fig4):
    return xmark_fig4.encode()


def _best(fn, rounds: int = _ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize("key", ["q1", "q8", "q20"])
def test_snapshot_restore_cost(key, document):
    engine = GCXEngine(record_series=False)
    plan = engine.compile(ADAPTED_QUERIES[key].text)
    reference = engine.run(plan, document.decode())

    # park one session mid-document and measure the frozen encode —
    # snapshot() on a frozen session is encode-only, so freeze cost
    # and encode cost can be separated with the same session
    session = engine.session(plan, checkpointable=True)
    half = len(document) // 2
    for start in range(0, half, _CHUNK):
        session.feed(document[start : min(start + _CHUNK, half)])

    full_s = _best(session.snapshot)  # freeze → encode → thaw, each round
    session.freeze()
    encode_s = _best(session.snapshot)  # already frozen: encode in place
    blob = session.snapshot()
    session.thaw()

    restore_s = _best(lambda: engine.restore_session(blob).abort())

    # correctness anchor: the session this was measured on still
    # finishes byte-identically, and so does a restored twin
    restored = engine.restore_session(blob)
    for start in range(half, len(document), _CHUNK):
        restored.feed(document[start : start + _CHUNK])
    resumed = restored.finish()
    assert resumed.output == reference.output

    for start in range(half, len(document), _CHUNK):
        session.feed(document[start : start + _CHUNK])
    result = session.finish()
    assert result.output == reference.output

    _entries[f"checkpoint_{key}"] = {
        "snapshot_ms": round(full_s * 1e3, 3),
        "encode_ms": round(encode_s * 1e3, 3),
        "restore_ms": round(restore_s * 1e3, 3),
        "snapshot_bytes": len(blob),
        "input_bytes": half,
        "peak_buffer_nodes": result.stats.watermark,
    }
    # the §16 premise: snapshots cost like the buffer, not the document
    assert len(blob) < len(document)
