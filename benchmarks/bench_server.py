"""Load generator for the concurrent query service.

Starts a real :class:`~repro.server.service.GCXServer` (TCP, in this
process) and drives it with N blocking clients on N threads, each
streaming XMark Q1 over the shared benchmark document several times.
This measures what DESIGN.md §8 promises: one process serving many
concurrent streams off one shared plan, with per-stream memory bounded
by active garbage collection.

Every run appends an aggregate entry — MB/s of XML pushed through the
server and completed requests/s — to ``BENCH_throughput.json`` next to
the single-stream numbers, so the concurrency overhead of the service
stays diffable across pull requests.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_server.py -q
"""

from __future__ import annotations

import os
import threading
import time

from repro.bench.reporting import merge_bench_json
from repro.core.engine import GCXEngine
from repro.server.client import GCXClient
from repro.server.service import ServerThread
from repro.xmark.queries import ADAPTED_QUERIES

_BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_throughput.json",
)
_CHUNK = 64 * 1024
_CLIENTS = 8
_REQUESTS_PER_CLIENT = 3


def _drive_client(host, port, query, document, requests, outputs, index):
    with GCXClient(host, port, chunk_size=_CHUNK) as client:
        for _ in range(requests):
            outputs[index].append(client.run_query(query, document).output)


def test_server_throughput(xmark_fig4):
    query = ADAPTED_QUERIES["q1"].text
    # Clients send the raw UTF-8 bytes — the wire-representative input:
    # CHUNK payloads reach the lexer with no decode pass (DESIGN.md §11).
    document = xmark_fig4.encode("utf-8")
    expected = GCXEngine(record_series=False).query(query, xmark_fig4).output

    outputs: list[list[str]] = [[] for _ in range(_CLIENTS)]
    with ServerThread(max_sessions=_CLIENTS) as handle:
        threads = [
            threading.Thread(
                target=_drive_client,
                args=(
                    handle.host,
                    handle.port,
                    query,
                    document,
                    _REQUESTS_PER_CLIENT,
                    outputs,
                    index,
                ),
                name=f"bench-client-{index}",
            )
            for index in range(_CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        snapshot = handle.server.scheduler.snapshot()

    requests = _CLIENTS * _REQUESTS_PER_CLIENT
    for per_client in outputs:
        assert len(per_client) == _REQUESTS_PER_CLIENT
        for output in per_client:
            assert output == expected

    # One shared plan for all clients: the analysis ran exactly once.
    assert snapshot["plan_cache"]["misses"] == 1
    assert snapshot["sessions"]["completed"] == requests

    total_bytes = len(document) * requests
    merge_bench_json(
        _BENCH_JSON,
        {
            f"server_q1_{_CLIENTS}clients": {
                "mb_per_s": round(total_bytes / 1e6 / elapsed, 3),
                "requests_per_s": round(requests / elapsed, 3),
                "seconds": round(elapsed, 5),
                "input_bytes": total_bytes,
                "clients": _CLIENTS,
                "requests": requests,
                "peak_buffer_nodes": snapshot["peak_buffer_watermark"],
                "latency_ms_p99": snapshot["latency_ms"]["p99"],
                "ttfr_ms_p50": snapshot["ttfr_ms"]["p50"],
                "ttfr_ms_p99": snapshot["ttfr_ms"]["p99"],
            }
        },
    )
    assert snapshot["ttfr_ms"]["count"] == requests
    # the first RESULT fragment must exist well before session end
    assert snapshot["ttfr_ms"]["p99"] <= snapshot["latency_ms"]["p99"]
