"""Load generator for the concurrent query service.

Starts a real :class:`~repro.server.service.GCXServer` (TCP, in this
process) and drives it with N blocking clients on N threads, each
streaming XMark Q1 over the shared benchmark document several times.
This measures what DESIGN.md §8 promises: one process serving many
concurrent streams off one shared plan, with per-stream memory bounded
by active garbage collection.

The multiplex benchmark then serves the same comparison for shared
streams (DESIGN.md §13): 8 *distinct* queries over one published
document — one lex+project pass fanning out to 8 subscribers
(``server_8queries_shared``) — against the 8 independent sessions
they replace (``server_8queries_independent``).  The aggregate MB/s
ratio between the two entries is gated by
``check_throughput_gate.py``.

The worker-scaling benchmark (DESIGN.md §14) drives the same 8-client
Q1 load into multi-process pools of 1/2/4/8 workers
(``server_q1_8clients_{N}workers``), recording the saturation curve —
and the host's ``cpu_count``, which the CI gate uses to decide whether
the 4-worker ≥ 2.5x ratio is meaningful on that host.

Every run appends aggregate entries — MB/s of XML pushed through the
server and completed requests/s — to ``BENCH_throughput.json`` next to
the single-stream numbers, so the concurrency overhead of the service
stays diffable across pull requests.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_server.py -q
"""

from __future__ import annotations

import os
import threading
import time

from repro.bench.reporting import merge_bench_json
from repro.core.engine import GCXEngine
from repro.server.client import GCXClient
from repro.server.service import ServerThread
from repro.server.workers import WorkerSupervisor
from repro.xmark.generator import generate_document
from repro.xmark.queries import ADAPTED_QUERIES, MULTIPLEX_QUERIES

_BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_throughput.json",
)
_CHUNK = 64 * 1024
_CLIENTS = 8
_REQUESTS_PER_CLIENT = 3


def _drive_client(host, port, query, document, requests, outputs, index):
    with GCXClient(host, port, chunk_size=_CHUNK) as client:
        for _ in range(requests):
            outputs[index].append(client.run_query(query, document).output)


def test_server_throughput(xmark_fig4):
    query = ADAPTED_QUERIES["q1"].text
    # Clients send the raw UTF-8 bytes — the wire-representative input:
    # CHUNK payloads reach the lexer with no decode pass (DESIGN.md §11).
    document = xmark_fig4.encode("utf-8")
    expected = GCXEngine(record_series=False).query(query, xmark_fig4).output

    outputs: list[list[str]] = [[] for _ in range(_CLIENTS)]
    with ServerThread(max_sessions=_CLIENTS) as handle:
        threads = [
            threading.Thread(
                target=_drive_client,
                args=(
                    handle.host,
                    handle.port,
                    query,
                    document,
                    _REQUESTS_PER_CLIENT,
                    outputs,
                    index,
                ),
                name=f"bench-client-{index}",
            )
            for index in range(_CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        snapshot = handle.server.scheduler.snapshot()

    requests = _CLIENTS * _REQUESTS_PER_CLIENT
    for per_client in outputs:
        assert len(per_client) == _REQUESTS_PER_CLIENT
        for output in per_client:
            assert output == expected

    # One shared plan for all clients: the analysis ran exactly once.
    assert snapshot["plan_cache"]["misses"] == 1
    assert snapshot["sessions"]["completed"] == requests

    total_bytes = len(document) * requests
    merge_bench_json(
        _BENCH_JSON,
        {
            f"server_q1_{_CLIENTS}clients": {
                "mb_per_s": round(total_bytes / 1e6 / elapsed, 3),
                "requests_per_s": round(requests / elapsed, 3),
                "seconds": round(elapsed, 5),
                "input_bytes": total_bytes,
                "clients": _CLIENTS,
                "requests": requests,
                "peak_buffer_nodes": snapshot["peak_buffer_watermark"],
                "latency_ms_p99": snapshot["latency_ms"]["p99"],
                "ttfr_ms_p50": snapshot["ttfr_ms"]["p50"],
                "ttfr_ms_p99": snapshot["ttfr_ms"]["p99"],
            }
        },
    )
    assert snapshot["ttfr_ms"]["count"] == requests
    # the first RESULT fragment must exist well before session end
    assert snapshot["ttfr_ms"]["p99"] <= snapshot["latency_ms"]["p99"]


# ---------------------------------------------------------------------------
# multi-process worker pool: the saturation curve (DESIGN.md §14)
# ---------------------------------------------------------------------------

_WORKER_COUNTS = (1, 2, 4, 8)


def _pool_round(pool, query, document, requests):
    """One 8-client round against the pool; returns (elapsed, outputs)."""
    outputs: list[list[str]] = [[] for _ in range(_CLIENTS)]
    threads = [
        threading.Thread(
            target=_drive_client,
            args=(
                pool.host,
                pool.port,
                query,
                document,
                requests,
                outputs,
                index,
            ),
            name=f"bench-pool-client-{index}",
        )
        for index in range(_CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started, outputs


def test_server_worker_scaling(xmark_fig4):
    """8 concurrent clients against worker pools of 1, 2, 4 and 8
    processes — the saturation curve multi-process sharding exists
    for.  Each pool size records ``server_q1_8clients_{N}workers``.

    The recorded ``cpu_count`` is load-bearing: the pool can only
    scale with the cores the host actually has, so the CI gate
    (``check_throughput_gate.py``) enforces the 4-worker ≥ 2.5x ratio
    only for runs recorded on ≥ 4 cores.  On a single-core host the
    whole curve sits near 1x (plus process overhead) — that is the
    expected reading, not a regression.

    ``max_sessions = 8 * workers`` gives every worker a full 8-client
    allotment: kernel SO_REUSEPORT placement is random per connection,
    so a tighter per-worker cap would turn unlucky placement into BUSY
    noise in the middle of a throughput measurement.
    """
    query = ADAPTED_QUERIES["q1"].text
    document = xmark_fig4.encode("utf-8")
    expected = GCXEngine(record_series=False).query(query, xmark_fig4).output
    requests = _CLIENTS * _REQUESTS_PER_CLIENT

    entries: dict = {}
    curve: dict[int, float] = {}
    for workers in _WORKER_COUNTS:
        with WorkerSupervisor(
            workers=workers, max_sessions=8 * workers
        ) as pool:
            # untimed warmup round: every worker the kernel picks
            # compiles the plan and spins its engine stack up once
            _pool_round(pool, query, document, 1)
            elapsed, outputs = _pool_round(
                pool, query, document, _REQUESTS_PER_CLIENT
            )
            with GCXClient(pool.host, pool.port) as client:
                stats = client.stats()

        for per_client in outputs:
            assert len(per_client) == _REQUESTS_PER_CLIENT
            for output in per_client:
                assert output == expected

        # fleet STATS end to end: any worker answers for the whole
        # fleet — timed + warmup sessions, summed across processes
        assert stats["fleet"]["workers"] == workers
        assert stats["fleet"]["registered"] == workers
        assert (
            stats["totals"]["sessions"]["completed"]
            == requests + _CLIENTS
        )
        assert len(stats["per_worker"]) == workers

        total_bytes = len(document) * requests
        curve[workers] = round(total_bytes / 1e6 / elapsed, 3)
        entries[f"server_q1_8clients_{workers}workers"] = {
            "mb_per_s": curve[workers],
            "requests_per_s": round(requests / elapsed, 3),
            "seconds": round(elapsed, 5),
            "input_bytes": total_bytes,
            "clients": _CLIENTS,
            "requests": requests,
            "workers": workers,
            "mode": pool.mode,
            "cpu_count": os.cpu_count(),
        }
    merge_bench_json(_BENCH_JSON, entries)
    # Local sanity only: the pool must never collapse. The scaling
    # ratio itself is CI-gated where core counts make it meaningful.
    assert curve[4] > 0.3 * curve[1]


# ---------------------------------------------------------------------------
# shared-stream multiplexing vs independent sessions (DESIGN.md §13)
# ---------------------------------------------------------------------------

_MUX_REPEATS = 5
_MUX_SCALE = 16.0  # ~0.7 MB: large enough that lexing dominates setup


def _run_shared_once(handle, stream, data, expected):
    subscribers = [GCXClient(handle.host, handle.port) for _ in expected]
    try:
        for client, query in zip(subscribers, MULTIPLEX_QUERIES):
            client.subscribe(stream, query)
        box: list = [None] * len(expected)

        def collect(index, client):
            box[index] = client.collect()

        started = time.perf_counter()
        readers = [
            threading.Thread(target=collect, args=(index, client))
            for index, client in enumerate(subscribers)
        ]
        for reader in readers:
            reader.start()
        with GCXClient(handle.host, handle.port, chunk_size=_CHUNK) as pub:
            pub.publish_document(stream, data)
        for reader in readers:
            reader.join()
        elapsed = time.perf_counter() - started
    finally:
        for client in subscribers:
            client.close()
    for outcome, want in zip(box, expected):
        assert outcome.output == want
    return elapsed


def _run_independent_once(handle, data, expected):
    errors: list[BaseException] = []

    def drive(index):
        try:
            with GCXClient(handle.host, handle.port, chunk_size=_CHUNK) as client:
                output = client.run_query(MULTIPLEX_QUERIES[index], data).output
                assert output == expected[index]
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    started = time.perf_counter()
    threads = [
        threading.Thread(target=drive, args=(index,))
        for index in range(len(expected))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return elapsed


def test_server_multiplex_throughput():
    """8 distinct queries, one shared stream, vs 8 independent
    sessions over the same document — the lex+project de-duplication
    the multiplexer exists for, measured end to end over TCP.

    Aggregate MB/s counts the document once per query served (the
    work a client asked for), so the shared/independent ratio is the
    wall-clock ratio; ``check_throughput_gate.py`` holds it above its
    floor.

    Protocol: one untimed warmup of each side (plan cache hot, threads
    spawned once), then interleaved timed rounds summed per side —
    interleaving exposes both sides to the same machine weather, and
    the sum is steadier than a min of noisy 8-thread wall-clocks.
    """
    document = generate_document(scale=_MUX_SCALE, seed=42)
    data = document.encode("utf-8")
    engine = GCXEngine(record_series=False)
    expected = [engine.query(q, document).output for q in MULTIPLEX_QUERIES]
    fanout = len(MULTIPLEX_QUERIES)

    with ServerThread(max_sessions=2 * fanout, max_streams=4) as handle:
        _run_independent_once(handle, data, expected)  # warmup, untimed
        _run_shared_once(handle, "bench-warmup", data, expected)
        shared = independent = 0.0
        for round_index in range(_MUX_REPEATS):
            independent += _run_independent_once(handle, data, expected)
            shared += _run_shared_once(
                handle, f"bench-{round_index}", data, expected
            )

    served_bytes = len(data) * fanout * _MUX_REPEATS
    merge_bench_json(
        _BENCH_JSON,
        {
            "server_8queries_shared": {
                "mb_per_s": round(served_bytes / 1e6 / shared, 3),
                "seconds": round(shared, 5),
                "input_bytes": len(data),
                "served_bytes": served_bytes,
                "queries": fanout,
                "rounds": _MUX_REPEATS,
            },
            "server_8queries_independent": {
                "mb_per_s": round(served_bytes / 1e6 / independent, 3),
                "seconds": round(independent, 5),
                "input_bytes": len(data),
                "served_bytes": served_bytes,
                "queries": fanout,
                "rounds": _MUX_REPEATS,
            },
        },
    )
    # Sanity here (the CI gate enforces the documented floor): sharing
    # the pass must not be slower than running the sessions apart.
    assert shared < independent
