"""Figure 4: buffer plots for XMark Q6 and Q8 (experiments E3, E4).

The paper plots buffered nodes over tokens processed on a 10 MB XMark
document: Q6 (items below regions) stays under 100 buffered nodes and
empties once the regions section has passed; Q8 (people x closed
auctions join) grows linearly — first diagonal while people load, a
plateau through irrelevant sections, resolution in closed auctions.
"""

from __future__ import annotations

from conftest import write_report

from repro.bench.reporting import ascii_plot
from repro.core.engine import GCXEngine
from repro.xmark.queries import ADAPTED_QUERIES


def test_figure4_q6_streaming(benchmark, xmark_fig4):
    query = ADAPTED_QUERIES["q6"]
    stats = GCXEngine().query(query.text, xmark_fig4).stats
    benchmark.pedantic(
        lambda: GCXEngine(record_series=False).query(query.text, xmark_fig4),
        rounds=3,
        iterations=1,
    )
    report = "\n\n".join(
        [
            "Figure 4(a) reproduction: Q6 buffer profile",
            ascii_plot(stats.series, width=70, height=14, title="Q6 (items)"),
            "paper: < 100 buffered nodes; buffer almost empty after the\n"
            "regions section\n"
            f"measured: watermark={stats.watermark} tokens={stats.tokens} "
            f"final={stats.final_buffered}",
        ]
    )
    write_report("figure4a_q6.txt", report)

    assert stats.watermark < 100
    # after the regions section (first ~45% of tokens) the buffer stays
    # near-empty: every later sample is below a tiny constant
    tail = stats.series[int(len(stats.series) * 0.6):]
    assert max(tail) <= 3
    assert stats.final_buffered == 0


def test_figure4_q8_blocking_join(benchmark, xmark_fig4):
    query = ADAPTED_QUERIES["q8"]
    stats = GCXEngine().query(query.text, xmark_fig4).stats
    benchmark.pedantic(
        lambda: GCXEngine(record_series=False).query(query.text, xmark_fig4),
        rounds=1,
        iterations=1,
    )
    report = "\n\n".join(
        [
            "Figure 4(b) reproduction: Q8 buffer profile (value join)",
            ascii_plot(stats.series, width=70, height=14, title="Q8 (join)"),
            "paper: diagonal while people load, plateau, join partners\n"
            "found in closed auctions; memory linear in the input\n"
            f"measured: watermark={stats.watermark} tokens={stats.tokens}",
        ]
    )
    write_report("figure4b_q8.txt", report)

    series = stats.series
    assert stats.watermark > 100  # blocking: far above the Q6 profile
    # the watermark is reached late (in/after the people section), and
    # the buffer still holds the join state near the end of the stream
    peak_index = series.index(stats.watermark)
    assert peak_index > len(series) * 0.5
    assert series[int(len(series) * 0.95)] > stats.watermark * 0.5


def test_figure4_q8_memory_linear_in_input(benchmark):
    """Q8's buffer grows linearly with the document (paper: "main
    memory consumption that is linear in the size of the input")."""
    from repro.xmark.generator import generate_document

    query = ADAPTED_QUERIES["q8"]

    def watermark(scale):
        xml = generate_document(scale=scale, seed=9)
        engine = GCXEngine(record_series=False)
        return engine.query(query.text, xml).stats.watermark

    small = watermark(1.0)
    large = watermark(3.0)
    benchmark.pedantic(lambda: watermark(1.0), rounds=1, iterations=1)
    assert 2.0 < large / small < 4.5


def test_figure4_q6_memory_constant_in_input(benchmark):
    from repro.xmark.generator import generate_document

    query = ADAPTED_QUERIES["q6"]

    def watermark(scale):
        xml = generate_document(scale=scale, seed=9)
        engine = GCXEngine(record_series=False)
        return engine.query(query.text, xml).stats.watermark

    small = watermark(1.0)
    large = watermark(4.0)
    benchmark.pedantic(lambda: watermark(1.0), rounds=1, iterations=1)
    assert large <= small + 5  # streaming: independent of document size
