"""Figure 5: the comparative evaluation table (experiment E5).

The paper's table reports, for XMark Q1/Q6/Q8/Q13/Q20 over 10–200 MB
documents, evaluation time and peak memory for GCX, FluXQuery, Galax,
MonetDB, Saxon and QizX.  We rebuild the main-memory engine classes
(DESIGN.md §4) and scale documents down 1000x: GCX vs the FluX-like
scope-based streamer vs projection-only vs the full-DOM engine.

Shape expectations from the paper:
* GCX memory is flat w.r.t. document size for Q1/Q6/Q13/Q20 (the
  famous constant 1.2 MB column) and smallest everywhere;
* Q8 is blocking: every engine's memory grows with the input;
* FluXQuery reports n/a on Q6 (descendant axis);
* the full in-memory engines' footprint is linear in the document.
"""

from __future__ import annotations

from conftest import write_report

from repro.baselines import FluxLikeEngine, FullDomEngine, ProjectionOnlyEngine
from repro.bench.harness import compare_engines
from repro.bench.reporting import format_table
from repro.core.engine import GCXEngine
from repro.xmark.generator import XMARK_DTD
from repro.xmark.queries import ADAPTED_QUERIES
from repro.xmlio.dtd import parse_dtd

SIZES = ("10KB", "50KB", "100KB", "200KB")
QUERIES = ("q1", "q6", "q8", "q13", "q20")


def make_engines():
    return [
        GCXEngine(record_series=False),
        FluxLikeEngine(dtd=parse_dtd(XMARK_DTD), record_series=False),
        ProjectionOnlyEngine(record_series=False),
        FullDomEngine(record_series=False),
    ]


def test_figure5_table(benchmark, xmark_scales):
    engines = make_engines()
    headers = ["query", "doc"] + [e.name for e in engines]
    rows = []
    cells = {}
    for qkey in QUERIES:
        query = ADAPTED_QUERIES[qkey]
        for size in SIZES:
            results = compare_engines(
                make_engines(), query.text, xmark_scales[size], qkey, size
            )
            cells[(qkey, size)] = {r.engine: r for r in results}
            rows.append([qkey, size] + [r.cell() for r in results])
    benchmark.pedantic(
        lambda: GCXEngine(record_series=False).query(
            ADAPTED_QUERIES["q1"].text, xmark_scales["200KB"]
        ),
        rounds=3,
        iterations=1,
    )

    table = format_table(headers, rows)
    write_report(
        "figure5.txt",
        "Figure 5 reproduction: time / estimated peak memory per engine\n"
        "(documents scaled down 1000x from the paper's 10-200MB)\n\n"
        + table
        + "\n\npaper shape: GCX flat memory for q1/q6/q13/q20, linear for q8;\n"
        "flux-like n/a for q6; full-DOM linear everywhere; GCX smallest.\n",
    )

    # --- shape assertions --------------------------------------------------
    for qkey in ("q1", "q13", "q20"):
        small = cells[(qkey, "10KB")]["gcx"].watermark
        large = cells[(qkey, "200KB")]["gcx"].watermark
        assert large <= small * 2 + 10, f"{qkey}: GCX memory must stay flat"

    q6_small = cells[("q6", "10KB")]["gcx"].watermark
    q6_large = cells[("q6", "200KB")]["gcx"].watermark
    assert q6_large <= q6_small + 10

    # Q8 grows roughly linearly for every engine
    assert (
        cells[("q8", "200KB")]["gcx"].watermark
        > 4 * cells[("q8", "10KB")]["gcx"].watermark
    )

    # FluX-like reports n/a exactly on the descendant-axis query
    for size in SIZES:
        assert not cells[("q6", size)]["flux-like"].supported
        assert cells[("q1", size)]["flux-like"].supported

    # the full-DOM engine is linear in the document everywhere
    assert (
        cells[("q1", "200KB")]["full-dom"].watermark
        > 10 * cells[("q1", "10KB")]["full-dom"].watermark
    )

    # GCX buffers the least on every supported cell
    for (qkey, size), row in cells.items():
        for engine_name, result in row.items():
            if engine_name == "gcx" or not result.supported:
                continue
            assert row["gcx"].watermark <= result.watermark, (qkey, size, engine_name)


def test_figure5_gcx_beats_dom_on_memory_by_orders(xmark_scales, benchmark):
    """The paper's headline: 1.2MB vs hundreds of MB on streaming
    queries — two orders of magnitude at the 200MB scale.  At our
    1000x-reduced scale we still require >50x on the largest doc."""
    gcx = GCXEngine(record_series=False)
    dom = FullDomEngine(record_series=False)
    query = ADAPTED_QUERIES["q1"].text
    xml = xmark_scales["200KB"]
    g = gcx.query(query, xml).stats.watermark
    d = dom.query(query, xml).stats.watermark
    benchmark.pedantic(lambda: gcx.query(query, xml), rounds=1, iterations=1)
    assert d > 50 * g
