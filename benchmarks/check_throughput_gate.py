"""CI gate over ``BENCH_throughput.json``: the compiled kernels must win.

Run after ``benchmarks/bench_throughput.py`` has refreshed the JSON.
Fails (exit 1) whenever a compiled kernel would silently regress below
the machinery it exists to replace:

* ``engine_q1_compiled`` (lazy-DFA projector + VM, the default) vs the
  interpreting-oracle baseline ``engine_q1_pull``;
* ``evaluator_vm`` (operator-program VM) vs ``evaluator_interp`` (the
  AST-walking pull evaluator behind the same DFA projector) — the
  evaluation side in isolation;
* ``lexer_bytes`` (the bytes-domain scanner, DESIGN.md §11) vs
  ``lexer_events`` (the str event fast path it replaces on the wire
  path) — the tokenizer in isolation.

Usage::

    python benchmarks/check_throughput_gate.py [path/to/BENCH_throughput.json]
"""

from __future__ import annotations

import json
import os
import sys

DEFAULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_throughput.json",
)

#: (compiled entry, interpreting-oracle entry) pairs the gate enforces
GATED_PAIRS = (
    ("engine_q1_compiled", "engine_q1_pull"),
    ("evaluator_vm", "evaluator_interp"),
    ("lexer_bytes", "lexer_events"),
)


def check(path: str) -> str:
    """Return a success message, or raise SystemExit with the failure."""
    try:
        with open(path, encoding="utf-8") as handle:
            entries = json.load(handle).get("entries", {})
    except (OSError, ValueError) as exc:
        raise SystemExit(f"gate: cannot read {path}: {exc}")
    needed = sorted({name for pair in GATED_PAIRS for name in pair})
    missing = [name for name in needed if name not in entries]
    if missing:
        raise SystemExit(
            f"gate: {path} lacks {', '.join(missing)} — did the "
            "throughput benchmark run?"
        )
    lines = []
    for compiled_name, oracle_name in GATED_PAIRS:
        compiled = entries[compiled_name].get("mb_per_s", 0.0)
        oracle = entries[oracle_name].get("mb_per_s", 0.0)
        if not compiled:
            raise SystemExit(
                f"gate: {compiled_name} was not measured (0 MB/s)"
            )
        if compiled < oracle:
            raise SystemExit(
                f"gate: compiled kernel regressed below the interpreting "
                f"oracle: {compiled_name} {compiled} MB/s < "
                f"{oracle_name} {oracle} MB/s"
            )
        ratio = compiled / oracle if oracle else float("inf")
        lines.append(
            f"{compiled_name} {compiled} MB/s vs "
            f"{oracle_name} {oracle} MB/s ({ratio:.2f}x)"
        )
    return "gate: ok — " + "; ".join(lines)


if __name__ == "__main__":
    print(check(sys.argv[1] if len(sys.argv) > 1 else DEFAULT_PATH))
