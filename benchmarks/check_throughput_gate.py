"""CI gate over ``BENCH_throughput.json``: the compiled kernel must win.

Run after ``benchmarks/bench_throughput.py`` has refreshed the JSON.
Fails (exit 1) when the ``engine_q1_compiled`` entry is missing,
unmeasured, or slower than the interpreting-oracle baseline
``engine_q1_pull`` — i.e. whenever a change would silently regress the
compiled streaming kernel below the machinery it exists to replace.

Usage::

    python benchmarks/check_throughput_gate.py [path/to/BENCH_throughput.json]
"""

from __future__ import annotations

import json
import os
import sys

DEFAULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_throughput.json",
)


def check(path: str) -> str:
    """Return a success message, or raise SystemExit with the failure."""
    try:
        with open(path, encoding="utf-8") as handle:
            entries = json.load(handle).get("entries", {})
    except (OSError, ValueError) as exc:
        raise SystemExit(f"gate: cannot read {path}: {exc}")
    missing = [
        name
        for name in ("engine_q1_compiled", "engine_q1_pull")
        if name not in entries
    ]
    if missing:
        raise SystemExit(
            f"gate: {path} lacks {', '.join(missing)} — did the "
            "throughput benchmark run?"
        )
    compiled = entries["engine_q1_compiled"].get("mb_per_s", 0.0)
    pull = entries["engine_q1_pull"].get("mb_per_s", 0.0)
    if not compiled:
        raise SystemExit("gate: engine_q1_compiled was not measured (0 MB/s)")
    if compiled < pull:
        raise SystemExit(
            f"gate: compiled kernel regressed below the interpreting "
            f"oracle: engine_q1_compiled {compiled} MB/s < "
            f"engine_q1_pull {pull} MB/s"
        )
    ratio = compiled / pull if pull else float("inf")
    return (
        f"gate: ok — engine_q1_compiled {compiled} MB/s vs "
        f"engine_q1_pull {pull} MB/s ({ratio:.2f}x)"
    )


if __name__ == "__main__":
    print(check(sys.argv[1] if len(sys.argv) > 1 else DEFAULT_PATH))
