"""CI gate over ``BENCH_throughput.json``: the compiled kernels must win.

Run after ``benchmarks/bench_throughput.py`` has refreshed the JSON.
Fails (exit 1) whenever a compiled kernel would silently regress below
the machinery it exists to replace:

* ``engine_q1_compiled`` (lazy-DFA projector + VM, the default) vs the
  interpreting-oracle baseline ``engine_q1_pull``;
* ``evaluator_vm`` (operator-program VM) vs ``evaluator_interp`` (the
  AST-walking pull evaluator behind the same DFA projector) — the
  evaluation side in isolation;
* ``lexer_bytes`` (the bytes-domain scanner, DESIGN.md §11) vs
  ``lexer_events`` (the str event fast path it replaces on the wire
  path) — the tokenizer in isolation;
* ``lexer_bytes_fused`` (the plan-fused batch scan, DESIGN.md §15:
  ``project_into`` + bulk ``skip_subtree``) vs ``lexer_bytes`` (the
  same scanner tokenizing everything) — fusing the plan's alphabet
  into the scan must stay at least near the unfused scan it
  specializes, whichever batch backend both sides ran on.  The floor
  is 0.85, not 1.0: XMark's dead forest is fine-grained (~780 dead
  subtrees averaging a few hundred bytes in the fig-4 document), so
  with the C scanner active each stop's Python round trip costs about
  what the skipped bytes save and the pair sits at parity (~0.9–1.0);
  on the pure-Python backend the same pair shows the fused win
  directly (~1.1x).  The fused tier's real margin is gated where it
  accrues — ``engine_q1_codegen``, whose default tier it now is —
  and ``bench_throughput.py`` separately asserts the fused drain
  actually *skipped* (a fused path that silently stops skipping
  stays at parity here and would pass this ratio);
* ``projector_q1_codegen`` (the generated projector kernel,
  DESIGN.md §12) vs ``projector_q1_tables`` (the table-driven kernel
  it was generated from, same path set and bytes input) — the stage
  where specialization shows;
* ``engine_q1_codegen`` vs ``engine_q1_compiled_bytes`` — the same
  comparison end to end;
* ``server_8queries_shared`` (8 distinct queries multiplexed over one
  published stream, DESIGN.md §13) vs ``server_8queries_independent``
  (the 8 separate sessions they replace) — the shared lex+project
  pass must keep its fan-out win.

The two codegen pairs carry tolerance floors (0.9 per-stage, 0.85
end to end) instead of a strict ``>=``: on Q1 the tokenizer's
``skip_subtree`` is the ceiling, so the generated kernels' margin
(~10% at the projector stage in a quiet window, ~0 at engine level)
is smaller than the run-to-run timing noise of a shared machine —
even with both sides of a pair measured interleaved in one
GC-paused window, a strict gate flaps.  The floors still catch the
regression class they exist for: a generated kernel silently
falling off its fast path (back to memo dicts, or to the
interpreter) costs far more than 5–15%.

``lexer_bytes`` additionally carries an **absolute** floor
(:data:`MIN_LEXER_BYTES_MB_S`): the batch-scan rewrite (§15) holds
the tokenizer far above it with the C scanner active (> 25 MB/s
here) *and* with the pure-Python batch loops (~15 MB/s on the dev
container), so the floor is set at roughly half the slowest backend
— low enough that a compiler-less, noisy CI runner passes honestly,
high enough that losing the batch loops entirely (falling back to
per-byte scanning under a heavy interpreter regression) trips it.

The multiplex pair targets a 3x aggregate-throughput win (measured
3.0–3.3x across machines and scales) but gates at 2.7: the two
sides are separate wall-clock measurements of an 8-thread TCP
workload, whose run-to-run spread is ~10% even on a quiet machine.
The floor still catches the real regression class — a driver that
stops skipping, re-lexes per subscriber, or serializes the fan-out
lands near 1x, nowhere near 2.7.

The worker-pool pair (``server_q1_8clients_4workers`` vs the
single-process ``server_q1_8clients``, DESIGN.md §14) targets the
4-core acceptance bar of >= 3x but gates at 2.5: the pool's win is
bounded by the host's cores, and two multi-process TCP wall-clocks
carry the same ~10% spread as the multiplex pair, compounded by CI
runners' neighbours.  A pool that silently stops sharding —
workers contending on one socket, or every connection landing on
one process — sits at 1x, far below 2.5.  The pair is enforced
only when the recording host had at least 4 CPUs (the benchmark
records ``cpu_count``): on fewer cores 4 workers *cannot* beat one
process by 3x, so the honest reading there is the curve itself,
not a ratio gate.

Usage::

    python benchmarks/check_throughput_gate.py [path/to/BENCH_throughput.json]
"""

from __future__ import annotations

import json
import os
import sys

DEFAULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_throughput.json",
)

#: (compiled entry, oracle entry, floor) triples the gate enforces:
#: fail when compiled < floor * oracle.  1.0 is strict; the sub-1.0
#: floors are documented in the module docstring.
GATED_PAIRS = (
    ("engine_q1_compiled", "engine_q1_pull", 1.0),
    ("evaluator_vm", "evaluator_interp", 1.0),
    ("lexer_bytes", "lexer_events", 1.0),
    ("lexer_bytes_fused", "lexer_bytes", 0.85),
    ("projector_q1_codegen", "projector_q1_tables", 0.9),
    ("engine_q1_codegen", "engine_q1_compiled_bytes", 0.85),
    ("server_8queries_shared", "server_8queries_independent", 2.7),
)

#: the worker-pool scaling pair: enforced like GATED_PAIRS, but only
#: when the compiled entry was recorded on a host with at least
#: MIN_POOL_CPUS cores (the ratio is core-bound, see the docstring)
POOL_PAIR = ("server_q1_8clients_4workers", "server_q1_8clients", 2.5)
MIN_POOL_CPUS = 4

#: absolute tokenizer floor in MB/s (see the module docstring): the
#: batch-scan ``lexer_bytes`` clears this on either backend with wide
#: margin; a fall back to per-byte scanning does not
MIN_LEXER_BYTES_MB_S = 8.0


def check(path: str) -> str:
    """Return a success message, or raise SystemExit with the failure."""
    try:
        with open(path, encoding="utf-8") as handle:
            entries = json.load(handle).get("entries", {})
    except (OSError, ValueError) as exc:
        raise SystemExit(f"gate: cannot read {path}: {exc}")
    needed = sorted(
        {name for pair in GATED_PAIRS for name in pair[:2]}
        | set(POOL_PAIR[:2])
    )
    missing = [name for name in needed if name not in entries]
    if missing:
        raise SystemExit(
            f"gate: {path} lacks {', '.join(missing)} — did the "
            "throughput benchmark run?"
        )
    lines = []
    for compiled_name, oracle_name, floor in GATED_PAIRS:
        compiled = entries[compiled_name].get("mb_per_s", 0.0)
        oracle = entries[oracle_name].get("mb_per_s", 0.0)
        if not compiled:
            raise SystemExit(
                f"gate: {compiled_name} was not measured (0 MB/s)"
            )
        if compiled < floor * oracle:
            raise SystemExit(
                f"gate: compiled kernel regressed below its oracle: "
                f"{compiled_name} {compiled} MB/s < {floor} * "
                f"{oracle_name} {oracle} MB/s"
            )
        ratio = compiled / oracle if oracle else float("inf")
        lines.append(
            f"{compiled_name} {compiled} MB/s vs "
            f"{oracle_name} {oracle} MB/s ({ratio:.2f}x)"
        )
    tokenizer = entries["lexer_bytes"].get("mb_per_s", 0.0)
    if tokenizer < MIN_LEXER_BYTES_MB_S:
        raise SystemExit(
            f"gate: tokenizer lost its batch scan: lexer_bytes "
            f"{tokenizer} MB/s < {MIN_LEXER_BYTES_MB_S} MB/s absolute "
            "floor"
        )
    lines.append(
        f"lexer_bytes {tokenizer} MB/s >= {MIN_LEXER_BYTES_MB_S} MB/s "
        "absolute floor"
    )
    pool_name, single_name, floor = POOL_PAIR
    pool = entries[pool_name].get("mb_per_s", 0.0)
    single = entries[single_name].get("mb_per_s", 0.0)
    cpus = entries[pool_name].get("cpu_count") or 0
    if cpus >= MIN_POOL_CPUS:
        if not pool or pool < floor * single:
            raise SystemExit(
                f"gate: worker pool stopped scaling: {pool_name} "
                f"{pool} MB/s < {floor} * {single_name} {single} MB/s "
                f"on a {cpus}-core host"
            )
        lines.append(
            f"{pool_name} {pool} MB/s vs {single_name} {single} MB/s "
            f"({pool / single if single else float('inf'):.2f}x, "
            f"{cpus} cpus)"
        )
    else:
        lines.append(
            f"{pool_name} recorded on {cpus} cpu(s) — scaling ratio "
            f"not enforced (needs >= {MIN_POOL_CPUS})"
        )
    return "gate: ok — " + "; ".join(lines)


if __name__ == "__main__":
    print(check(sys.argv[1] if len(sys.argv) > 1 else DEFAULT_PATH))
