"""Framing protocol: encoding, incremental decoding, guard rails."""

import pytest

from repro.server.protocol import (
    HEADER,
    MAX_PAYLOAD,
    Frame,
    FrameDecoder,
    FrameType,
    ProtocolError,
    encode_frame,
)


class TestEncode:
    def test_header_layout(self):
        frame = encode_frame(FrameType.OPEN, b"abc")
        assert frame[:HEADER.size] == HEADER.pack(1, 3)
        assert frame[HEADER.size:] == b"abc"

    def test_str_payload_is_utf8(self):
        frame = encode_frame(FrameType.CHUNK, "<é/>")
        assert frame.endswith("<é/>".encode("utf-8"))

    def test_empty_payload(self):
        assert encode_frame(FrameType.FINISH) == HEADER.pack(3, 0)

    def test_oversize_payload_refused(self):
        decoder = FrameDecoder(max_payload=10)
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(HEADER.pack(int(FrameType.CHUNK), 11))


class TestFrameDecoder:
    def test_roundtrip_all_types(self):
        payloads = {ftype: f"payload-{ftype.name}".encode() for ftype in FrameType}
        wire = b"".join(encode_frame(t, p) for t, p in payloads.items())
        frames = FrameDecoder().feed(wire)
        assert frames == [Frame(t, p) for t, p in payloads.items()]

    def test_byte_at_a_time(self):
        wire = encode_frame(FrameType.OPEN, b"q") + encode_frame(
            FrameType.CHUNK, b"<doc/>"
        )
        decoder = FrameDecoder()
        frames = []
        for index in range(len(wire)):
            frames.extend(decoder.feed(wire[index : index + 1]))
        assert [frame.type for frame in frames] == [FrameType.OPEN, FrameType.CHUNK]
        assert frames[1].text == "<doc/>"
        assert decoder.pending_bytes == 0

    def test_partial_frame_stays_pending(self):
        wire = encode_frame(FrameType.RESULT, b"half")
        decoder = FrameDecoder()
        assert decoder.feed(wire[:-2]) == []
        assert decoder.pending_bytes == len(wire) - 2
        assert decoder.feed(wire[-2:]) == [Frame(FrameType.RESULT, b"half")]

    def test_unknown_frame_type(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            FrameDecoder().feed(HEADER.pack(99, 0))

    def test_text_property_decodes_utf8(self):
        (frame,) = FrameDecoder().feed(encode_frame(FrameType.ERROR, "bad ✗"))
        assert frame.text == "bad ✗"

    def test_max_payload_constant_sane(self):
        assert MAX_PAYLOAD >= 1024 * 1024
