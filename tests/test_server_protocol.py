"""Framing protocol: encoding, incremental decoding, guard rails."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.server.protocol import (
    HEADER,
    MAX_PAYLOAD,
    Frame,
    FrameDecoder,
    FrameType,
    ProtocolError,
    encode_frame,
)

#: one representative wire conversation touching EVERY frame type —
#: incremental decoding must be boundary-proof for all of them, the
#: shared-stream SUBSCRIBE/PUBLISH pair included
ALL_TYPE_FRAMES = [
    (FrameType.OPEN, b"for $x in /a return $x"),
    (FrameType.CHUNK, "<doc>\xe9l\xe9ment</doc>".encode("utf-8")),
    (FrameType.FINISH, b""),
    (FrameType.RESULT, b"<r/>"),
    (FrameType.ERROR, b"XmlSyntaxError: boom"),
    (FrameType.BUSY, b"server is at its limit"),
    (FrameType.STATS, b'{"sessions": {}}'),
    (FrameType.OPENED, b"17"),
    (FrameType.SUBSCRIBE, b"xmark\nfor $p in /site return $p"),
    (FrameType.PUBLISH, b"xmark"),
    (FrameType.CHECKPOINT, b""),
    (FrameType.SNAPSHOT, b"\x00" * 16 + b"GCXS\x00\x01blob"),
    (FrameType.RESUME, b"GCXS\x00\x01blob"),
]


class TestEncode:
    def test_header_layout(self):
        frame = encode_frame(FrameType.OPEN, b"abc")
        assert frame[:HEADER.size] == HEADER.pack(1, 3)
        assert frame[HEADER.size:] == b"abc"

    def test_str_payload_is_utf8(self):
        frame = encode_frame(FrameType.CHUNK, "<é/>")
        assert frame.endswith("<é/>".encode("utf-8"))

    def test_empty_payload(self):
        assert encode_frame(FrameType.FINISH) == HEADER.pack(3, 0)

    def test_oversize_payload_refused(self):
        decoder = FrameDecoder(max_payload=10)
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(HEADER.pack(int(FrameType.CHUNK), 11))


class TestFrameDecoder:
    def test_roundtrip_all_types(self):
        payloads = {ftype: f"payload-{ftype.name}".encode() for ftype in FrameType}
        wire = b"".join(encode_frame(t, p) for t, p in payloads.items())
        frames = FrameDecoder().feed(wire)
        assert frames == [Frame(t, p) for t, p in payloads.items()]

    def test_byte_at_a_time(self):
        wire = encode_frame(FrameType.OPEN, b"q") + encode_frame(
            FrameType.CHUNK, b"<doc/>"
        )
        decoder = FrameDecoder()
        frames = []
        for index in range(len(wire)):
            frames.extend(decoder.feed(wire[index : index + 1]))
        assert [frame.type for frame in frames] == [FrameType.OPEN, FrameType.CHUNK]
        assert frames[1].text == "<doc/>"
        assert decoder.pending_bytes == 0

    def test_every_frame_type_survives_byte_at_a_time_delivery(self):
        """Satellite: the full frame vocabulary — SUBSCRIBE and
        PUBLISH included — decodes identically when the wire arrives
        one byte at a time."""
        assert {t for t, _ in ALL_TYPE_FRAMES} == set(FrameType)
        wire = b"".join(encode_frame(t, p) for t, p in ALL_TYPE_FRAMES)
        decoder = FrameDecoder()
        frames = []
        for index in range(len(wire)):
            frames.extend(decoder.feed(wire[index : index + 1]))
        assert frames == [Frame(t, p) for t, p in ALL_TYPE_FRAMES]
        assert decoder.pending_bytes == 0

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_random_split_points_reassemble_every_type(self, data):
        """Any segmentation of the byte stream — TCP guarantees order,
        nothing else — yields the same frames."""
        wire = b"".join(encode_frame(t, p) for t, p in ALL_TYPE_FRAMES)
        cuts = data.draw(
            st.lists(st.integers(0, len(wire)), max_size=16), label="cuts"
        )
        bounds = sorted({0, len(wire), *cuts})
        decoder = FrameDecoder()
        frames = []
        for start, stop in zip(bounds, bounds[1:]):
            frames.extend(decoder.feed(wire[start:stop]))
        assert frames == [Frame(t, p) for t, p in ALL_TYPE_FRAMES]
        assert decoder.pending_bytes == 0

    def test_partial_frame_stays_pending(self):
        wire = encode_frame(FrameType.RESULT, b"half")
        decoder = FrameDecoder()
        assert decoder.feed(wire[:-2]) == []
        assert decoder.pending_bytes == len(wire) - 2
        assert decoder.feed(wire[-2:]) == [Frame(FrameType.RESULT, b"half")]

    def test_unknown_frame_type(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            FrameDecoder().feed(HEADER.pack(99, 0))

    def test_text_property_decodes_utf8(self):
        (frame,) = FrameDecoder().feed(encode_frame(FrameType.ERROR, "bad ✗"))
        assert frame.text == "bad ✗"

    def test_max_payload_constant_sane(self):
        assert MAX_PAYLOAD >= 1024 * 1024
