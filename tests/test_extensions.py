"""Tests for the fragment extensions: aggregation and attribute value
templates (features the 2007 GCX did "not yet cover")."""

import pytest

from repro.baselines import FluxLikeEngine, FullDomEngine, UnsupportedQueryError
from repro.core.engine import GCXEngine
from repro.core.evaluator import compute_aggregate, format_number
from repro.core.roles import RoleReason
from repro.xquery import ast as q
from repro.xquery.normalize import NormalizationError, normalize_query
from repro.xquery.parser import XQueryParseError, parse_query

XML = "<a><b><v>1</v><v>2</v><v>3</v></b><b><v>10</v></b><b></b></a>"


@pytest.fixture
def engine():
    return GCXEngine()


class TestAggregateParsing:
    def test_count_expression(self):
        body = parse_query("for $b in /a/b return count($b/v)").body.body
        assert isinstance(body, q.AggregateExpr)
        assert body.aggregate.func == "count"

    def test_all_functions_parse(self):
        for func in ("count", "sum", "avg", "min", "max"):
            query = parse_query(f"<t>{{ {func}(/a/b/v) }}</t>")
            assert isinstance(query.body.body, q.AggregateExpr)

    def test_aggregate_in_comparison(self):
        body = parse_query(
            "for $b in /a/b return if (count($b/v) > 2) then $b else ()"
        ).body.body
        assert isinstance(body.condition.left, q.Aggregate)

    def test_element_named_count_still_works(self):
        # 'count' as an element name in a path must not be hijacked
        body = parse_query("for $b in /a/count return $b").body
        assert str(body.source.path) == "/a/count"

    def test_aggregate_over_bare_variable_rejected(self):
        with pytest.raises(NormalizationError, match="bare"):
            normalize_query(parse_query("for $b in /a/b return count($b)"))


class TestAggregateEvaluation:
    def test_count(self, engine):
        assert engine.evaluate("<t>{ count(/a/b/v) }</t>", XML) == "<t>4</t>"

    def test_count_per_binding(self, engine):
        out = engine.evaluate("for $b in /a/b return <n>{ count($b/v) }</n>", XML)
        assert out == "<n>3</n><n>1</n><n>0</n>"

    def test_sum(self, engine):
        assert engine.evaluate("<t>{ sum(/a/b/v) }</t>", XML) == "<t>16</t>"

    def test_avg(self, engine):
        assert engine.evaluate("<t>{ avg(/a/b/v) }</t>", XML) == "<t>4</t>"

    def test_min_max(self, engine):
        assert engine.evaluate("<t>{ min(/a/b/v) }</t>", XML) == "<t>1</t>"
        assert engine.evaluate("<t>{ max(/a/b/v) }</t>", XML) == "<t>10</t>"

    def test_empty_sequence_aggregates_to_zero(self, engine):
        assert engine.evaluate("<t>{ sum(/a/zzz) }</t>", XML) == "<t>0</t>"
        assert engine.evaluate("<t>{ count(/a/zzz) }</t>", XML) == "<t>0</t>"

    def test_count_of_attributes(self, engine):
        xml = '<a><b id="1"></b><b></b><b id="2"></b></a>'
        assert engine.evaluate("<t>{ count(/a/b/@id) }</t>", xml) == "<t>2</t>"

    def test_aggregate_comparison(self, engine):
        out = engine.evaluate(
            "for $b in /a/b return if (count($b/v) > 2) then \"big\" else ()", XML
        )
        assert out == "big"

    def test_aggregate_comparison_both_sides(self, engine):
        out = engine.evaluate(
            "for $b in /a/b return "
            "if (sum($b/v) >= count($b/v)) then \"ok\" else ()",
            XML,
        )
        # 6>=3, 10>=1, 0>=0
        assert out == "okokok"

    def test_non_numeric_values_skipped_in_sum(self, engine):
        xml = "<a><b><v>3</v><v>oops</v></b></a>"
        assert engine.evaluate("<t>{ sum(/a/b/v) }</t>", xml) == "<t>3</t>"

    def test_matches_dom_oracle(self, engine):
        dom = FullDomEngine()
        for text in (
            "for $b in /a/b return <n>{ count($b/v) }</n>",
            "<t>{ avg(/a/b/v) }</t>",
            "for $b in /a/b return if (max($b/v) >= 10) then $b else ()",
        ):
            assert engine.evaluate(text, XML) == dom.evaluate(text, XML)

    def test_buffer_cleared_after_aggregation(self, engine):
        result = engine.query("for $b in /a/b return count($b/v)", XML)
        assert result.stats.final_buffered == 0

    def test_count_role_skips_subtrees(self):
        """Counting buffers matched nodes but not their subtrees."""
        xml = "<a><b>" + "<v><deep><deeper>x</deeper></deep></v>" * 10 + "</b></a>"
        count_run = GCXEngine().query("for $b in /a/b return count($b/v)", xml)
        output_run = GCXEngine().query("for $b in /a/b return $b/v", xml)
        assert count_run.stats.watermark < output_run.stats.watermark


class TestAggregateRoles:
    def test_count_role_without_subtree_step(self):
        from repro.core.analysis import analyze_query

        analysis = analyze_query(
            normalize_query(parse_query("for $b in /a/b return count($b/v)"))
        )
        agg = [r for r in analysis.roles if r.reason is RoleReason.AGGREGATE]
        assert [str(r.path) for r in agg] == ["/a/b/v"]

    def test_sum_role_needs_values(self):
        from repro.core.analysis import analyze_query

        analysis = analyze_query(
            normalize_query(parse_query("for $b in /a/b return sum($b/v)"))
        )
        agg = [r for r in analysis.roles if r.reason is RoleReason.AGGREGATE]
        assert [str(r.path) for r in agg] == [
            "/a/b/v/descendant-or-self::node()"
        ]


class TestAggregateHelpers:
    def test_compute_aggregate_functions(self):
        values = ["1", "2", "3"]
        assert compute_aggregate("count", values) == 3
        assert compute_aggregate("sum", values) == 6.0
        assert compute_aggregate("avg", values) == 2.0
        assert compute_aggregate("min", values) == 1.0
        assert compute_aggregate("max", values) == 3.0

    def test_format_number(self):
        assert format_number(3) == "3"
        assert format_number(3.0) == "3"
        assert format_number(3.5) == "3.5"


class TestAttributeValueTemplates:
    def test_path_template(self, engine):
        out = engine.evaluate(
            'for $b in /a/b return <r n="{count($b/v)}"/>', XML
        )
        assert out == '<r n="3"></r><r n="1"></r><r n="0"></r>'

    def test_text_value_template(self, engine):
        xml = "<db><p><name>Ann</name></p></db>"
        out = engine.evaluate(
            'for $p in /db/p return <person name="{$p/name/text()}"/>', xml
        )
        assert out == '<person name="Ann"></person>'

    def test_attribute_of_attribute(self, engine):
        xml = '<db><p id="7"></p></db>'
        out = engine.evaluate('for $p in /db/p return <q i="{$p/@id}"/>', xml)
        assert out == '<q i="7"></q>'

    def test_multiple_values_space_joined(self, engine):
        out = engine.evaluate('<r all="{/a/b/v}"/>', XML)
        assert out == '<r all="1 2 3 10"></r>'

    def test_constant_attribute_untouched(self, engine):
        assert engine.evaluate('<r k="plain"/>', XML) == '<r k="plain"></r>'

    def test_escaped_braces_literal(self, engine):
        # a value that merely contains braces mid-string is constant
        assert (
            engine.evaluate('<r k="a{b}c"/>', XML).startswith('<r k="a{b}c"')
            is True
        )

    def test_template_matches_oracle(self, engine):
        dom = FullDomEngine()
        query = 'for $b in /a/b return <r s="{sum($b/v)}">{ $b/v }</r>'
        assert engine.evaluate(query, XML) == dom.evaluate(query, XML)

    def test_template_requires_single_expression(self):
        with pytest.raises(XQueryParseError):
            parse_query('<r k="{/a/b, /a/c}"/>')


class TestFluxRejectsDescendantExtensions:
    def test_descendant_inside_count_rejected(self):
        engine = FluxLikeEngine(dtd=None)
        with pytest.raises(UnsupportedQueryError):
            engine.compile("for $r in /site/regions return count($r//item)")

    def test_descendant_inside_template_rejected(self):
        engine = FluxLikeEngine(dtd=None)
        with pytest.raises(UnsupportedQueryError):
            engine.compile('for $r in /a return <x n="{count($r//b)}"/>')
