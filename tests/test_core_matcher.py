"""Unit tests for the streaming path matcher."""

import pytest

from repro.core.matcher import MatcherError, PathMatcher
from repro.xpath.parser import parse_path


def match_document(paths, xml_events):
    """Drive a matcher over a nested-list document description.

    *xml_events* is a recursive structure: (tag, [children]) where a
    child is either another tuple or the string "#text".
    Returns {node_path_string: {role: count}} for nodes with roles.
    """
    matcher = PathMatcher(paths)
    assignments = {}
    doc_states, doc_counts = matcher.initial()
    if doc_counts:
        assignments["/"] = dict(doc_counts)

    def visit(states, node, path):
        tag, children = node
        new_states, counts = matcher.enter_element(states, tag)
        label = f"{path}/{tag}"
        if counts:
            assignments.setdefault(label, {})
            for role, n in counts.items():
                assignments[label][role] = assignments[label].get(role, 0) + n
        for index, child in enumerate(children):
            if child == "#text":
                _, text_counts = matcher.enter_text(new_states)
                if text_counts:
                    tlabel = f"{label}/#text{index}"
                    assignments[tlabel] = dict(text_counts)
            else:
                visit(new_states, child, label)

    visit(doc_states, xml_events, "")
    return assignments


class TestChildPaths:
    def test_exact_match(self):
        roles = match_document(
            [("r", parse_path("/a/b"))], ("a", [("b", []), ("c", [])])
        )
        assert roles == {"/a/b": {"r": 1}}

    def test_wildcard(self):
        roles = match_document(
            [("r", parse_path("/a/*"))], ("a", [("b", []), ("c", [])])
        )
        assert roles == {"/a/b": {"r": 1}, "/a/c": {"r": 1}}

    def test_no_match_deeper(self):
        roles = match_document(
            [("r", parse_path("/a/b"))], ("a", [("x", [("b", [])])])
        )
        assert roles == {}

    def test_root_role(self):
        roles = match_document([("r1", parse_path("/"))], ("a", []))
        assert roles == {"/": {"r1": 1}}

    def test_text_test(self):
        roles = match_document(
            [("r", parse_path("/a/text()"))], ("a", ["#text", ("b", ["#text"])])
        )
        assert roles == {"/a/#text0": {"r": 1}}


class TestDescendantPaths:
    def test_descendant(self):
        roles = match_document(
            [("r", parse_path("/a/descendant::b"))],
            ("a", [("b", [("b", [])]), ("c", [("b", [])])]),
        )
        assert roles == {
            "/a/b": {"r": 1},
            "/a/b/b": {"r": 1},
            "/a/c/b": {"r": 1},
        }

    def test_descendant_or_self_node_subtree(self):
        roles = match_document(
            [("r", parse_path("/a/b/descendant-or-self::node()"))],
            ("a", [("b", [("c", []), "#text"])]),
        )
        assert roles == {
            "/a/b": {"r": 1},
            "/a/b/c": {"r": 1},
            "/a/b/#text1": {"r": 1},
        }

    def test_multiplicity_through_nested_descendants(self):
        # //a//b assigns twice to a b nested under two a ancestors
        roles = match_document(
            [("r", parse_path("//a//b"))],
            ("a", [("a", [("b", [])])]),
        )
        assert roles["/a/a/b"] == {"r": 2}

    def test_descendant_or_self_multiplicity(self):
        roles = match_document(
            [("r", parse_path("/a/descendant-or-self::node()/descendant::c"))],
            ("a", [("b", [("c", [])])]),
        )
        # c reached from a and from b
        assert roles["/a/b/c"] == {"r": 2}


class TestFirstWitness:
    def test_first_only_child(self):
        roles = match_document(
            [("r", parse_path("/a/p[1]"))],
            ("a", [("p", []), ("p", []), ("p", [])]),
        )
        assert roles == {"/a/p": {"r": 1}}

    def test_first_only_per_parent(self):
        roles = match_document(
            [("r", parse_path("/a/*/p[1]"))],
            ("a", [("x", [("p", []), ("p", [])]), ("y", [("p", [])])]),
        )
        assert roles == {"/a/x/p": {"r": 1}, "/a/y/p": {"r": 1}}

    def test_first_only_skips_non_matching(self):
        roles = match_document(
            [("r", parse_path("/a/p[1]"))],
            ("a", [("q", []), ("p", []), ("p", [])]),
        )
        assert roles == {"/a/p": {"r": 1}}


class TestMultipleRoles:
    def test_roles_independent(self):
        roles = match_document(
            [
                ("r1", parse_path("/a/b")),
                ("r2", parse_path("/a/*")),
                ("r3", parse_path("/a/b/descendant-or-self::node()")),
            ],
            ("a", [("b", [])]),
        )
        assert roles["/a/b"] == {"r1": 1, "r2": 1, "r3": 1}

    def test_same_path_twice_assigns_twice(self):
        roles = match_document(
            [("r1", parse_path("/a/b")), ("r2", parse_path("/a/b"))],
            ("a", [("b", [])]),
        )
        assert roles["/a/b"] == {"r1": 1, "r2": 1}


class TestValidation:
    def test_relative_path_rejected(self):
        with pytest.raises(MatcherError, match="absolute"):
            PathMatcher([("r", parse_path("a/b"))])

    def test_attribute_axis_rejected(self):
        with pytest.raises(MatcherError, match="attribute"):
            PathMatcher([("r", parse_path("/a/@id"))])

    def test_first_only_on_descendant_rejected(self):
        from repro.xpath.ast import Axis, NodeTest, Path, Step

        bad = Path(
            (Step(Axis.DESCENDANT, NodeTest("name", "b"), True),), absolute=True
        )
        with pytest.raises(MatcherError, match="positional"):
            PathMatcher([("r", bad)])

    def test_position_beyond_one_rejected_for_streaming(self):
        # [n>1] is supported by the XPath oracle but cannot be counted
        # consistently over a projected buffer; streaming compilation
        # rejects it with a clear message
        from repro.xpath.parser import parse_path as pp

        with pytest.raises(MatcherError, match="first-witness"):
            PathMatcher([("r", pp("/a/b[2]"))])
