"""Tests for the baseline engines and their comparative behaviour."""

import pytest

from repro.baselines import (
    FluxLikeEngine,
    FullDomEngine,
    ProjectionOnlyEngine,
    UnsupportedQueryError,
)
from repro.core.engine import GCXEngine
from repro.datasets.bib import BIB_QUERY, make_bib_document
from repro.xmark.generator import XMARK_DTD
from repro.xmlio.dtd import parse_dtd

DOC = make_bib_document(["book", "article", "book"])


class TestFullDomEngine:
    def test_buffers_whole_document(self):
        result = FullDomEngine().query("for $b in /bib/book return $b", DOC)
        # 1 bib + 3 entries x 4 nodes = 13 element nodes, no text
        assert result.stats.watermark == 13
        assert result.stats.final_buffered == 13

    def test_series_grows_monotonically(self):
        result = FullDomEngine().query("for $b in /bib/book return $b", DOC)
        assert result.stats.series == sorted(result.stats.series)

    def test_token_count_matches_streaming_engine(self):
        dom = FullDomEngine().query(BIB_QUERY, DOC)
        gcx = GCXEngine().query(BIB_QUERY, DOC)
        assert dom.stats.tokens == gcx.stats.tokens

    def test_compile_run_split(self):
        engine = FullDomEngine()
        compiled = engine.compile("for $b in /bib/book return $b")
        assert engine.run(compiled, DOC).output.count("<book>") == 2


class TestProjectionOnlyEngine:
    def test_same_output_as_gcx(self):
        gcx = GCXEngine().query(BIB_QUERY, DOC)
        proj = ProjectionOnlyEngine().query(BIB_QUERY, DOC)
        assert gcx.output == proj.output

    def test_buffer_never_shrinks(self):
        proj = ProjectionOnlyEngine().query(BIB_QUERY, DOC)
        assert proj.stats.series == sorted(proj.stats.series)
        assert proj.stats.nodes_purged == 0

    def test_projection_below_full_document(self):
        # a selective query projects fewer nodes than the document has
        proj = ProjectionOnlyEngine().query(
            "for $b in /bib/book return $b/title", DOC
        )
        dom = FullDomEngine().query("for $b in /bib/book return $b/title", DOC)
        assert proj.stats.watermark < dom.stats.watermark

    def test_memory_ordering_gcx_projection_dom(self):
        gcx = GCXEngine().query(BIB_QUERY, DOC)
        proj = ProjectionOnlyEngine().query(BIB_QUERY, DOC)
        dom = FullDomEngine().query(BIB_QUERY, DOC)
        assert gcx.stats.watermark <= proj.stats.watermark <= dom.stats.watermark


class TestFluxLikeEngine:
    @pytest.fixture
    def dtd(self):
        return parse_dtd(XMARK_DTD)

    def test_same_output_as_oracle(self, dtd):
        flux = FluxLikeEngine(dtd=dtd).query(BIB_QUERY, DOC)
        dom = FullDomEngine().query(BIB_QUERY, DOC)
        assert flux.output == dom.output

    def test_descendant_axis_reported_na(self, dtd):
        engine = FluxLikeEngine(dtd=dtd)
        with pytest.raises(UnsupportedQueryError):
            engine.compile("for $i in /a/descendant::b return $i")

    def test_double_slash_also_rejected(self, dtd):
        engine = FluxLikeEngine(dtd=dtd)
        with pytest.raises(UnsupportedQueryError):
            engine.compile("for $i in //b return $i")

    def test_descendant_in_condition_rejected(self, dtd):
        engine = FluxLikeEngine(dtd=dtd)
        with pytest.raises(UnsupportedQueryError):
            engine.compile(
                "for $x in /a return if (exists $x/descendant::b) then $x else ()"
            )

    def test_without_dtd_behaves_like_projection(self):
        flux = FluxLikeEngine(dtd=None).query(BIB_QUERY, DOC)
        proj = ProjectionOnlyEngine().query(BIB_QUERY, DOC)
        assert flux.stats.watermark == proj.stats.watermark
        assert flux.stats.nodes_purged == 0

    def test_with_dtd_between_gcx_and_projection(self, dtd):
        # needs a 3-level query so scope coarsening is strictly between
        query = (
            "for $s in /site return for $p in $s/people return "
            "for $n in $p/person return $n/name"
        )
        xml = (
            "<site><people>"
            + "<person><name>n1</name><junk>x</junk></person>" * 5
            + "</people><tail><t></t></tail></site>"
        )
        gcx = GCXEngine().query(query, xml)
        flux = FluxLikeEngine(dtd=dtd).query(query, xml)
        proj = ProjectionOnlyEngine().query(query, xml)
        assert gcx.output == flux.output == proj.output
        assert gcx.stats.watermark <= flux.stats.watermark <= proj.stats.watermark
        # flux purges something (scope release) unlike projection-only
        assert flux.stats.nodes_purged > 0
