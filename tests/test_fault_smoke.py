"""Crash-recovery smoke: seeded faults against a real worker pool.

The CI ``fault-smoke`` leg and the local tier run both execute this
module.  A 4-worker pool runs with a deterministic fault plan that
SIGKILLs whichever worker crosses a byte offset mid-session; the
resilient client must reconnect (the kernel routes it to a surviving
sibling), RESUME from its last snapshot, and finish **byte-identically**
— the end-to-end acceptance bar of DESIGN.md §16.  The SIGTERM leg
proves drain-to-checkpoint: a worker told to drain emits an unsolicited
SNAPSHOT before it stops accepting work.  Plus units for the
supervisor's seeded restart-backoff jitter (±25%).
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.engine import GCXEngine
from repro.server.client import GCXClient
from repro.server.workers import WorkerSupervisor, reuseport_available
from repro.xmark.generator import generate_document

QUERY = """
for $item in /site/regions/europe/item
return <r>{ $item/name/text() }</r>
"""

_DOC_CACHE: dict = {}


def _module_doc() -> str:
    if "doc" not in _DOC_CACHE:
        _DOC_CACHE["doc"] = generate_document(scale=1.2, seed=11)
    return _DOC_CACHE["doc"]


@pytest.fixture(scope="module")
def doc():
    return _module_doc()


@pytest.fixture(scope="module")
def expected(doc):
    return GCXEngine(record_series=False).query(QUERY, doc).output


# ---------------------------------------------------------------------------
# units: seeded restart-backoff jitter (no processes involved)
# ---------------------------------------------------------------------------


class TestRestartBackoffJitter:
    def _pool(self, seed):
        # never started — _restart_delay is pure given the seeded rng
        return WorkerSupervisor(
            workers=1, backoff_initial=0.1, backoff_max=2.0, backoff_seed=seed
        )

    def test_same_seed_same_schedule(self):
        a = [self._pool(7)._restart_delay(n) for n in range(1, 8)]
        b = [self._pool(7)._restart_delay(n) for n in range(1, 8)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [self._pool(7)._restart_delay(n) for n in range(1, 8)]
        b = [self._pool(8)._restart_delay(n) for n in range(1, 8)]
        assert a != b

    def test_jitter_stays_within_quarter_band(self):
        pool = self._pool(123)
        for failures in range(1, 12):
            base = min(0.1 * (2 ** (failures - 1)), 2.0)
            for _ in range(20):
                delay = pool._restart_delay(failures)
                assert 0.75 * base <= delay <= 1.25 * base

    def test_exponent_capped_at_backoff_max(self):
        pool = self._pool(5)
        assert pool._restart_delay(30) <= 1.25 * 2.0

    def test_zero_failures_treated_as_first(self):
        pool = self._pool(5)
        assert pool._restart_delay(0) <= 1.25 * 0.1


# ---------------------------------------------------------------------------
# end to end: SIGKILL mid-session, resume on a sibling, byte-identical
# ---------------------------------------------------------------------------


needs_reuseport = pytest.mark.skipif(
    not reuseport_available(),
    reason="SO_REUSEPORT unavailable; pool faults need shared accept",
)


@needs_reuseport
class TestKillAndResume:
    def test_sigkill_mid_session_resumes_byte_identical(self, doc, expected):
        data = doc.encode()
        kill_at = len(data) // 2
        pool = WorkerSupervisor(
            workers=4,
            max_sessions=16,
            backoff_initial=0.05,
            backoff_seed=7,
            fault_plan=f"seed=42,kill_at={kill_at}",
        )
        pool.start()
        try:
            client = GCXClient(
                pool.host, pool.port, chunk_size=8192, busy_retries=3
            )
            outcome = client.run_query_resilient(
                QUERY, data, checkpoint_interval=16384, resume_retries=5
            )
            assert outcome.output == expected
            totals = client.stats()["totals"]
            assert totals["checkpoints"]["sessions_resumed"] >= 1
            assert totals["checkpoints"]["taken"] >= 1
            client.close()
        finally:
            pool.stop(graceful=False)

    def test_sigterm_drains_to_checkpoint(self, doc, expected):
        # a worker asked to drain checkpoints its in-flight session and
        # sends the SNAPSHOT unsolicited; the same connection then
        # finishes normally (the OS socket outlives the drain window)
        data = doc.encode()
        pool = WorkerSupervisor(
            workers=1, max_sessions=8, restart=False, drain_timeout=20.0
        )
        pool.start()
        try:
            client = GCXClient(pool.host, pool.port, chunk_size=4096)
            client.open(QUERY, checkpointable=True)
            half = len(data) // 2
            for i in range(0, half, 4096):
                client.send_chunk(data[i : min(i + 4096, half)])
            os.kill(pool._procs[0].pid, signal.SIGTERM)
            time.sleep(0.5)
            for i in range(half, len(data), 4096):
                client.send_chunk(data[i : i + 4096])
            outcome = client.finish()
            assert outcome.output == expected
            assert client.last_snapshot is not None
            in_off, out_off, blob = client.last_snapshot
            assert 0 < in_off <= len(data) and blob
            client.close()
        finally:
            pool.stop(graceful=False)
