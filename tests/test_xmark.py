"""Tests for the XMark generator and the adapted queries."""

import pytest

from repro.baselines import FullDomEngine
from repro.core.engine import GCXEngine
from repro.xmark.generator import (
    XMARK_DTD,
    XMarkGenerator,
    generate_document,
    scale_for_bytes,
)
from repro.xmark.queries import ADAPTED_QUERIES, EXTRA_QUERIES
from repro.xmlio.dom import parse_dom
from repro.xmlio.dtd import parse_dtd
from repro.xmlio.lexer import tokenize


class TestGenerator:
    def test_deterministic(self):
        assert generate_document(0.5, seed=3) == generate_document(0.5, seed=3)

    def test_seed_changes_content(self):
        assert generate_document(0.5, seed=1) != generate_document(0.5, seed=2)

    def test_well_formed(self):
        tokens = list(tokenize(generate_document(0.5)))
        assert tokens  # lexer raises on malformed input

    def test_six_sections_in_order(self):
        doc = parse_dom(generate_document(0.3))
        site = doc.children[0]
        sections = [c.tag for c in site.children if c.is_element]
        assert sections == [
            "regions",
            "categories",
            "catgraph",
            "people",
            "open_auctions",
            "closed_auctions",
        ]

    def test_scale_grows_size(self):
        small = len(generate_document(0.5))
        large = len(generate_document(2.0))
        assert large > 2 * small

    def test_scale_for_bytes_close(self):
        scale = scale_for_bytes(120_000)
        size = len(generate_document(scale))
        assert 0.6 * 120_000 < size < 1.6 * 120_000

    def test_buyer_references_valid_person(self):
        doc = parse_dom(generate_document(0.5, seed=11))
        site = doc.children[0]
        people = [c for c in site.children if c.tag == "people"][0]
        ids = {p.attributes["id"] for p in people.children if p.is_element}
        closed = [c for c in site.children if c.tag == "closed_auctions"][0]
        for auction in closed.children:
            buyer = [c for c in auction.children if c.tag == "buyer"][0]
            assert buyer.attributes["person"] in ids

    def test_regions_have_items(self):
        generator = XMarkGenerator(scale=0.5)
        doc = parse_dom(generator.generate())
        regions = doc.children[0].children[0]
        for region in regions.children:
            items = [c for c in region.children if c.tag == "item"]
            assert len(items) == generator.n_items_per_region

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            XMarkGenerator(scale=0)

    def test_dtd_parses(self):
        dtd = parse_dtd(XMARK_DTD)
        assert dtd.declaration("site").sequence


class TestAdaptedQueries:
    @pytest.fixture(scope="class")
    def xml(self):
        return generate_document(scale=0.6, seed=5)

    @pytest.mark.parametrize("key", sorted(ADAPTED_QUERIES))
    def test_matches_oracle(self, key, xml):
        query = ADAPTED_QUERIES[key]
        gcx = GCXEngine().query(query.text, xml)
        dom = FullDomEngine().query(query.text, xml)
        assert gcx.output == dom.output

    @pytest.mark.parametrize("key", sorted(ADAPTED_QUERIES))
    def test_nonempty_results(self, key, xml):
        # every adapted query must actually exercise its operators
        output = GCXEngine().query(ADAPTED_QUERIES[key].text, xml).output
        assert len(output) > len("<result></result>")

    def test_q1_finds_person0(self, xml):
        output = GCXEngine().query(ADAPTED_QUERIES["q1"].text, xml).output
        assert output.count("<name>") == 1

    def test_q6_counts_all_items(self, xml):
        doc = parse_dom(xml)
        items = sum(
            1 for n in doc.iter_descendants() if n.is_element and n.tag == "item"
        )
        output = GCXEngine().query(ADAPTED_QUERIES["q6"].text, xml).output
        assert output.count("<item>") == items

    def test_q8_join_is_blocking(self, xml):
        from repro.baselines import ProjectionOnlyEngine

        q8 = ADAPTED_QUERIES["q8"]
        gcx = GCXEngine().query(q8.text, xml)
        proj = ProjectionOnlyEngine().query(q8.text, xml)
        # a join cannot do much better than its projection
        assert gcx.stats.watermark >= 0.5 * proj.stats.watermark

    def test_streaming_queries_have_small_buffers(self, xml):
        for key in ("q1", "q6", "q13", "q20"):
            result = GCXEngine().query(ADAPTED_QUERIES[key].text, xml)
            assert result.stats.watermark < 60, key

    def test_q20_grouped_buffers_people_section(self, xml):
        grouped = GCXEngine().query(EXTRA_QUERIES["q20-grouped"].text, xml)
        single = GCXEngine().query(ADAPTED_QUERIES["q20"].text, xml)
        assert grouped.stats.watermark > 3 * single.stats.watermark

    def test_q20_variants_consistent(self, xml):
        dom = FullDomEngine()
        grouped = dom.query(EXTRA_QUERIES["q20-grouped"].text, xml).output
        gcx_grouped = GCXEngine().query(EXTRA_QUERIES["q20-grouped"].text, xml).output
        assert grouped == gcx_grouped
