"""Plan-cache thread safety: concurrent compilation is single-flight,
and the compiled kernel's transition memo is safely shared.

The server admits many connections that open the same query at the
same instant; the cache must run the static analysis once per
canonical plan no matter how the compilations interleave, and its
hit/miss counters must stay consistent (``misses`` == actual
compilations).  Since the plan carries a lazy
:class:`~repro.core.matcher.PathDFA` whose memo every session extends
in place, concurrency must also never corrupt that shared state: the
suite closes with 64 sessions racing over one plan and a structural
audit of the memo they populated.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

import pytest

from repro.core.engine import GCXEngine
from repro.core.matcher import PathDFA
from repro.core.plan import PlanCache

QUERY = "<r>{ for $x in /doc/item return $x }</r>"


@dataclass
class _FakePlan:
    """Stands in for a QueryPlan: only canonical_text() is consulted."""

    canonical: str
    payload: object = field(default_factory=object)

    def canonical_text(self) -> str:
        return self.canonical


class _SlowCompiler:
    """Counts invocations and dawdles so racing threads really overlap."""

    def __init__(self, canonical_of=lambda text: text.strip(), delay=0.02):
        self.calls: list[str] = []
        self._lock = threading.Lock()
        self._canonical_of = canonical_of
        self._delay = delay

    def __call__(self, query_text, context=None):
        with self._lock:
            self.calls.append(query_text)
        time.sleep(self._delay)
        return _FakePlan(self._canonical_of(query_text))


def _run_threads(count, target):
    barrier = threading.Barrier(count)
    results: list[object] = [None] * count
    errors: list[BaseException] = []

    def runner(index):
        try:
            barrier.wait(timeout=30)
            results[index] = target(index)
        except BaseException as exc:  # noqa: BLE001 - asserted by callers
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    return results, errors


class TestSingleFlight:
    def test_same_query_compiles_once_across_threads(self):
        cache = PlanCache()
        compiler = _SlowCompiler()
        results, errors = _run_threads(
            16, lambda _i: cache.get_or_compile(QUERY, compiler)
        )
        assert not errors
        assert len(compiler.calls) == 1
        assert all(plan is results[0] for plan in results)
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == 15
        assert stats.size == 1

    def test_distinct_queries_compile_once_each(self):
        cache = PlanCache()
        compiler = _SlowCompiler()
        queries = [f"<r>{{ for $x in /doc/q{n} return $x }}</r>" for n in range(4)]
        results, errors = _run_threads(
            16, lambda i: cache.get_or_compile(queries[i % 4], compiler)
        )
        assert not errors
        assert sorted(compiler.calls) == sorted(queries)
        for index, plan in enumerate(results):
            assert plan is results[index % 4]
        stats = cache.stats
        assert stats.misses == 4
        assert stats.hits == 12
        assert stats.size == 4

    def test_whitespace_variants_share_one_flight(self):
        """Distinct sources with one canonical form analyse once."""
        cache = PlanCache()
        compiler = _SlowCompiler(canonical_of=lambda text: text.strip())

        def canonicalize(query_text):
            return query_text.strip(), None

        variants = [QUERY + " " * pad for pad in range(8)]
        results, errors = _run_threads(
            8,
            lambda i: cache.get_or_compile(
                variants[i], compiler, canonicalize_fn=canonicalize
            ),
        )
        assert not errors
        assert len(compiler.calls) == 1
        assert all(plan is results[0] for plan in results)
        stats = cache.stats
        assert stats.misses == 1
        assert stats.canonical_reuses == 7
        assert stats.hits == 0

    def test_failure_after_successful_compile_releases_flight(self):
        """A raise *after* compile_fn (canonical_text, storage) must
        retire the flight — otherwise the next lookup waits forever."""

        class _BadPlan:
            def canonical_text(self):
                raise RuntimeError("canonicalization exploded")

        cache = PlanCache()
        with pytest.raises(RuntimeError, match="canonicalization exploded"):
            cache.get_or_compile(QUERY, lambda text, context=None: _BadPlan())
        # The flight is gone: this would hang before the fix.
        good = _SlowCompiler(delay=0)
        cache.get_or_compile(QUERY, good)
        assert len(good.calls) == 1
        assert cache.stats.misses == 1

    def test_compile_failure_released_to_all_waiters(self):
        cache = PlanCache()
        attempts: list[str] = []
        lock = threading.Lock()

        def failing(query_text, context=None):
            with lock:
                attempts.append(query_text)
            time.sleep(0.01)
            raise ValueError("analysis rejected the query")

        results, errors = _run_threads(
            8, lambda _i: cache.get_or_compile(QUERY, failing)
        )
        assert len(errors) == 8
        assert all(isinstance(exc, ValueError) for exc in errors)
        assert all(result is None for result in results)
        assert cache.stats.misses == 0  # nothing was ever cached
        # The failed flight is gone: a later compile succeeds normally.
        good = _SlowCompiler(delay=0)
        plan = cache.get_or_compile(QUERY, good)
        assert len(good.calls) == 1
        assert cache.get_or_compile(QUERY, good) is plan
        assert cache.stats.misses == 1


class TestEngineLevel:
    def test_concurrent_engine_compiles_run_analysis_once(self, monkeypatch):
        import repro.core.engine as engine_module

        engine = GCXEngine()
        calls: list[int] = []
        lock = threading.Lock()
        real_analyze = engine_module.analyze_query

        def counting_analyze(*args, **kwargs):
            with lock:
                calls.append(1)
            time.sleep(0.02)
            return real_analyze(*args, **kwargs)

        monkeypatch.setattr(engine_module, "analyze_query", counting_analyze)
        results, errors = _run_threads(16, lambda _i: engine.compile(QUERY))
        assert not errors
        assert len(calls) == 1
        assert all(plan is results[0] for plan in results)
        stats = engine.plan_cache.stats
        assert stats.misses == 1
        assert stats.hits + stats.misses + stats.canonical_reuses == 16

    def test_concurrent_whitespace_variants_share_plan(self, monkeypatch):
        import repro.core.engine as engine_module

        engine = GCXEngine()
        calls: list[int] = []
        lock = threading.Lock()
        real_analyze = engine_module.analyze_query

        def counting_analyze(*args, **kwargs):
            with lock:
                calls.append(1)
            time.sleep(0.02)
            return real_analyze(*args, **kwargs)

        monkeypatch.setattr(engine_module, "analyze_query", counting_analyze)
        variants = [f"<r>{{ for $x in /doc/item{'  ' * pad} return $x }}</r>" for pad in range(8)]
        results, errors = _run_threads(8, lambda i: engine.compile(variants[i]))
        assert not errors
        assert len(calls) == 1
        assert all(plan is results[0] for plan in results)
        stats = engine.plan_cache.stats
        assert stats.misses == 1
        assert stats.canonical_reuses == 7


def _audit_dfa(dfa: PathDFA) -> None:
    """Structural audit of a shared memo after a concurrent run.

    1. the state table is a bijection (every canonical multiset has
       exactly one id, every id resolves back to its multiset);
    2. every memoized transition references interned states and its
       role counts are plain shareable dicts;
    3. the memo is *deterministic*: replaying every memoized transition
       on a fresh DFA over the same matcher yields an isomorphic
       machine — concurrent discovery changed nothing but the timing.
    """
    with dfa._lock:
        ids = dict(dfa._ids)
        states = list(dfa._states)
        element_memo = [dict(memo) for memo in dfa._element_memo]
    assert len(ids) == len(states)
    for key, state in ids.items():
        assert states[state] == key
    for memo in element_memo:
        for child, parent, counts in memo.values():
            assert 0 <= child < len(states)
            assert 0 <= parent < len(states)
            assert counts is None or isinstance(counts, dict)
    fresh = PathDFA(dfa.matcher)
    mapping = {dfa.start: fresh.start, PathDFA.dead: PathDFA.dead}
    queue = [dfa.start]
    while queue:
        state = queue.pop()
        for tag, (child, parent, counts) in element_memo[state].items():
            f_child, f_parent, f_counts = fresh.element(mapping[state], tag)
            assert f_counts == counts
            for shared, fresh_id in ((child, f_child), (parent, f_parent)):
                if shared not in mapping:
                    mapping[shared] = fresh_id
                    queue.append(shared)
                else:
                    assert mapping[shared] == fresh_id


class TestDfaSharingUnderConcurrency:
    """ISSUE 3: 64 server sessions over one plan must populate the
    lazy-DFA transition memo without races and with exactly one
    compile."""

    QUERY = (
        "<out>{ for $x in /doc/item return "
        "if (exists $x/name) then $x/name else () }</out>"
    )

    @staticmethod
    def _document(seed: int) -> str:
        """A document whose tag mix differs per session, so concurrent
        sessions genuinely race to discover new transitions."""
        rng = random.Random(seed)
        tags = [f"junk{n}" for n in range(6)] + ["extra", "noise"]
        parts = ["<doc>"]
        for _ in range(rng.randint(8, 16)):
            if rng.random() < 0.5:
                parts.append(f"<item><name>n{rng.randint(0, 9)}</name></item>")
            else:
                tag = rng.choice(tags)
                parts.append(f"<{tag}><inner>z</inner></{tag}>")
        parts.append("</doc>")
        return "".join(parts)

    def test_64_sessions_one_compile_consistent_memo(self):
        engine = GCXEngine()

        def run_session(index: int):
            plan = engine.compile(self.QUERY)
            session = engine.session(plan)
            document = self._document(index % 8)
            for start in range(0, len(document), 37):
                session.feed(document[start : start + 37])
            result = session.finish()
            return (plan, result.output, result.stats.watermark)

        results, errors = _run_threads(64, run_session)
        assert not errors
        plans = {id(plan) for plan, _out, _wm in results}
        assert len(plans) == 1  # one shared plan object
        stats = engine.plan_cache.stats
        assert stats.misses == 1  # exactly one compile
        plan = results[0][0]
        assert plan.dfa is not None

        # every session saw exactly what a fresh single-threaded engine
        # computes for the same document
        reference = GCXEngine()
        for index in range(8):
            expected = reference.query(self.QUERY, self._document(index))
            for thread_index in range(index, 64, 8):
                _plan, output, watermark = results[thread_index]
                assert output == expected.output
                assert watermark == expected.stats.watermark

        _audit_dfa(plan.dfa)
        # the memo saw every distinct tag of every document
        memo_stats = plan.dfa.stats()
        assert memo_stats["element_transitions"] >= 8
        assert engine.plan_cache.dfa_stats()["plans"] == 1

    def test_concurrent_raw_transitions_are_deterministic(self):
        """Hammer one DFA's memo from 32 threads walking random tag
        sequences; the resulting machine must be isomorphic to a
        sequentially-built one."""
        from repro.core.matcher import PathMatcher
        from repro.xpath.parser import parse_path

        dfa = PathDFA(
            PathMatcher(
                [
                    ("r1", parse_path("/doc/item/name")),
                    ("r2", parse_path("/doc/descendant::inner")),
                    ("r3", parse_path("/doc/item[1]")),
                ]
            )
        )
        tags = ["doc", "item", "name", "inner", "junk", "noise"]

        def walk(index: int):
            rng = random.Random(index)
            for _ in range(200):
                state = dfa.start
                for _depth in range(rng.randint(1, 5)):
                    state = dfa.element(state, rng.choice(tags))[0]
                    dfa.text(state)
                    if state == PathDFA.dead:
                        break
            return True

        results, errors = _run_threads(32, walk)
        assert not errors
        assert all(results)
        _audit_dfa(dfa)


class TestSequentialInvariantsStillHold:
    """The single-flight rework must not change sequential behaviour."""

    def test_exact_text_hit(self):
        cache = PlanCache()
        compiler = _SlowCompiler(delay=0)
        first = cache.get_or_compile(QUERY, compiler)
        second = cache.get_or_compile(QUERY, compiler)
        assert first is second
        assert len(compiler.calls) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_eviction_then_recompile(self):
        cache = PlanCache(capacity=1)
        compiler = _SlowCompiler(delay=0)
        cache.get_or_compile("q-one", compiler)
        cache.get_or_compile("q-two", compiler)  # evicts q-one
        cache.get_or_compile("q-one", compiler)
        assert compiler.calls == ["q-one", "q-two", "q-one"]
        assert cache.stats.misses == 3


class TestCodegenArtifactLifecycle:
    """ISSUE 6: generated-code kernels ride the plan through the cache
    — generated exactly once inside the single-flight, dropped with the
    plan on eviction, regenerated exactly once on re-admission."""

    QUERY_A = "<r>{ for $x in /doc/item return $x/name }</r>"
    QUERY_B = "<r>{ for $x in /doc/thing return $x }</r>"

    @staticmethod
    def _counting_codegen(monkeypatch):
        """Patch the engine's kernel generation with a counting proxy."""
        import repro.core.codegen as codegen_module
        import repro.core.engine as engine_module

        calls: list[int] = []
        lock = threading.Lock()
        real = codegen_module.generate_plan_kernels

        def counting(dfa, analysis, program):
            with lock:
                calls.append(1)
            time.sleep(0.01)
            return real(dfa, analysis, program)

        monkeypatch.setattr(engine_module, "generate_plan_kernels", counting)
        return calls

    def test_eviction_drops_kernels_and_readmission_regenerates_once(
        self, monkeypatch
    ):
        calls = self._counting_codegen(monkeypatch)
        engine = GCXEngine(plan_cache=PlanCache(capacity=1))
        plan_a = engine.compile(self.QUERY_A)
        assert plan_a.kernels is not None
        # projector + evaluator + fused lexer front-end (DESIGN.md §15)
        assert plan_a.kernels.kernel_count == 3
        assert len(calls) == 1
        chars_a = plan_a.kernels.source_chars

        snap = engine.plan_cache.codegen_stats()
        assert snap["plans"] == 1
        assert snap["source_chars"] == chars_a

        engine.compile(self.QUERY_B)  # evicts plan A, kernels and all
        assert len(calls) == 2
        snap = engine.plan_cache.codegen_stats()
        assert snap["plans"] == 1
        assert snap["source_chars"] != 0
        assert snap["source_chars"] == (
            engine.compile(self.QUERY_B).kernels.source_chars
        )

        plan_a2 = engine.compile(self.QUERY_A)  # re-admission: regenerate
        assert plan_a2 is not plan_a
        assert plan_a2.kernels is not plan_a.kernels
        assert plan_a2.kernels.source_chars == chars_a
        assert len(calls) == 3  # exactly one regeneration, not N

    def test_racing_sessions_generate_kernels_exactly_once(self, monkeypatch):
        calls = self._counting_codegen(monkeypatch)
        engine = GCXEngine()
        results, errors = _run_threads(
            32, lambda _i: engine.compile(self.QUERY_A)
        )
        assert not errors
        assert len(calls) == 1  # single-flight covers generation too
        assert all(plan is results[0] for plan in results)
        assert results[0].kernels is not None

    def test_32_sessions_install_audit_with_codegen(self):
        """The memo-install audit of ISSUE 3, re-run with the generated
        projector kernel driving the shared DFA: 32 concurrent sessions
        over one plan, every output equal to a fresh engine's, and the
        shared memo still a deterministic machine afterwards."""
        engine = GCXEngine(codegen=True)
        query = TestDfaSharingUnderConcurrency.QUERY
        document = TestDfaSharingUnderConcurrency._document

        def run_session(index: int):
            plan = engine.compile(query)
            assert plan.kernels is not None and plan.kernels.projector is not None
            session = engine.session(plan)
            doc = document(index % 8)
            for start in range(0, len(doc), 41):
                session.feed(doc[start : start + 41])
            result = session.finish()
            return (plan, result.output, result.stats.watermark)

        results, errors = _run_threads(32, run_session)
        assert not errors
        assert len({id(plan) for plan, _o, _w in results}) == 1
        plan = results[0][0]

        reference = GCXEngine(codegen=False)  # table oracle
        for index in range(8):
            expected = reference.query(query, document(index))
            for thread_index in range(index, 32, 8):
                _plan, output, watermark = results[thread_index]
                assert output == expected.output
                assert watermark == expected.stats.watermark

        _audit_dfa(plan.dfa)
        assert engine.plan_cache.codegen_stats()["projector_kernels"] == 1
