"""Plan-cache thread safety: concurrent compilation is single-flight.

The server admits many connections that open the same query at the
same instant; the cache must run the static analysis once per
canonical plan no matter how the compilations interleave, and its
hit/miss counters must stay consistent (``misses`` == actual
compilations).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import pytest

from repro.core.engine import GCXEngine
from repro.core.plan import PlanCache

QUERY = "<r>{ for $x in /doc/item return $x }</r>"


@dataclass
class _FakePlan:
    """Stands in for a QueryPlan: only canonical_text() is consulted."""

    canonical: str
    payload: object = field(default_factory=object)

    def canonical_text(self) -> str:
        return self.canonical


class _SlowCompiler:
    """Counts invocations and dawdles so racing threads really overlap."""

    def __init__(self, canonical_of=lambda text: text.strip(), delay=0.02):
        self.calls: list[str] = []
        self._lock = threading.Lock()
        self._canonical_of = canonical_of
        self._delay = delay

    def __call__(self, query_text, context=None):
        with self._lock:
            self.calls.append(query_text)
        time.sleep(self._delay)
        return _FakePlan(self._canonical_of(query_text))


def _run_threads(count, target):
    barrier = threading.Barrier(count)
    results: list[object] = [None] * count
    errors: list[BaseException] = []

    def runner(index):
        try:
            barrier.wait(timeout=30)
            results[index] = target(index)
        except BaseException as exc:  # noqa: BLE001 - asserted by callers
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    return results, errors


class TestSingleFlight:
    def test_same_query_compiles_once_across_threads(self):
        cache = PlanCache()
        compiler = _SlowCompiler()
        results, errors = _run_threads(
            16, lambda _i: cache.get_or_compile(QUERY, compiler)
        )
        assert not errors
        assert len(compiler.calls) == 1
        assert all(plan is results[0] for plan in results)
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == 15
        assert stats.size == 1

    def test_distinct_queries_compile_once_each(self):
        cache = PlanCache()
        compiler = _SlowCompiler()
        queries = [f"<r>{{ for $x in /doc/q{n} return $x }}</r>" for n in range(4)]
        results, errors = _run_threads(
            16, lambda i: cache.get_or_compile(queries[i % 4], compiler)
        )
        assert not errors
        assert sorted(compiler.calls) == sorted(queries)
        for index, plan in enumerate(results):
            assert plan is results[index % 4]
        stats = cache.stats
        assert stats.misses == 4
        assert stats.hits == 12
        assert stats.size == 4

    def test_whitespace_variants_share_one_flight(self):
        """Distinct sources with one canonical form analyse once."""
        cache = PlanCache()
        compiler = _SlowCompiler(canonical_of=lambda text: text.strip())

        def canonicalize(query_text):
            return query_text.strip(), None

        variants = [QUERY + " " * pad for pad in range(8)]
        results, errors = _run_threads(
            8,
            lambda i: cache.get_or_compile(
                variants[i], compiler, canonicalize_fn=canonicalize
            ),
        )
        assert not errors
        assert len(compiler.calls) == 1
        assert all(plan is results[0] for plan in results)
        stats = cache.stats
        assert stats.misses == 1
        assert stats.canonical_reuses == 7
        assert stats.hits == 0

    def test_failure_after_successful_compile_releases_flight(self):
        """A raise *after* compile_fn (canonical_text, storage) must
        retire the flight — otherwise the next lookup waits forever."""

        class _BadPlan:
            def canonical_text(self):
                raise RuntimeError("canonicalization exploded")

        cache = PlanCache()
        with pytest.raises(RuntimeError, match="canonicalization exploded"):
            cache.get_or_compile(QUERY, lambda text, context=None: _BadPlan())
        # The flight is gone: this would hang before the fix.
        good = _SlowCompiler(delay=0)
        cache.get_or_compile(QUERY, good)
        assert len(good.calls) == 1
        assert cache.stats.misses == 1

    def test_compile_failure_released_to_all_waiters(self):
        cache = PlanCache()
        attempts: list[str] = []
        lock = threading.Lock()

        def failing(query_text, context=None):
            with lock:
                attempts.append(query_text)
            time.sleep(0.01)
            raise ValueError("analysis rejected the query")

        results, errors = _run_threads(
            8, lambda _i: cache.get_or_compile(QUERY, failing)
        )
        assert len(errors) == 8
        assert all(isinstance(exc, ValueError) for exc in errors)
        assert all(result is None for result in results)
        assert cache.stats.misses == 0  # nothing was ever cached
        # The failed flight is gone: a later compile succeeds normally.
        good = _SlowCompiler(delay=0)
        plan = cache.get_or_compile(QUERY, good)
        assert len(good.calls) == 1
        assert cache.get_or_compile(QUERY, good) is plan
        assert cache.stats.misses == 1


class TestEngineLevel:
    def test_concurrent_engine_compiles_run_analysis_once(self, monkeypatch):
        import repro.core.engine as engine_module

        engine = GCXEngine()
        calls: list[int] = []
        lock = threading.Lock()
        real_analyze = engine_module.analyze_query

        def counting_analyze(*args, **kwargs):
            with lock:
                calls.append(1)
            time.sleep(0.02)
            return real_analyze(*args, **kwargs)

        monkeypatch.setattr(engine_module, "analyze_query", counting_analyze)
        results, errors = _run_threads(16, lambda _i: engine.compile(QUERY))
        assert not errors
        assert len(calls) == 1
        assert all(plan is results[0] for plan in results)
        stats = engine.plan_cache.stats
        assert stats.misses == 1
        assert stats.hits + stats.misses + stats.canonical_reuses == 16

    def test_concurrent_whitespace_variants_share_plan(self, monkeypatch):
        import repro.core.engine as engine_module

        engine = GCXEngine()
        calls: list[int] = []
        lock = threading.Lock()
        real_analyze = engine_module.analyze_query

        def counting_analyze(*args, **kwargs):
            with lock:
                calls.append(1)
            time.sleep(0.02)
            return real_analyze(*args, **kwargs)

        monkeypatch.setattr(engine_module, "analyze_query", counting_analyze)
        variants = [f"<r>{{ for $x in /doc/item{'  ' * pad} return $x }}</r>" for pad in range(8)]
        results, errors = _run_threads(8, lambda i: engine.compile(variants[i]))
        assert not errors
        assert len(calls) == 1
        assert all(plan is results[0] for plan in results)
        stats = engine.plan_cache.stats
        assert stats.misses == 1
        assert stats.canonical_reuses == 7


class TestSequentialInvariantsStillHold:
    """The single-flight rework must not change sequential behaviour."""

    def test_exact_text_hit(self):
        cache = PlanCache()
        compiler = _SlowCompiler(delay=0)
        first = cache.get_or_compile(QUERY, compiler)
        second = cache.get_or_compile(QUERY, compiler)
        assert first is second
        assert len(compiler.calls) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_eviction_then_recompile(self):
        cache = PlanCache(capacity=1)
        compiler = _SlowCompiler(delay=0)
        cache.get_or_compile("q-one", compiler)
        cache.get_or_compile("q-two", compiler)  # evicts q-one
        cache.get_or_compile("q-one", compiler)
        assert compiler.calls == ["q-one", "q-two", "q-one"]
        assert cache.stats.misses == 3
