"""Unit tests for the XPath parser."""

import pytest

from repro.xpath.ast import Axis
from repro.xpath.parser import XPathParseError, parse_path


class TestBasicPaths:
    def test_absolute_single_step(self):
        path = parse_path("/bib")
        assert path.absolute
        assert len(path.steps) == 1
        assert path.steps[0].axis is Axis.CHILD
        assert path.steps[0].test.name == "bib"

    def test_root_path(self):
        path = parse_path("/")
        assert path.absolute and not path.steps
        assert path.is_root

    def test_relative_path(self):
        path = parse_path("title")
        assert not path.absolute
        assert path.steps[0].test.name == "title"

    def test_multi_step(self):
        path = parse_path("/bib/book/title")
        assert [s.test.name for s in path.steps] == ["bib", "book", "title"]

    def test_dot_is_empty_relative_path(self):
        path = parse_path(".")
        assert not path.absolute and not path.steps


class TestNodeTests:
    def test_wildcard(self):
        path = parse_path("/bib/*")
        assert path.steps[1].test.kind == "wildcard"

    def test_text_test(self):
        path = parse_path("name/text()")
        assert path.steps[1].test.kind == "text"

    def test_node_test(self):
        path = parse_path("self::node()")
        assert path.steps[0].test.kind == "node"

    def test_name_with_underscore_and_digits(self):
        path = parse_path("/open_auctions/open_auction2")
        assert path.steps[1].test.name == "open_auction2"


class TestAxes:
    def test_explicit_child_axis(self):
        path = parse_path("child::book")
        assert path.steps[0].axis is Axis.CHILD

    def test_descendant_axis(self):
        path = parse_path("descendant::item")
        assert path.steps[0].axis is Axis.DESCENDANT

    def test_descendant_or_self_axis(self):
        path = parse_path("descendant-or-self::node()")
        assert path.steps[0].axis is Axis.DESCENDANT_OR_SELF

    def test_attribute_axis_at_shorthand(self):
        path = parse_path("@id")
        assert path.steps[0].axis is Axis.ATTRIBUTE
        assert path.steps[0].test.name == "id"

    def test_attribute_axis_explicit(self):
        path = parse_path("attribute::id")
        assert path.steps[0].axis is Axis.ATTRIBUTE

    def test_double_slash_collapses_to_descendant(self):
        # //item desugars to descendant-or-self::node()/child::item and
        # is then collapsed to the equivalent single descendant step so
        # streaming iteration stays in document order
        path = parse_path("//item")
        assert path.absolute
        assert len(path.steps) == 1
        assert path.steps[0].axis is Axis.DESCENDANT
        assert path.steps[0].test.name == "item"

    def test_inner_double_slash(self):
        path = parse_path("/site//item")
        assert len(path.steps) == 2
        assert path.steps[1].axis is Axis.DESCENDANT

    def test_double_slash_with_first_witness_not_collapsed(self):
        # //t[1] means "first t-child per ancestor-or-self node" and
        # must keep the two-step form
        path = parse_path("/a//t[1]")
        assert len(path.steps) == 3
        assert path.steps[1].axis is Axis.DESCENDANT_OR_SELF
        assert path.steps[2].first_only

    def test_trailing_double_slash_node_not_collapsed(self):
        path = parse_path("/a/descendant-or-self::node()")
        assert len(path.steps) == 2
        assert path.steps[1].axis is Axis.DESCENDANT_OR_SELF


class TestPredicates:
    def test_first_witness(self):
        path = parse_path("/bib/*/price[1]")
        assert path.steps[-1].first_only is True

    def test_predicate_with_spaces(self):
        path = parse_path("price[ 1 ]")
        assert path.steps[0].first_only

    def test_general_positional_predicate(self):
        path = parse_path("price[3]")
        assert path.steps[0].position == 3
        assert not path.steps[0].first_only
        assert str(path) == "price[3]"

    def test_zero_position_rejected(self):
        with pytest.raises(XPathParseError, match="1-based"):
            parse_path("price[0]")


class TestErrors:
    def test_empty_path(self):
        with pytest.raises(XPathParseError, match="empty"):
            parse_path("   ")

    def test_trailing_garbage(self):
        with pytest.raises(XPathParseError):
            parse_path("/a$")

    def test_missing_node_test(self):
        with pytest.raises(XPathParseError):
            parse_path("/a/")

    def test_attribute_with_function_test_rejected(self):
        with pytest.raises(XPathParseError, match="attribute axis"):
            parse_path("@text()")


class TestPathAlgebra:
    def test_str_roundtrip(self):
        for text in (
            "/bib/*/price[1]",
            "/bib/book/title/descendant-or-self::node()",
            "descendant::item",
            "@id",
        ):
            assert str(parse_path(text)) == text

    def test_concat(self):
        combined = parse_path("/bib").concat(parse_path("book/title"))
        assert str(combined) == "/bib/book/title"

    def test_concat_absolute_rejected(self):
        with pytest.raises(ValueError):
            parse_path("/a").concat(parse_path("/b"))

    def test_with_descendant_or_self_idempotent(self):
        once = parse_path("/a").with_descendant_or_self()
        assert once.with_descendant_or_self() == once

    def test_starts_with_and_suffix(self):
        long = parse_path("/site/people/person")
        short = parse_path("/site/people")
        assert long.starts_with(short)
        assert str(long.suffix_after(short)) == "person"

    def test_suffix_after_non_prefix_rejected(self):
        with pytest.raises(ValueError):
            parse_path("/a/b").suffix_after(parse_path("/x"))

    def test_paths_hashable(self):
        assert len({parse_path("/a"), parse_path("/a"), parse_path("/b")}) == 2
