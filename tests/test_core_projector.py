"""Unit tests for the stream pre-projector."""

from repro.core.buffer import Buffer
from repro.core.matcher import PathMatcher
from repro.core.projector import StreamProjector
from repro.xmlio.lexer import make_lexer
from repro.xpath.parser import parse_path


def project(paths, xml):
    """Run the projector to the end; returns the buffer."""
    buffer = Buffer()
    matcher = PathMatcher([(name, parse_path(p)) for name, p in paths])
    projector = StreamProjector(make_lexer(xml), matcher, buffer)
    projector.run_to_end()
    return buffer


def tags_live(buffer):
    return [n.tag for n in buffer.iter_live() if n.is_element]


class TestProjection:
    def test_only_matching_nodes_buffered(self):
        buffer = project(
            [("r1", "/"), ("r2", "/a"), ("r3", "/a/b")],
            "<a><b></b><c></c></a>",
        )
        assert tags_live(buffer) == ["a", "b"]

    def test_unmatched_document_empty_buffer(self):
        buffer = project([("r", "/x/y")], "<a><b></b></a>")
        assert buffer.live_count == 0
        assert buffer.stats.subtrees_skipped == 1

    def test_irrelevant_subtree_skipped(self):
        buffer = project(
            [("r1", "/a"), ("r2", "/a/keep")],
            "<a><skip><deep><deeper></deeper></deep></skip><keep></keep></a>",
        )
        assert tags_live(buffer) == ["a", "keep"]
        assert buffer.stats.subtrees_skipped == 1

    def test_skipped_tokens_counted(self):
        buffer = project(
            [("r1", "/a"), ("r2", "/a/keep")],
            "<a><skip><x></x></skip><keep></keep></a>",
        )
        assert buffer.stats.tokens == 8

    def test_spine_materialized_for_deep_match(self):
        # only the descendant item carries a role: its role-less
        # ancestors must still be materialized to hold the tree shape
        buffer = project(
            [("r1", "/"), ("r2", "/site/descendant::item"), ("keep", "/site")],
            "<site><regions><europe><item></item></europe></regions></site>",
        )
        assert tags_live(buffer) == ["site", "regions", "europe", "item"]
        regions = buffer.root.children[0].children[0]
        assert regions.tag == "regions"
        assert regions.role_count() == 0

    def test_roleless_spine_purged_when_closed_empty(self):
        # a spine is materialized for the first item, but once the item
        # and the spine close without roles they are collected
        buffer = project(
            [("r", "/a/b/c[1]")],
            "<a><b><c></c><c></c></b></a>",
        )
        # c[1] got the role; second c unmatched; when everything closes
        # only role-bearing chain remains (role never removed: no GC here)
        assert tags_live(buffer) == ["a", "b", "c"]

    def test_text_nodes_projected_by_node_test(self):
        buffer = project(
            [("r1", "/a"), ("r2", "/a/descendant-or-self::node()")],
            "<a>hello<b>world</b></a>",
        )
        texts = [n.text for n in buffer.iter_live() if n.is_text]
        assert texts == ["hello", "world"]

    def test_text_not_buffered_without_role(self):
        buffer = project([("r1", "/a"), ("r2", "/a/b")], "<a>hello<b>x</b></a>")
        assert [n.text for n in buffer.iter_live() if n.is_text] == []

    def test_attributes_copied_on_materialization(self):
        buffer = project([("r", "/a/b")], '<a><b id="7" k="v"></b></a>')
        b = [n for n in buffer.iter_live() if n.tag == "b"][0]
        assert b.attributes == {"id": "7", "k": "v"}

    def test_attributes_on_spine_nodes(self):
        buffer = project(
            [("r", "/a/descendant::c")], '<a x="1"><b y="2"><c></c></b></a>'
        )
        a = buffer.root.children[0]
        assert a.attributes == {"x": "1"}
        assert a.children[0].attributes == {"y": "2"}


class TestTokenAccounting:
    def test_every_token_recorded(self):
        buffer = project([("r1", "/"), ("r2", "/a/descendant-or-self::node()")],
                         "<a><b>t</b></a>")
        assert buffer.stats.tokens == 5
        assert len(buffer.stats.series) == 5

    def test_series_monotone_without_gc(self):
        buffer = project(
            [("r1", "/"), ("r2", "/a/descendant-or-self::node()")],
            "<a><b></b><c></c></a>",
        )
        series = buffer.stats.series
        assert series == sorted(series)

    def test_advance_returns_false_at_eof(self):
        buffer = Buffer()
        matcher = PathMatcher(
            [("r", parse_path("/a/descendant-or-self::node()"))]
        )
        projector = StreamProjector(make_lexer("<a></a>"), matcher, buffer)
        assert projector.advance() is True
        assert projector.advance() is True
        assert projector.advance() is False
        assert projector.advance() is False
        assert buffer.root.closed

    def test_skip_consumes_whole_subtree_in_one_advance(self):
        # an element with roles but no onward states fast-forwards to
        # its end tag within a single advance() call
        buffer = Buffer()
        matcher = PathMatcher([("r", parse_path("/a"))])
        projector = StreamProjector(make_lexer("<a><b></b></a>"), matcher, buffer)
        assert projector.advance() is True
        assert buffer.stats.tokens == 4  # <a><b></b></a> all consumed
        assert projector.advance() is False


class TestRoleAssignmentCounts:
    def test_multiplicity_assigned(self):
        buffer = project(
            [("r", "//a//b")],
            "<a><a><b></b></a></a>",
        )
        b = [n for n in buffer.iter_live() if n.tag == "b"][0]
        assert b.roles["r"] == 2

    def test_document_root_role(self):
        buffer = project([("r1", "/")], "<a></a>")
        assert buffer.root.roles["r1"] == 1
        # the root is not part of the live count
        assert buffer.live_count == 0
