"""Unit tests for the reference XPath evaluator (the oracle)."""

from repro.xmlio.dom import parse_dom
from repro.xpath.evaluator import AttributeRef, evaluate_path, item_string_value
from repro.xpath.parser import parse_path


def tags(items):
    return [item.tag for item in items]


DOC = parse_dom(
    '<bib><book id="b1"><title>T1</title><price>10</price></book>'
    '<article id="a1"><title>T2</title></article>'
    "<book id='b2'><title>T3</title><price>20</price></book></bib>"
)


class TestChildSteps:
    def test_absolute_child(self):
        assert tags(evaluate_path(parse_path("/bib/book"), DOC)) == ["book", "book"]

    def test_wildcard(self):
        assert tags(evaluate_path(parse_path("/bib/*"), DOC)) == [
            "book",
            "article",
            "book",
        ]

    def test_relative_from_context(self):
        book = evaluate_path(parse_path("/bib/book"), DOC)[0]
        assert tags(evaluate_path(parse_path("title"), book)) == ["title"]

    def test_absolute_from_inner_context_rebases_to_root(self):
        book = evaluate_path(parse_path("/bib/book"), DOC)[0]
        assert len(evaluate_path(parse_path("/bib/book"), book)) == 2

    def test_no_match_empty(self):
        assert evaluate_path(parse_path("/bib/zzz"), DOC) == []


class TestDescendantSteps:
    def test_descendant(self):
        titles = evaluate_path(parse_path("/bib/descendant::title"), DOC)
        assert len(titles) == 3

    def test_descendant_or_self(self):
        doc2 = parse_dom("<a><a><a></a></a></a>")
        result = evaluate_path(parse_path("/a/descendant-or-self::a"), doc2)
        assert len(result) == 3

    def test_double_slash(self):
        assert len(evaluate_path(parse_path("//title"), DOC)) == 3

    def test_descendant_text(self):
        texts = evaluate_path(parse_path("/bib/book/descendant::text()"), DOC)
        assert [t.text for t in texts] == ["T1", "10", "T3", "20"]

    def test_nodeset_is_document_order_and_deduplicated(self):
        doc2 = parse_dom("<a><b><c></c></b></a>")
        # //descendant-or-self reaches c through several derivations
        path = parse_path("/a/descendant-or-self::node()/descendant::c")
        result = evaluate_path(path, doc2)
        assert tags(result) == ["c"]

    def test_derivation_mode_counts_multiplicity(self):
        doc2 = parse_dom("<a><b><c></c></b></a>")
        path = parse_path("/a/descendant-or-self::node()/descendant::c")
        result = evaluate_path(path, doc2, count_derivations=True)
        # c is reached from a (descendant) and from b (descendant)
        assert tags(result) == ["c", "c"]


class TestPredicates:
    def test_first_only_per_context(self):
        prices = evaluate_path(parse_path("/bib/*/price[1]"), DOC)
        assert [p.string_value() for p in prices] == ["10", "20"]

    def test_first_only_single_context(self):
        first = evaluate_path(parse_path("/bib/*[1]"), DOC)
        assert [f.attributes["id"] for f in first] == ["b1"]

    def test_general_position(self):
        second = evaluate_path(parse_path("/bib/*[2]"), DOC)
        assert [s.attributes["id"] for s in second] == ["a1"]

    def test_position_beyond_matches_is_empty(self):
        assert evaluate_path(parse_path("/bib/*[9]"), DOC) == []


class TestAttributes:
    def test_attribute_axis(self):
        ids = evaluate_path(parse_path("/bib/book/@id"), DOC)
        assert all(isinstance(item, AttributeRef) for item in ids)
        assert [item.value for item in ids] == ["b1", "b2"]

    def test_attribute_wildcard(self):
        attrs = evaluate_path(parse_path("/bib/*/@*"), DOC)
        assert sorted(a.value for a in attrs) == ["a1", "b1", "b2"]

    def test_missing_attribute(self):
        assert evaluate_path(parse_path("/bib/book/@nope"), DOC) == []

    def test_item_string_value_of_attribute(self):
        ref = evaluate_path(parse_path("/bib/book/@id"), DOC)[0]
        assert item_string_value(ref) == "b1"

    def test_item_string_value_of_element(self):
        book = evaluate_path(parse_path("/bib/book"), DOC)[0]
        assert item_string_value(book) == "T110"


class TestTextTest:
    def test_text_children(self):
        texts = evaluate_path(parse_path("/bib/book/title/text()"), DOC)
        assert [t.text for t in texts] == ["T1", "T3"]

    def test_node_test_matches_everything(self):
        nodes = evaluate_path(parse_path("/bib/book/node()"), DOC)
        assert tags(nodes) == ["title", "price", "title", "price"]
