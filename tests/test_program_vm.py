"""The compiled operator-program VM against its interpreting oracle.

The :class:`~repro.core.program.CompiledEvaluator` executes a lowered
operator program, so bugs would have to live in the lowering (scoping,
jump targets, pre-resolved paths, pre-escaped fragments) or in the VM's
explicit loop frames (blocking child scans, descendant stacks with
deferred pushes, positional exhaustion).  These tests attack exactly
those seams:

* unit tests over the program shape (op set, raw-fragment merging,
  jump-target fencing, fallback on unsupported constructs, error
  parity message for message);
* differential tests: the query pool of ``test_differential`` plus
  aggregate, value-join (hoisted signOffs) and ``[1]`` first-witness
  queries — over random documents and random chunkings — must produce
  byte-identical output, watermark, per-token series and role
  statistics through the VM as through the interpreting
  :class:`~repro.core.evaluator.PullEvaluator`.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import GCXEngine
from repro.core.evaluator import EvaluationError
from repro.core.program import (
    OP_NAMES,
    ProgramCompileError,
    compile_program,
)
from repro.xmark.queries import ADAPTED_QUERIES
from repro.xpath.ast import Axis, NodeTest, Path, Step
from repro.xquery import ast as q
from repro.xquery.parser import parse_query

from test_differential import QUERIES, random_document

# queries exercising the features the issue singles out: aggregates,
# value-join hoisted signOffs, and [1] first-witness exhaustion
EXTRA_QUERIES = [
    "for $x in /r/a return $x/b[1]",
    "for $x in /r/a/b[1] return $x/text()",
    "for $x in /r/a return if (exists $x/b[1]) then $x/b else ()",
    "for $x in /r/a return ($x/b[1], $x/c[1])",
    "let $n := count(/r/a) return <t c=\"{$n}\">{ $n }</t>",
    "for $x in /r/a return <s>{ sum($x/b) }</s>",
    "for $x in /r/a return (avg($x/b), min($x/b), max($x/b))",
    # value join: the comparison roles are hoisted out of the inner loop
    "for $b in /r/a/b return for $x in /r/a return "
    "if ($x/@k = $b/@k) then <m>{ $x/@k }</m> else ()",
    "for $x in /r/a return for $y in /r/a return "
    "if ($x/b = $y/c) then <j>{ $x/@k }</j> else ()",
]

ALL_QUERIES = QUERIES + EXTRA_QUERIES


def _run_pair(query, xml, chunks=None):
    """One plan compiled twice, run through VM and oracle."""
    vm_engine = GCXEngine()
    oracle_engine = GCXEngine(compiled_eval=False)
    vm_plan = vm_engine.compile(query)
    assert vm_plan.program is not None, f"no program for {query!r}"
    if chunks is None:
        vm = vm_engine.run(vm_plan, xml)
        oracle = oracle_engine.run(oracle_engine.compile(query), xml)
    else:
        vm = _run_session(vm_engine, vm_plan, chunks)
        oracle = _run_session(
            oracle_engine, oracle_engine.compile(query), chunks
        )
    return vm, oracle


def _run_session(engine, plan, chunks):
    session = engine.session(plan)
    for chunk in chunks:
        session.feed(chunk)
    return session.finish()


def _assert_identical(vm, oracle, label=""):
    assert vm.output == oracle.output, label
    a, b = vm.stats, oracle.stats
    assert a.watermark == b.watermark, label
    assert a.tokens == b.tokens, label
    assert a.series == b.series, label
    assert a.nodes_buffered == b.nodes_buffered, label
    assert a.nodes_purged == b.nodes_purged, label
    assert a.roles_assigned == b.roles_assigned, label
    assert a.roles_removed == b.roles_removed, label
    assert a.final_buffered == b.final_buffered, label


def _partition(text: str, cuts: list[int]) -> list[str]:
    offsets = sorted({c % (len(text) + 1) for c in cuts})
    bounds = [0] + offsets + [len(text)]
    return [
        text[bounds[i] : bounds[i + 1]]
        for i in range(len(bounds) - 1)
        if bounds[i] != bounds[i + 1]
    ]


# ---------------------------------------------------------------------------
# program shape
# ---------------------------------------------------------------------------


class TestProgramShape:
    def test_expected_op_set(self):
        plan = GCXEngine().compile(ADAPTED_QUERIES["q1"].text)
        listing = plan.program.describe()
        for name in ("ForScan", "ForNext", "IfBranch", "Emit", "PathPull",
                     "SignOff", "Jump"):
            assert name in listing, listing
        # every op name the VM dispatches on is printable
        assert all(isinstance(v, str) for v in OP_NAMES.values())

    def test_constant_fragments_are_merged(self):
        # constructor + literal text compile into single raw emissions
        program = compile_program(
            parse_query('<a x="1">{ "hi &" }</a>')
        ).ops
        assert len(program) == 1
        assert program[0][1] == '<a x="1">hi &amp;</a>'

    def test_merging_respects_jump_targets(self):
        # the else-branch raw must stay a separate op: a jump targets it
        plan = GCXEngine().compile(
            'for $x in /r/a return if (exists $x/b) then "t" else "e"'
        )
        listing = plan.program.describe()
        assert "'t'" in listing and "'e'" in listing

    def test_programs_are_shared_via_plan(self):
        engine = GCXEngine()
        one = engine.compile(ADAPTED_QUERIES["q1"].text)
        two = engine.compile(ADAPTED_QUERIES["q1"].text)
        assert one.program is two.program

    def test_plan_cache_program_stats(self):
        engine = GCXEngine()
        engine.compile(ADAPTED_QUERIES["q1"].text)
        engine.compile(ADAPTED_QUERIES["q8"].text)
        stats = engine.plan_cache.program_stats()
        assert stats["plans"] == 2
        assert stats["ops"] > 0
        assert stats["fallbacks"] == 0

    def test_unsupported_construct_falls_back(self):
        # a mid-path attribute step is outside the compiled fragment
        bad = q.Query(
            q.PathExpr(
                None,
                Path(
                    (
                        Step(Axis.ATTRIBUTE, NodeTest("name", "k")),
                        Step(Axis.CHILD, NodeTest("name", "b")),
                    ),
                    absolute=True,
                ),
            )
        )
        with pytest.raises(ProgramCompileError):
            compile_program(bad)


# ---------------------------------------------------------------------------
# error parity
# ---------------------------------------------------------------------------


def _run_evaluator(body: q.Expr, xml: str, compiled: bool) -> str:
    """Run a hand-built (unvalidated) query body through one
    evaluator — the normalizer rejects scope errors long before the
    engine's evaluators see them, so parity of the runtime error
    paths is only reachable at this level."""
    from repro.core.buffer import Buffer
    from repro.core.evaluator import PullEvaluator
    from repro.core.matcher import PathMatcher
    from repro.core.program import CompiledEvaluator
    from repro.core.projector import StreamProjector
    from repro.xmlio.lexer import make_lexer
    from repro.xmlio.writer import XmlWriter
    from repro.xpath.parser import parse_path

    query = q.Query(body)
    buffer = Buffer()
    matcher = PathMatcher([("r1", parse_path("/descendant-or-self::node()"))])
    projector = StreamProjector(make_lexer(xml), matcher, buffer)
    writer = XmlWriter()
    if compiled:
        CompiledEvaluator(
            compile_program(query), projector, buffer, writer
        ).run()
    else:
        PullEvaluator(query, projector, buffer, writer).run()
    return writer.getvalue()


def _rel(*steps: Step) -> Path:
    return Path(tuple(steps))


_A_STEP = Step(Axis.CHILD, NodeTest("name", "a"))


class TestErrorParity:
    """The compiler defers the oracle's runtime errors into RAISE ops
    carrying the identical message, at the identical program point."""

    CASES = [
        # unbound output variable
        q.PathExpr("nope", Path()),
        # unbound path context inside a loop body
        q.ForExpr(
            "x",
            q.PathOperand(None, Path((_A_STEP,), absolute=True)),
            q.PathExpr("nope", _rel(_A_STEP)),
        ),
        # a scalar let binding iterated as a node sequence
        q.LetExpr(
            "s",
            q.Literal(1),
            q.ForExpr(
                "x", q.PathOperand("s", _rel(_A_STEP)), q.Empty()
            ),
        ),
        # a scalar let binding under an aggregate
        q.LetExpr(
            "s",
            q.Literal(1),
            q.AggregateExpr(
                q.Aggregate("count", q.PathOperand("s", _rel(_A_STEP)))
            ),
        ),
        # a for binding referenced after its loop popped it
        q.Sequence(
            (
                q.ForExpr(
                    "x",
                    q.PathOperand(None, Path((_A_STEP,), absolute=True)),
                    q.Empty(),
                ),
                q.PathExpr("x", Path()),
            )
        ),
        # a for source that was never normalized to a single step
        q.ForExpr(
            "x",
            q.PathOperand(None, Path((_A_STEP, _A_STEP), absolute=True)),
            q.Empty(),
        ),
    ]

    @pytest.mark.parametrize("body", CASES, ids=lambda b: str(b)[:48])
    def test_same_evaluation_error(self, body):
        xml = "<a>1</a>"  # the root element matches the /a for sources
        with pytest.raises(EvaluationError) as vm_err:
            _run_evaluator(body, xml, compiled=True)
        with pytest.raises(EvaluationError) as oracle_err:
            _run_evaluator(body, xml, compiled=False)
        assert str(vm_err.value) == str(oracle_err.value)

    def test_scalar_shadowing_matches_oracle(self):
        """The oracle resolves scalars before node bindings even when a
        for-loop rebinds the same name; the compiler replays that."""
        body = q.LetExpr(
            "x",
            q.Literal(7),
            q.ForExpr(
                "x",
                q.PathOperand(None, Path((_A_STEP,), absolute=True)),
                q.PathExpr("x", Path()),
            ),
        )
        xml = "<a>1</a>"  # one binding of the inner loop
        vm = _run_evaluator(body, xml, compiled=True)
        oracle = _run_evaluator(body, xml, compiled=False)
        assert vm == oracle == "7"


# ---------------------------------------------------------------------------
# differential: curated pool x random documents
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("query", ALL_QUERIES)
def test_vm_matches_oracle_on_pool(query):
    for seed in range(4):
        xml = random_document(random.Random(seed * 7919 + 3))
        vm, oracle = _run_pair(query, xml)
        _assert_identical(vm, oracle, f"query={query!r} seed={seed}")


@pytest.mark.parametrize("key", ["q1", "q6", "q8", "q13", "q20"])
def test_vm_matches_oracle_on_xmark(key, xmark_small):
    vm, oracle = _run_pair(ADAPTED_QUERIES[key].text, xmark_small)
    _assert_identical(vm, oracle, key)


@pytest.mark.parametrize("key", ["q1", "q8"])
def test_vm_matches_oracle_on_xmark_chunked(key, xmark_small):
    chunks = [
        xmark_small[i : i + 1777] for i in range(0, len(xmark_small), 1777)
    ]
    vm, oracle = _run_pair(ADAPTED_QUERIES[key].text, xmark_small, chunks)
    _assert_identical(vm, oracle, key)


def test_gc_toggle_matches_oracle():
    xml = random_document(random.Random(42))
    for query in ALL_QUERIES[:8]:
        vm = GCXEngine(gc_enabled=False).query(query, xml)
        oracle = GCXEngine(gc_enabled=False, compiled_eval=False).query(
            query, xml
        )
        _assert_identical(vm, oracle, query)


# ---------------------------------------------------------------------------
# differential: Hypothesis — random queries x random chunkings
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    query=st.sampled_from(ALL_QUERIES),
    doc_seed=st.integers(min_value=0, max_value=2**20),
    cuts=st.lists(st.integers(min_value=0, max_value=2**16), max_size=8),
)
def test_vm_equals_oracle_at_random_chunkings(query, doc_seed, cuts):
    xml = random_document(random.Random(doc_seed))
    chunks = _partition(xml, cuts)
    vm, oracle = _run_pair(query, xml, chunks)
    _assert_identical(vm, oracle, f"query={query!r} xml={xml!r}")


@settings(max_examples=25, deadline=None)
@given(
    query=st.sampled_from(EXTRA_QUERIES),
    doc_seed=st.integers(min_value=0, max_value=2**20),
    cuts=st.lists(st.integers(min_value=0, max_value=2**16), max_size=5),
)
def test_vm_chunked_equals_oracle_whole_string(query, doc_seed, cuts):
    """Cross-mode: the VM fed at arbitrary boundaries against the
    oracle's one-shot pull run."""
    xml = random_document(random.Random(doc_seed))
    engine = GCXEngine()
    plan = engine.compile(query)
    vm = _run_session(engine, plan, _partition(xml, cuts))
    oracle_engine = GCXEngine(compiled_eval=False, compiled=False)
    oracle = oracle_engine.run(oracle_engine.compile(query), xml)
    _assert_identical(vm, oracle, f"query={query!r} xml={xml!r}")
