"""Unit tests for signOff insertion (the rewritten query)."""

from repro.core.analysis import analyze_query
from repro.core.signoff import insert_signoffs
from repro.datasets.bib import BIB_QUERY
from repro.xquery import ast as q
from repro.xquery.normalize import normalize_query
from repro.xquery.parser import parse_query


def rewrite(text):
    normalized = normalize_query(parse_query(text))
    analysis = analyze_query(normalized)
    return insert_signoffs(normalized, analysis), analysis


def collect_signoffs(expr):
    return [e for e in q.iter_expressions(expr) if isinstance(e, q.SignOff)]


def loop_bodies(expr):
    """Map loop var -> body expression."""
    bodies = {}
    for sub in q.iter_expressions(expr):
        if isinstance(sub, q.ForExpr):
            bodies[sub.var] = sub.body
    return bodies


class TestPaperRewriting:
    def test_every_non_root_role_signed_off_exactly_once(self):
        rewritten, analysis = rewrite(BIB_QUERY)
        signoffs = collect_signoffs(rewritten.body)
        assert sorted(s.role for s in signoffs) == ["r2", "r3", "r4", "r5", "r6", "r7"]

    def test_signoffs_at_end_of_their_loop_body(self):
        rewritten, analysis = rewrite(BIB_QUERY)
        bodies = loop_bodies(rewritten.body)
        x_var = analysis.roles["r3"].anchor_var
        body = bodies[x_var]
        assert isinstance(body, q.Sequence)
        tail_roles = [
            item.role for item in body.items if isinstance(item, q.SignOff)
        ]
        assert tail_roles == ["r3", "r4", "r5"]
        # the signOffs are the last items of the sequence
        assert all(
            isinstance(item, q.SignOff) for item in body.items[-len(tail_roles):]
        )

    def test_signoff_operands_are_relative_to_loop_var(self):
        rewritten, analysis = rewrite(BIB_QUERY)
        signoffs = {s.role: s for s in collect_signoffs(rewritten.body)}
        x_var = analysis.roles["r3"].anchor_var
        assert signoffs["r3"].var == x_var
        assert str(signoffs["r3"].path) == "."
        assert str(signoffs["r4"].path) == "price[1]"
        assert str(signoffs["r5"].path) == "descendant-or-self::node()"

    def test_rewritten_matches_paper_text_structurally(self):
        """Parse the paper's own rewritten query and compare the
        signOff multiset (role -> operand path) with ours."""
        paper_text = """
        <r> {
        for $bib in /bib return
        ((for $x in $bib/* return
        (if (not(exists $x/price)) then $x else (),
        signOff($x,r3),
        signOff($x/price[1],r4),
        signOff($x/descendant-or-self::node(),r5))),
        (for $b in $bib/book return
        ($b/title,
        signOff($b,r6),
        signOff($b/title/descendant-or-self::node(),r7)
        )),
        signOff($bib,r2)) }
        </r>
        """
        paper = parse_query(paper_text)
        ours, _ = rewrite(BIB_QUERY)
        paper_sigs = {
            (s.role, str(s.path)) for s in collect_signoffs(paper.body)
        }
        our_sigs = {(s.role, str(s.path)) for s in collect_signoffs(ours.body)}
        assert our_sigs == paper_sigs


class TestPlacementShapes:
    def test_no_signoff_inside_conditionals(self):
        rewritten, _ = rewrite(
            "for $a in /x return if (exists $a/p) then $a/b else ()"
        )

        def check(expr, inside_if):
            if isinstance(expr, q.SignOff):
                assert not inside_if, "signOff must not be conditional"
            if isinstance(expr, q.IfExpr):
                check(expr.then, True)
                check(expr.orelse, True)
            else:
                for child in q.child_expressions(expr):
                    check(child, inside_if)

        check(rewritten.body, False)

    def test_hoisted_signoff_after_offending_loop(self):
        rewritten, analysis = rewrite(
            """
            for $s in /site return
              for $cl in $s/closed return
                for $p in $s/person return
                  for $t in $cl/auction return
                    if ($t/b = $p/i) then $t/v else ()
            """
        )
        bodies = loop_bodies(rewritten.body)
        # $cl's body must end with the hoisted signOffs for $t's roles
        cl_body = bodies["cl"]
        assert isinstance(cl_body, q.Sequence)
        hoisted = [i for i in cl_body.items if isinstance(i, q.SignOff)]
        assert hoisted
        assert all(s.var == "cl" for s in hoisted)
        assert any(str(s.path).startswith("auction") for s in hoisted)
        # and $t's own body carries no signOff for its binding role
        t_signoffs = collect_signoffs(bodies["t"])
        t_binding = [r for r in analysis.roles if r.anchor_var == "t"]
        for role in t_binding:
            assert all(s.role != role.name for s in t_signoffs)

    def test_query_end_signoffs_appended_to_top_level(self):
        rewritten, _ = rewrite(
            "for $a in /x return for $b in /y return "
            "if ($b/v = $a/w) then $b else ()"
        )
        body = rewritten.body
        assert isinstance(body, q.Sequence)
        assert isinstance(body.items[-1], q.SignOff)
        assert body.items[-1].var is None

    def test_loop_without_roles_unchanged(self):
        rewritten, _ = rewrite('"just text"')
        assert rewritten.body == q.TextLiteral("just text")
