"""The compiled lazy DFA against its NFA oracle.

The :class:`~repro.core.matcher.PathDFA` derives its transitions *from*
the :class:`~repro.core.matcher.PathMatcher`, so unit bugs would have to
live in the state canonicalization (multisets, exhaustion, interning) or
in the fused projector loop (skips, spines, statistics).  These tests
attack exactly those seams:

* unit tests over the interned state space (dead state, memoization,
  first-witness exhaustion rewriting the *parent* state, multiplicity
  counting under stacked descendant axes);
* Hypothesis differential tests: random small documents × random
  projection-path sets — including descendant-axis multiplicities and
  ``[1]`` exhaustion — must produce the exact same buffered tree, role
  multisets and per-token statistics through the compiled projector as
  through the interpreting oracle, at any input chunking.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.buffer import Buffer
from repro.core.matcher import PathDFA, PathMatcher
from repro.core.projector import CompiledStreamProjector, StreamProjector
from repro.xmlio.lexer import make_lexer
from repro.xpath.parser import parse_path

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _run_oracle(paths, xml):
    buffer = Buffer()
    matcher = PathMatcher([(name, parse_path(p)) for name, p in paths])
    StreamProjector(make_lexer(xml), matcher, buffer).run_to_end()
    return buffer


def _run_compiled(paths, xml, dfa=None, chunks=None):
    buffer = Buffer()
    if dfa is None:
        dfa = PathDFA(PathMatcher([(name, parse_path(p)) for name, p in paths]))
    source = xml if chunks is None else iter(chunks)
    CompiledStreamProjector(make_lexer(source), dfa, buffer).run_to_end()
    return buffer


def _role_tree(buffer):
    """(tag/text, sorted role multiset) per live node, preorder — the
    complete observable outcome of a projection run."""
    out = [("#document", sorted(buffer.root.roles.elements()))]
    for node in buffer.iter_live():
        label = node.tag if node.is_element else ("#text", node.text)
        out.append((label, sorted(node.roles.elements())))
    return out


def _assert_identical(paths, xml, chunks=None):
    oracle = _run_oracle(paths, xml)
    compiled = _run_compiled(paths, xml, chunks=chunks)
    assert _role_tree(compiled) == _role_tree(oracle)
    a, b = compiled.stats, oracle.stats
    assert (a.tokens, a.watermark, a.nodes_buffered, a.roles_assigned) == (
        b.tokens,
        b.watermark,
        b.nodes_buffered,
        b.roles_assigned,
    )
    assert a.subtrees_skipped == b.subtrees_skipped
    assert a.series == b.series
    assert compiled.live_count == oracle.live_count


# ---------------------------------------------------------------------------
# unit tests over the state space
# ---------------------------------------------------------------------------


class TestStateSpace:
    def test_dead_state_is_zero_and_absorbs(self):
        dfa = PathDFA(PathMatcher([("r", parse_path("/a/b"))]))
        child, parent, counts = dfa.element(dfa.start, "nope")
        assert child == PathDFA.dead == 0
        assert parent == dfa.start
        assert counts is None

    def test_transitions_are_memoized_once(self):
        dfa = PathDFA(PathMatcher([("r", parse_path("/a/b"))]))
        first = dfa.element(dfa.start, "a")
        again = dfa.element(dfa.start, "a")
        assert first is again  # the very same entry object
        stats = dfa.stats()
        assert stats["element_transitions"] == 1
        assert stats["states"] >= 2

    def test_role_counts_on_matching_step(self):
        dfa = PathDFA(PathMatcher([("r", parse_path("/a"))]))
        child, _parent, counts = dfa.element(dfa.start, "a")
        assert counts == {"r": 1}
        # nothing continues below /a: the child state is dead
        assert child == PathDFA.dead

    def test_first_witness_exhausts_the_parent_state(self):
        dfa = PathDFA(PathMatcher([("r", parse_path("/a/b[1]"))]))
        a_state, _root, _ = dfa.element(dfa.start, "a")
        child, parent_after, counts = dfa.element(a_state, "b")
        assert counts == {"r": 1}
        # the first b consumed the [1] instance: the parent moves to a
        # state where later b children assign nothing
        assert parent_after != a_state
        child2, parent2, counts2 = dfa.element(parent_after, "b")
        assert counts2 is None
        assert parent2 == parent_after
        assert child == child2 == PathDFA.dead

    def test_descendant_multiplicities_are_counted(self):
        dfa = PathDFA(PathMatcher([("r", parse_path("//a//b"))]))
        # walk <a><a><b/></a></a>: the inner b holds two derivations
        s1, _, _ = dfa.element(dfa.start, "a")
        s2, _, _ = dfa.element(s1, "a")
        _s3, _, counts = dfa.element(s2, "b")
        assert counts == {"r": 2}

    def test_document_roles_on_start_state(self):
        dfa = PathDFA(PathMatcher([("root", parse_path("/"))]))
        assert dfa.start_roles == {"root": 1}

    def test_text_transition_memoized(self):
        dfa = PathDFA(PathMatcher([("r", parse_path("/a/text()"))]))
        a_state, _, _ = dfa.element(dfa.start, "a")
        counts, parent = dfa.text(a_state)
        assert counts == {"r": 1}
        assert parent == a_state
        assert dfa.text(a_state) is dfa.text(a_state)
        assert dfa.stats()["text_transitions"] == 1

    def test_text_can_exhaust_a_first_witness_step(self):
        dfa = PathDFA(PathMatcher([("r", parse_path("/a/text()[1]"))]))
        a_state, _, _ = dfa.element(dfa.start, "a")
        counts, parent = dfa.text(a_state)
        assert counts == {"r": 1}
        assert parent != a_state
        counts2, parent2 = dfa.text(parent)
        assert counts2 is None
        assert parent2 == parent


# ---------------------------------------------------------------------------
# differential properties: compiled kernel ≡ NFA oracle
# ---------------------------------------------------------------------------

_TAGS = ("a", "b", "c")


@st.composite
def xml_trees(draw, max_depth=4):
    """A random XML document over a small alphabet, with text and
    attributes (attributes exercise the skip validator and spines)."""

    def node(depth):
        tag = draw(st.sampled_from(_TAGS))
        attrs = ""
        if draw(st.booleans()):
            attrs = f' k="v{draw(st.integers(0, 2))}"'
        if depth >= max_depth or draw(st.integers(0, 2)) == 0:
            kind = draw(st.integers(0, 2))
            if kind == 0:
                return f"<{tag}{attrs}>t{draw(st.integers(1, 3))}</{tag}>"
            if kind == 1:
                return f"<{tag}{attrs}/>"
            return f"<{tag}{attrs}></{tag}>"
        children = "".join(
            node(depth + 1) for _ in range(draw(st.integers(0, 3)))
        )
        return f"<{tag}{attrs}>{children}</{tag}>"

    body = "".join(node(1) for _ in range(draw(st.integers(1, 3))))
    return f"<r>{body}</r>"


@st.composite
def projection_paths(draw):
    """A random valid projection path: child / descendant /
    descendant-or-self axes, with ``[1]`` only on child steps —
    exactly the language the static analysis emits."""
    steps = []
    for _ in range(draw(st.integers(1, 3))):
        axis = draw(st.sampled_from(("", "descendant::", "descendant-or-self::")))
        if axis == "descendant-or-self::":
            test = "node()"
        else:
            test = draw(st.sampled_from(_TAGS + ("*", "text()")))
        first = axis == "" and draw(st.booleans())
        steps.append(axis + test + ("[1]" if first else ""))
    return "/r/" + "/".join(steps)


@st.composite
def path_sets(draw):
    count = draw(st.integers(1, 3))
    return [(f"r{i}", draw(projection_paths())) for i in range(count)]


@given(xml_trees(), path_sets())
@settings(max_examples=120, deadline=None)
def test_dfa_assigns_identical_role_multisets(xml, paths):
    _assert_identical(paths, xml)


def test_unicode_whitespace_text_parity():
    """Whitespace policy is Unicode strip(), not the XML regex: runs of
    \\xa0 / \\x0b — and entities resolving to whitespace — must be
    dropped by the compiled kernel exactly as by the oracle."""
    xml = "<r><a>\xa0</a><b>\x0b</b><a>&#32; &#9;</a><a>&#65;</a>x</r>"
    for paths in (
        [("r", "/r/a/text()")],
        [("r", "/r/descendant-or-self::node()")],
        [("r", "/r/a")],  # exercises the skip fast path over <b>
    ):
        _assert_identical(paths, xml)
        for chunk in (1, 3, 5):
            chunks = [xml[i : i + chunk] for i in range(0, len(xml), chunk)]
            _assert_identical(paths, xml, chunks=chunks)


@given(xml_trees(), projection_paths(), st.integers(1, 12))
@settings(max_examples=60, deadline=None)
def test_dfa_identical_at_any_chunking(xml, path, chunk):
    """The fused skip loop must survive arbitrary chunk boundaries."""
    paths = [("r", path)]
    chunks = [xml[i : i + chunk] for i in range(0, len(xml), chunk)]
    oracle = _run_oracle(paths, xml)
    compiled = _run_compiled(paths, xml, chunks=chunks)
    assert _role_tree(compiled) == _role_tree(oracle)
    assert compiled.stats.series == oracle.stats.series
    assert compiled.stats.subtrees_skipped == oracle.stats.subtrees_skipped


@given(xml_trees(), path_sets())
@settings(max_examples=40, deadline=None)
def test_shared_dfa_replays_identically(xml, paths):
    """One dfa reused across runs (as the PlanCache shares it) behaves
    like a fresh one — the memo never leaks per-stream state."""
    dfa = PathDFA(PathMatcher([(name, parse_path(p)) for name, p in paths]))
    first = _run_compiled(paths, xml, dfa=dfa)
    second = _run_compiled(paths, xml, dfa=dfa)
    assert _role_tree(first) == _role_tree(second)
    assert first.stats.series == second.stats.series
    assert _role_tree(second) == _role_tree(_run_oracle(paths, xml))
