"""Unit tests for the static analysis: projection paths, roles,
signOff placement — checked against the paper's worked example."""

import pytest

from repro.core.analysis import AnalysisError, analyze_query
from repro.core.roles import RoleReason
from repro.datasets.bib import BIB_QUERY
from repro.xquery.normalize import normalize_query
from repro.xquery.parser import parse_query


def analyze(text, **kw):
    return analyze_query(normalize_query(parse_query(text)), **kw)


class TestPaperExample:
    """The query of Section 1 must yield exactly roles r1–r7."""

    def test_role_paths_match_paper(self):
        analysis = analyze(BIB_QUERY)
        paths = [str(role.path) for role in analysis.roles]
        assert paths == [
            "/",
            "/bib",
            "/bib/*",
            "/bib/*/price[1]",
            "/bib/*/descendant-or-self::node()",
            "/bib/book",
            "/bib/book/title/descendant-or-self::node()",
        ]

    def test_role_reasons(self):
        analysis = analyze(BIB_QUERY)
        reasons = [role.reason for role in analysis.roles]
        assert reasons == [
            RoleReason.ROOT,
            RoleReason.BINDING,
            RoleReason.BINDING,
            RoleReason.EXISTS,
            RoleReason.OUTPUT,
            RoleReason.BINDING,
            RoleReason.OUTPUT,
        ]

    def test_signoff_placements_match_rewritten_query(self):
        analysis = analyze(BIB_QUERY)
        roles = analysis.roles
        # r2 signs off at the end of $bib's body; r3, r4, r5 in the
        # first inner loop; r6, r7 in the second.
        assert roles["r2"].placement_var == roles["r2"].anchor_var
        x_var = roles["r3"].anchor_var
        assert roles["r4"].placement_var == x_var
        assert roles["r5"].placement_var == x_var
        b_var = roles["r6"].anchor_var
        assert roles["r7"].placement_var == b_var
        assert not any(role.hoisted for role in roles)

    def test_root_role_never_signed_off(self):
        analysis = analyze(BIB_QUERY)
        placed = [r for roles in analysis.placements.values() for r in roles]
        assert analysis.roles["r1"] not in placed


class TestDerivationRules:
    def test_binding_role_per_loop(self):
        analysis = analyze("for $a in /x return for $b in $a/y return ()")
        bindings = [r for r in analysis.roles if r.reason is RoleReason.BINDING]
        assert [str(r.path) for r in bindings] == ["/x", "/x/y"]

    def test_output_role_gets_subtree_step(self):
        analysis = analyze("for $a in /x return $a/b")
        outputs = [r for r in analysis.roles if r.reason is RoleReason.OUTPUT]
        assert str(outputs[0].path) == "/x/b/descendant-or-self::node()"

    def test_output_of_variable_itself(self):
        analysis = analyze("for $a in /x return $a")
        outputs = [r for r in analysis.roles if r.reason is RoleReason.OUTPUT]
        assert str(outputs[0].path) == "/x/descendant-or-self::node()"

    def test_text_output_role_has_no_subtree_step(self):
        analysis = analyze("for $a in /x return $a/name/text()")
        outputs = [r for r in analysis.roles if r.reason is RoleReason.OUTPUT]
        assert str(outputs[0].path) == "/x/name/text()"

    def test_exists_role_gets_first_witness(self):
        analysis = analyze(
            "for $a in /x return if (exists $a/p) then $a/b else ()"
        )
        exists = [r for r in analysis.roles if r.reason is RoleReason.EXISTS]
        assert str(exists[0].path) == "/x/p[1]"

    def test_first_witness_can_be_disabled(self):
        analysis = analyze(
            "for $a in /x return if (exists $a/p) then $a/b else ()",
            first_witness=False,
        )
        exists = [r for r in analysis.roles if r.reason is RoleReason.EXISTS]
        assert str(exists[0].path) == "/x/p"

    def test_exists_on_attribute_has_no_witness_predicate(self):
        analysis = analyze(
            "for $a in /x return if (exists $a/p/@id) then $a/b else ()"
        )
        exists = [r for r in analysis.roles if r.reason is RoleReason.EXISTS]
        # the owner path is buffered without [1]: the first p may lack @id
        assert str(exists[0].path) == "/x/p"

    def test_exists_on_bound_variable_needs_no_role(self):
        analysis = analyze("for $a in /x return if (exists $a) then $a/b else ()")
        assert not [r for r in analysis.roles if r.reason is RoleReason.EXISTS]

    def test_comparison_roles_both_sides(self):
        analysis = analyze(
            'for $a in /x return if ($a/l = $a/r) then "y" else ()'
        )
        comps = [r for r in analysis.roles if r.reason is RoleReason.COMPARISON]
        assert [str(r.path) for r in comps] == [
            "/x/l/descendant-or-self::node()",
            "/x/r/descendant-or-self::node()",
        ]

    def test_comparison_with_literal_single_role(self):
        analysis = analyze('for $a in /x return if ($a/l = "v") then "y" else ()')
        comps = [r for r in analysis.roles if r.reason is RoleReason.COMPARISON]
        assert len(comps) == 1

    def test_attribute_comparison_role_on_owner(self):
        analysis = analyze(
            'for $a in /x return if ($a/p/@income >= 5) then "y" else ()'
        )
        comps = [r for r in analysis.roles if r.reason is RoleReason.COMPARISON]
        assert str(comps[0].path) == "/x/p"

    def test_attribute_comparison_on_variable_itself_needs_no_role(self):
        analysis = analyze(
            'for $a in /x return if ($a/@id = "1") then "y" else ()'
        )
        assert not [r for r in analysis.roles if r.reason is RoleReason.COMPARISON]


class TestHoisting:
    JOIN_QUERY = """
    for $s in /site return
      for $cl in $s/closed return
        for $pp in $s/people return
          for $p in $pp/person return
            for $t in $cl/auction return
              if ($t/buyer = $p/id) then $t/price else ()
    """

    def test_auction_roles_hoisted_to_join_anchor(self):
        analysis = analyze(self.JOIN_QUERY)
        t_roles = [r for r in analysis.roles if r.anchor_var == "t"]
        assert t_roles
        # $t's loop sits inside the non-ancestor loops $pp/$p: its
        # roles re-root at $cl, the deepest binding ancestor above them
        for role in t_roles:
            assert role.hoisted
            assert role.placement_var == "cl"
            assert role.signoff_var == "cl"

    def test_hoisted_roles_cover_the_auction_scan(self):
        analysis = analyze(self.JOIN_QUERY)
        hoisted_paths = {str(r.path) for r in analysis.roles if r.hoisted}
        assert "/site/closed/auction" in hoisted_paths  # binding role of $t

    def test_person_side_roles_hoisted_above_cl_loop(self):
        # $p's binder is enclosed by the non-ancestor loop $cl (the
        # people section would be re-scanned if several closed sections
        # existed), so $p's roles conservatively re-root at $s.
        analysis = analyze(self.JOIN_QUERY)
        person_roles = [r for r in analysis.roles if r.anchor_var == "p"]
        assert person_roles
        for role in person_roles:
            assert role.hoisted
            assert role.placement_var == "s"

    def test_unrelated_top_level_loops_hoist_to_query_end(self):
        analysis = analyze(
            "for $a in /x return for $b in /y return if ($b/v = $a/w) then $b else ()"
        )
        hoisted = [r for r in analysis.roles if r.hoisted]
        assert hoisted
        assert all(r.placement_var is None for r in hoisted)
        assert all(r.signoff_var is None for r in hoisted)
        assert all(r.signoff_path.absolute for r in hoisted)


class TestValidation:
    def test_requires_normalized_query(self):
        with pytest.raises(AnalysisError, match="single-step"):
            analyze_query(parse_query("for $p in /a/b/c return $p"))

    def test_rejects_where_clause(self):
        with pytest.raises(AnalysisError, match="where"):
            analyze_query(parse_query('for $p in /a where $p/x = "1" return $p'))

    def test_rejects_user_signoff(self):
        with pytest.raises(AnalysisError, match="signOff"):
            analyze("for $p in /a return signOff($p, r1)")

    def test_rejects_duplicate_variables(self):
        from repro.xquery import ast as q
        from repro.xpath.parser import parse_path

        inner = q.ForExpr(
            "p",
            q.PathOperand("p", parse_path("b")),
            q.PathExpr("p", parse_path(".")),
        )
        outer = q.ForExpr("p", q.PathOperand(None, parse_path("/a")), inner)
        with pytest.raises(AnalysisError, match="duplicate"):
            analyze_query(q.Query(outer))
