"""Checkpoint/resume over the wire protocol (DESIGN.md §16).

Every test runs a real :class:`ServerThread` and drives the new
CHECKPOINT / SNAPSHOT / RESUME frames through :class:`GCXClient`: a
session checkpointed mid-stream finishes byte-identically; its blob
resumes on a *different* server (fresh process state) and the stitched
output equals the unbroken run; the resilient client survives a
connection severed mid-RESULT-frame by the fault injector; and the
server refuses garbage, stale, and non-checkpointable requests with
ERROR frames rather than dying.
"""

from __future__ import annotations

import pytest

from repro.core.engine import GCXEngine
from repro.core.snapshot import FORMAT_VERSION
from repro.server.client import GCXClient, ServerError
from repro.server.service import ServerThread
from repro.testing.faults import FaultPlan
from repro.xmark.generator import generate_document
from repro.xmark.queries import ADAPTED_QUERIES

QUERY = ADAPTED_QUERIES["q1"].text

_DOC_CACHE: dict = {}


def _module_doc() -> str:
    if "doc" not in _DOC_CACHE:
        _DOC_CACHE["doc"] = generate_document(scale=0.5, seed=7)
    return _DOC_CACHE["doc"]


@pytest.fixture(scope="module")
def doc():
    return _module_doc()


@pytest.fixture(scope="module")
def expected(doc):
    return GCXEngine(record_series=False).query(QUERY, doc).output


def _send_range(client, data: bytes, start: int, stop: int, step: int = 4096):
    for i in range(start, stop, step):
        client.send_chunk(data[i : min(i + step, stop)])


class TestCheckpointFrame:
    def test_checkpoint_then_finish_byte_identical(self, doc, expected):
        data = doc.encode()
        with ServerThread(max_sessions=4) as handle:
            client = GCXClient(handle.host, handle.port)
            client.open(QUERY, checkpointable=True)
            half = len(data) // 2
            _send_range(client, data, 0, half)
            in_off, out_off, blob = client.checkpoint()
            assert in_off == half
            assert blob and client.last_snapshot == (in_off, out_off, blob)
            _send_range(client, data, half, len(data))
            outcome = client.finish()
            client.close()
        # results read before the SNAPSHOT are re-queued in order, so
        # finish() still assembles the complete output
        assert outcome.output == expected

    def test_checkpoint_counts_in_metrics(self, doc, expected):
        data = doc.encode()
        with ServerThread(max_sessions=4) as handle:
            client = GCXClient(handle.host, handle.port)
            client.open(QUERY, checkpointable=True)
            _send_range(client, data, 0, len(data) // 2)
            client.checkpoint()
            _send_range(client, data, len(data) // 2, len(data))
            assert client.finish().output == expected
            stats = client.stats()
            client.close()
        checkpoints = stats["checkpoints"]
        assert checkpoints["taken"] == 1
        assert checkpoints["sessions_resumed"] == 0
        assert checkpoints["snapshot_bytes"]["count"] == 1
        assert checkpoints["snapshot_bytes"]["p99"] == len(
            client.last_snapshot[2]
        )

    def test_checkpoint_without_session_arms_next_open(self, doc, expected):
        # CHECKPOINT before OPEN = "make the next session checkpointable"
        with ServerThread(max_sessions=4) as handle:
            client = GCXClient(handle.host, handle.port)
            client.open(QUERY, checkpointable=True)  # sends the arming frame
            client.send_chunk(doc.encode()[: len(doc) // 2])
            in_off, _out, blob = client.checkpoint()
            assert in_off > 0 and blob
            client.close()

    def test_checkpoint_non_checkpointable_session_is_error(self, doc):
        with ServerThread(max_sessions=4) as handle:
            client = GCXClient(handle.host, handle.port)
            client.open(QUERY)  # not armed
            client.send_chunk(doc[:4096])
            with pytest.raises(ServerError, match="checkpointable"):
                client.checkpoint()
            client.close()


class TestResumeFrame:
    def _blob_after_half(self, handle, data) -> tuple[int, int, bytes]:
        client = GCXClient(handle.host, handle.port)
        client.open(QUERY, checkpointable=True)
        _send_range(client, data, 0, len(data) // 2)
        snap = client.checkpoint()
        client.close()  # abandon the original session mid-stream
        return snap

    def test_resume_on_fresh_server_stitches_byte_identical(
        self, doc, expected
    ):
        data = doc.encode()
        with ServerThread(max_sessions=4) as first:
            in_off, out_off, blob = self._blob_after_half(first, data)
        # the first server is *gone*; a brand-new one (fresh engine,
        # fresh plan cache) restores the blob and continues
        with ServerThread(max_sessions=4) as second:
            client = GCXClient(second.host, second.port)
            client.resume(blob)
            _send_range(client, data, in_off, len(data))
            outcome = client.finish()
            stats = client.stats()
            client.close()
        expected_bytes = expected.encode()
        assert outcome.output.encode() == expected_bytes[out_off:]
        assert stats["checkpoints"]["sessions_resumed"] == 1

    def test_checkpoint_after_resume_reports_session_absolute_offsets(self):
        # crash -> resume -> checkpoint -> crash again: the second
        # snapshot's output offset must be cumulative over the whole
        # session, not relative to the resumed connection, or the
        # client's rollback stitches the wrong byte range.
        query = "for $b in /a/b return $b"
        body = "".join(f"<b>{'y' * 80}-{i}</b>" for i in range(400))
        data = f"<a>{body}</a>".encode()
        expected = (
            GCXEngine(record_series=False)
            .query(query, data.decode())
            .output.encode()
        )
        third = len(data) // 3
        with ServerThread(max_sessions=4) as first:
            client = GCXClient(first.host, first.port)
            client.open(query, checkpointable=True)
            _send_range(client, data, 0, third)
            in1, out1, blob1 = client.checkpoint()
            client.close()  # first failure
        with ServerThread(max_sessions=4) as second:
            client = GCXClient(second.host, second.port)
            client.resume(blob1)
            _send_range(client, data, in1, 2 * third)
            in2, out2, blob2 = client.checkpoint()
            client.close()  # second failure
        assert in2 == 2 * third
        assert out1 > 0 and out2 > out1  # cumulative, not per-connection
        with ServerThread(max_sessions=4) as last:
            client = GCXClient(last.host, last.port)
            client.resume(blob2)
            _send_range(client, data, in2, len(data))
            outcome = client.finish()
            client.close()
        assert outcome.output.encode() == expected[out2:]

    def test_resume_garbage_blob_is_error(self):
        with ServerThread(max_sessions=4) as handle:
            client = GCXClient(handle.host, handle.port)
            with pytest.raises(ServerError):
                client.resume(b"not a snapshot at all")
            # the connection survives the refusal: a normal query works
            outcome = client.run_query(QUERY, _module_doc())
            assert outcome.output  # compiled and ran fine
            client.close()

    def test_resume_stale_version_blob_is_error(self, doc):
        data = doc.encode()
        with ServerThread(max_sessions=4) as handle:
            blob = self._blob_after_half(handle, data)[2]
            stale = blob[:4] + (FORMAT_VERSION + 1).to_bytes(2, "big") + blob[6:]
            client = GCXClient(handle.host, handle.port)
            with pytest.raises(ServerError, match="not supported"):
                client.resume(stale)
            client.close()


class TestServerInterval:
    def test_server_cadence_emits_unsolicited_snapshots(self, doc, expected):
        data = doc.encode()
        with ServerThread(max_sessions=4, checkpoint_interval=16384) as handle:
            client = GCXClient(handle.host, handle.port, chunk_size=4096)
            # plain open(): the server's own interval arms the session
            outcome = client.run_query(QUERY, data)
            stats = client.stats()
            client.close()
        assert outcome.output == expected
        assert stats["checkpoints"]["taken"] >= len(data) // 16384 - 1
        # the client recorded the unsolicited SNAPSHOT frames in passing
        assert client.last_snapshot is not None
        in_off, out_off, blob = client.last_snapshot
        assert 0 < in_off <= len(data) and blob

    def test_resilient_run_with_server_cadence_only(self, doc, expected):
        data = doc.encode()
        with ServerThread(max_sessions=4, checkpoint_interval=16384) as handle:
            client = GCXClient(handle.host, handle.port, chunk_size=4096)
            outcome = client.run_query_resilient(
                QUERY, data, checkpoint_interval=None
            )
            client.close()
        assert outcome.output == expected


class TestFaultInjection:
    def test_truncated_result_frame_resumes_byte_identical(self):
        # the injector severs the connection mid-RESULT-frame; the
        # resilient client reconnects (same server), RESUMEs from its
        # last snapshot, rolls back, and still matches byte for byte.
        # An identity-shaped query keeps output tracking input, so the
        # cut lands well after the first checkpoint's output offset.
        query = "for $b in /a/b return $b"
        body = "".join(f"<b>{'x' * 100}-{i}</b>" for i in range(300))
        document = f"<a>{body}</a>"
        expected = GCXEngine(record_series=False).query(query, document).output
        plan = FaultPlan.parse("seed=3,truncate_result_at=6000")
        with ServerThread(max_sessions=4, fault_plan=plan) as handle:
            client = GCXClient(handle.host, handle.port, chunk_size=2048)
            outcome = client.run_query_resilient(
                query, document, checkpoint_interval=4096, resume_retries=5
            )
            stats = client.stats()
            client.close()
        assert outcome.output == expected
        assert stats["checkpoints"]["sessions_resumed"] >= 1

    def test_two_crashes_with_checkpoint_between_resume_byte_identical(self):
        # the injector severs the connection twice (re-armed
        # truncation); the client checkpoints between the failures, so
        # the second rollback exercises a snapshot taken *after* a
        # resume — its offsets must be session-absolute.
        query = "for $b in /a/b return $b"
        body = "".join(f"<b>{'x' * 100}-{i}</b>" for i in range(300))
        document = f"<a>{body}</a>"
        expected = GCXEngine(record_series=False).query(query, document).output
        plan = FaultPlan.parse(
            "seed=3,truncate_result_at=6000,truncate_result_times=2"
        )
        with ServerThread(max_sessions=4, fault_plan=plan) as handle:
            client = GCXClient(handle.host, handle.port, chunk_size=2048)
            outcome = client.run_query_resilient(
                query, document, checkpoint_interval=4096, resume_retries=5
            )
            stats = client.stats()
            client.close()
        assert outcome.output == expected
        assert stats["checkpoints"]["sessions_resumed"] >= 2

    def test_injected_feed_failure_propagates_as_error(self, doc):
        plan = FaultPlan.parse("seed=3,fail_feed_at=8192")
        with ServerThread(max_sessions=4, fault_plan=plan) as handle:
            client = GCXClient(handle.host, handle.port, chunk_size=4096)
            with pytest.raises(ServerError, match="injected feed failure"):
                client.run_query(QUERY, doc)
            client.close()

    def test_fault_plan_spec_roundtrip(self):
        plan = FaultPlan.parse("seed=9,kill_at=1000,delay_result_every=2")
        assert plan.seed == 9 and plan.kill_at == 1000
        again = FaultPlan.parse(plan.describe())
        assert again.kill_at == plan.kill_at
        assert again.delay_result_every == plan.delay_result_every
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultPlan.parse("seed=1,explode_at=5")
        with pytest.raises(ValueError, match="not key=value"):
            FaultPlan.parse("just-a-word")

    def test_result_actions_are_deterministic(self):
        plan = FaultPlan.parse(
            "seed=1,delay_result_every=2,delay_result_s=0.5,"
            "duplicate_result_every=3,truncate_result_at=150"
        )
        actions = [plan.on_result(100) for _ in range(4)]
        assert actions[0].delay_s == 0.0 and not actions[0].duplicate
        assert actions[1].delay_s == 0.5
        assert actions[1].truncate_to == 50  # 150 - 100 already sent
        assert actions[2].duplicate
        # truncation fires once
        assert all(a.truncate_to is None for a in actions[2:])
