"""Tests for the command-line interface."""

import builtins
import json

import pytest

from repro.cli import build_parser, main
from repro.datasets.bib import BIB_QUERY, figure3c_document
from repro.xmlio.errors import XmlStarvedError


@pytest.fixture
def workload(tmp_path):
    query = tmp_path / "query.xq"
    query.write_text(BIB_QUERY, encoding="utf-8")
    xml = tmp_path / "input.xml"
    xml.write_text(figure3c_document(), encoding="utf-8")
    return str(query), str(xml)


class TestRun:
    def test_run_outputs_result(self, workload, capsys):
        query, xml = workload
        assert main(["run", query, xml]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<r>")
        assert "<title>" in out

    def test_run_with_stats(self, workload, capsys):
        query, xml = workload
        assert main(["run", query, xml, "--stats"]) == 0
        err = capsys.readouterr().err
        assert "watermark=23" in err

    def test_run_with_dom_engine_same_output(self, workload, capsys):
        query, xml = workload
        main(["run", query, xml])
        gcx_out = capsys.readouterr().out
        main(["run", query, xml, "--engine", "dom"])
        dom_out = capsys.readouterr().out
        assert gcx_out == dom_out

    def test_run_interpreted_oracle_same_output(self, workload, capsys):
        """--interpreted selects compiled=False, compiled_eval=False:
        the interpreting oracles, byte-identical to the kernels."""
        query, xml = workload
        assert main(["run", query, xml]) == 0
        compiled_out = capsys.readouterr().out
        assert main(["run", query, xml, "--interpreted"]) == 0
        interpreted_out = capsys.readouterr().out
        assert compiled_out == interpreted_out
        assert compiled_out.startswith("<r>")

    def test_run_interpreted_builds_oracle_engines(self):
        """The flag must reach the engine constructor on the whole
        GCX family (and be ignored by the DOM baseline)."""
        from repro.cli import _make_engine

        for engine_name in ("gcx", "projection", "flux"):
            engine = _make_engine(engine_name, interpreted=True)
            assert engine.compiled is False
            assert engine.compiled_eval is False
            engine = _make_engine(engine_name, interpreted=False)
            assert engine.compiled is True
            assert engine.compiled_eval is True
        assert _make_engine("dom", interpreted=True) is not None

    def test_missing_file_reports_error(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.xq"), str(tmp_path / "n.xml")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_input_read_in_bounded_chunks(self, workload, monkeypatch, capsys):
        """`run` must stream the document, never slurp it."""
        query, xml = workload
        reads: list[int] = []
        real_open = builtins.open

        class SpyHandle:
            def __init__(self, handle):
                self._handle = handle

            def read(self, size=-1):
                reads.append(size)
                return self._handle.read(size)

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                self._handle.close()

            def __getattr__(self, name):
                return getattr(self._handle, name)

        def spy_open(path, *args, **kwargs):
            handle = real_open(path, *args, **kwargs)
            return SpyHandle(handle) if str(path) == xml else handle

        monkeypatch.setattr(builtins, "open", spy_open)
        assert main(["run", query, xml, "--chunk-size", "512"]) == 0
        assert reads, "the input file was never read through its handle"
        assert all(size == 512 for size in reads)


class TestErrorMapping:
    def test_malformed_input_exits_nonzero_with_one_line(self, tmp_path, capsys):
        query = tmp_path / "query.xq"
        query.write_text(BIB_QUERY, encoding="utf-8")
        bad = tmp_path / "bad.xml"
        bad.write_text("<bib><book></bib>", encoding="utf-8")
        assert main(["run", str(query), str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1  # one line, no traceback

    def test_truncated_input_exits_nonzero(self, tmp_path, capsys):
        query = tmp_path / "query.xq"
        query.write_text(BIB_QUERY, encoding="utf-8")
        truncated = tmp_path / "truncated.xml"
        truncated.write_text("<bib><book><title>unfin", encoding="utf-8")
        assert main(["run", str(query), str(truncated)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "unexpected end of input" in err

    def test_starved_lexer_maps_to_clean_exit(self, workload, monkeypatch, capsys):
        query, xml = workload
        monkeypatch.setattr(
            "repro.cli._evaluate",
            lambda *args, **kwargs: (_ for _ in ()).throw(
                XmlStarvedError("no complete token buffered")
            ),
        )
        assert main(["run", query, xml]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no complete token buffered" in err


class TestMultiplex:
    @pytest.fixture
    def multi_workload(self, tmp_path):
        from repro.xmark.generator import generate_document

        xml = tmp_path / "doc.xml"
        xml.write_text(generate_document(scale=0.5, seed=3), encoding="utf-8")
        names = tmp_path / "names.xq"
        names.write_text(
            "for $p in /site/people/person return $p/name", encoding="utf-8"
        )
        prices = tmp_path / "prices.xq"
        prices.write_text(
            "for $c in /site/closed_auctions/closed_auction return $c/price",
            encoding="utf-8",
        )
        return str(xml), str(names), str(prices)

    def test_multiplex_matches_independent_runs(self, multi_workload, capsys):
        xml, names, prices = multi_workload
        assert main(["run", names, xml]) == 0
        names_out = capsys.readouterr().out
        assert main(["run", prices, xml]) == 0
        prices_out = capsys.readouterr().out
        assert main(["multiplex", xml, "-q", names, "-q", prices]) == 0
        out = capsys.readouterr().out
        assert f"=== {names}" in out
        assert f"=== {prices}" in out
        head, _, tail = out.partition(f"=== {prices}\n")
        assert head == f"=== {names}\n{names_out}"
        assert tail == prices_out

    def test_multiplex_single_query_has_no_header(self, multi_workload, capsys):
        xml, names, _ = multi_workload
        assert main(["run", names, xml]) == 0
        expected = capsys.readouterr().out
        assert main(["multiplex", xml, "-q", names]) == 0
        assert capsys.readouterr().out == expected

    def test_multiplex_stats_reports_stream_summary(
        self, multi_workload, capsys
    ):
        xml, names, prices = multi_workload
        assert main(["multiplex", xml, "-q", names, "-q", prices, "--stats"]) == 0
        err = capsys.readouterr().err
        assert "stream:" in err
        assert '"subscribers": 2' in err

    def test_multiplex_bad_query_reports_error(self, multi_workload, capsys):
        xml, names, _ = multi_workload
        import pathlib

        bad = pathlib.Path(xml).with_name("bad.xq")
        bad.write_text("for $x in", encoding="utf-8")
        assert main(["multiplex", xml, "-q", names, "-q", str(bad)]) == 1
        assert capsys.readouterr().err.startswith("error:")


class TestExplain:
    def test_explain_prints_roles_and_signoffs(self, workload, capsys):
        query, _ = workload
        assert main(["explain", query]) == 0
        out = capsys.readouterr().out
        assert "r1: /" in out
        assert "/bib/*/price[1]" in out
        assert "signOff" in out


class TestProfile:
    def test_profile_plots_series(self, workload, capsys):
        query, xml = workload
        assert main(["profile", query, xml]) == 0
        out = capsys.readouterr().out
        assert "buffer profile" in out
        assert "peak 23" in out


class TestXmark:
    def test_generates_document(self, capsys):
        assert main(["xmark", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<site>")
        assert out.endswith("</site>")


class TestServeAndStats:
    @pytest.fixture(scope="class")
    def live_server(self):
        from repro.server.service import ServerThread

        with ServerThread(max_sessions=4) as handle:
            yield handle

    def test_serve_subcommand_is_wired(self):
        args = build_parser().parse_args(["serve", "--port", "0", "--max-sessions", "3"])
        assert args.port == 0
        assert args.max_sessions == 3
        assert args.func.__name__ == "_cmd_serve"

    def test_stats_pretty_output_is_aligned_tables(self, live_server, capsys):
        assert main(["stats", "--port", str(live_server.port)]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        # Sections render as a bare header followed by indented,
        # aligned key/value rows — not "a.b = v" dumps or raw JSON.
        assert "sessions" in lines
        assert "plan_cache" in lines
        assert "multiplex" in lines
        assert not any(" = " in line for line in lines)
        section_rows = [line for line in lines if line.startswith("  ")]
        assert any(line.lstrip().startswith("opened") for line in section_rows)
        assert any(line.lstrip().startswith("hit_rate") for line in section_rows)
        # Alignment: within a section, values end at one column.
        sessions_at = lines.index("sessions")
        block = []
        for line in lines[sessions_at + 1 :]:
            if not line.startswith("  "):
                break
            block.append(line)
        assert len(block) >= 4
        assert len({len(line) for line in block}) == 1

    def test_stats_pretty_output_nests_multiplex(self, live_server, capsys):
        assert main(["stats", "--port", str(live_server.port)]) == 0
        out = capsys.readouterr().out
        assert "streams.opened" in out
        assert "peak_fanout" in out

    def test_stats_json_output(self, live_server, capsys):
        assert main(["stats", "--port", str(live_server.port), "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["sessions"]["active"] == 0
        assert "bytes" in snapshot

    def test_stats_against_dead_server_reports_error(self, capsys):
        # A port nothing listens on: connection refused -> one-line error.
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        assert main(["stats", "--port", str(free_port), "--timeout", "2"]) == 1
        assert capsys.readouterr().err.startswith("error:")
