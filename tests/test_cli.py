"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets.bib import BIB_QUERY, figure3c_document


@pytest.fixture
def workload(tmp_path):
    query = tmp_path / "query.xq"
    query.write_text(BIB_QUERY, encoding="utf-8")
    xml = tmp_path / "input.xml"
    xml.write_text(figure3c_document(), encoding="utf-8")
    return str(query), str(xml)


class TestRun:
    def test_run_outputs_result(self, workload, capsys):
        query, xml = workload
        assert main(["run", query, xml]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<r>")
        assert "<title>" in out

    def test_run_with_stats(self, workload, capsys):
        query, xml = workload
        assert main(["run", query, xml, "--stats"]) == 0
        err = capsys.readouterr().err
        assert "watermark=23" in err

    def test_run_with_dom_engine_same_output(self, workload, capsys):
        query, xml = workload
        main(["run", query, xml])
        gcx_out = capsys.readouterr().out
        main(["run", query, xml, "--engine", "dom"])
        dom_out = capsys.readouterr().out
        assert gcx_out == dom_out

    def test_missing_file_reports_error(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.xq"), str(tmp_path / "n.xml")]) == 1
        assert "error:" in capsys.readouterr().err


class TestExplain:
    def test_explain_prints_roles_and_signoffs(self, workload, capsys):
        query, _ = workload
        assert main(["explain", query]) == 0
        out = capsys.readouterr().out
        assert "r1: /" in out
        assert "/bib/*/price[1]" in out
        assert "signOff" in out


class TestProfile:
    def test_profile_plots_series(self, workload, capsys):
        query, xml = workload
        assert main(["profile", query, xml]) == 0
        out = capsys.readouterr().out
        assert "buffer profile" in out
        assert "peak 23" in out


class TestXmark:
    def test_generates_document(self, capsys):
        assert main(["xmark", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<site>")
        assert out.endswith("</site>")
