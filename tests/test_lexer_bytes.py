"""Differential suite: the bytes-domain lexer against its str oracle.

DESIGN.md §11's acceptance bar: :class:`ByteXmlLexer` must produce the
same tokens, events, significance decisions and errors as the str
:class:`XmlLexer` at every **byte-level** chunk split — including
splits inside multi-byte UTF-8 sequences, entity references and CDATA
terminators, which the str lexer can never even be handed.  On top of
the oracle relationship, the bytes lexer owns one new error class: any
invalid UTF-8 on a decoded path raises
:class:`~repro.xmlio.errors.XmlSyntaxError` with the exact byte
position, never a loose ``UnicodeDecodeError``.
"""

from __future__ import annotations

import io
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import GCXEngine
from repro.server.client import GCXClient, ServerError
from repro.server.service import ServerThread
from repro.xmlio.errors import XmlStarvedError, XmlSyntaxError
from repro.xmlio.lexer import XmlLexer, make_lexer, tokenize
from repro.xmlio.lexer_bytes import ByteXmlLexer

# Every construct the scanner knows, with multi-byte characters in
# every position that decodes: tag names, attribute names and values,
# text runs, CDATA, comments, PI bodies, the DTD internal subset.
TRICKY = (
    '<!DOCTYPE a [<!ELEMENT a (b)> <!-- é -->]>'
    '<a x="1&amp;2" läng="中文"><!-- nöte --><b><![CDATA[<räw> &amp;]]></b>'
    "t&#65;il &#x2603;<c k='v'/> \t\r\n"
    "<réé>café &lt;&gt;</réé><d>  </d><e/></a>"
)

ASCII_DOCS = [
    "<a/>",
    "<a><b>x</b><c>  </c></a>",
    '<a k="v" l=\'w\'><b/>text<!--c--><?pi ?></a>',
    "<a>&amp;&#65;&#x41;</a>",
    "<a><![CDATA[ ]]><![CDATA[x]]></a>",
    '<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a>x</a>',
]

MALFORMED = [
    "<a><b></c></a>",
    "<a><b>",
    "<a>x</a><b/>",
    "junk<a/>",
    "<a>&nope;</a>",
    "<a>&unterminated</a>",
    '<a k="1" k="2"/>',
    "<a k=v/>",
    "<a k/>",
    "<a><!-- never closed",
    "<a><![CDATA[never closed",
    "<a><?pi never closed",
    "<!DOCTYPE a <a/>",
    "</a>",
    "<a></a >x",
    "<1a/>",
    "<a></1a>",
    '<a k="never closed/>',
]


def events_of(lexer) -> list:
    out: list = []
    while True:
        event = lexer.next_event()
        if event is None:
            return out
        out.append(event)


def token_views(tokens, with_offsets: bool) -> list:
    views = []
    for token in tokens:
        view = [type(token).__name__, str(token)]
        if with_offsets:
            view.append(token.offset)
        views.append(view)
    return views


def byte_chunks(data: bytes, cuts) -> list[bytes]:
    bounds = [0] + sorted({c % (len(data) + 1) for c in cuts}) + [len(data)]
    return [data[a:b] for a, b in zip(bounds, bounds[1:])]


def outcome(fn):
    """Run *fn*; capture either its value or its error identity."""
    try:
        return ("ok", fn())
    except XmlSyntaxError as exc:
        return ("error", type(exc).__name__, exc.message)


class TestTokenParity:
    @pytest.mark.parametrize("doc", ASCII_DOCS)
    def test_ascii_docs_identical_including_offsets(self, doc):
        """For pure-ASCII input byte offsets == char offsets, so the
        token streams agree down to the offset field."""
        str_tokens = list(tokenize(doc))
        byte_tokens = list(tokenize(doc.encode("utf-8")))
        assert token_views(byte_tokens, True) == token_views(str_tokens, True)

    def test_tricky_doc_tokens_and_events(self):
        str_tokens = list(tokenize(TRICKY))
        byte_tokens = list(tokenize(TRICKY.encode("utf-8")))
        # multi-byte characters shift byte offsets vs char offsets;
        # everything else must be identical
        assert token_views(byte_tokens, False) == token_views(str_tokens, False)
        assert events_of(make_lexer(TRICKY.encode())) == events_of(
            make_lexer(TRICKY)
        )

    def test_keep_whitespace_parity(self):
        str_tokens = list(tokenize(TRICKY, keep_whitespace=True))
        byte_tokens = list(tokenize(TRICKY.encode(), keep_whitespace=True))
        assert token_views(byte_tokens, False) == token_views(str_tokens, False)

    def test_internal_subset_preserved(self):
        str_lexer = make_lexer(TRICKY)
        byte_lexer = make_lexer(TRICKY.encode())
        list(str_lexer), list(byte_lexer)
        assert byte_lexer.internal_subset == str_lexer.internal_subset
        assert "é" in byte_lexer.internal_subset

    def test_interned_names_are_shared(self):
        lexer = make_lexer(b"<a><a><a/></a></a>")
        names = [t.name for t in lexer if hasattr(t, "name")]
        assert all(name is names[0] for name in names)


class TestEveryByteSplit:
    def test_two_way_splits_every_byte_offset(self):
        """Chunk boundaries anywhere — mid-character, mid-entity,
        mid-"]]>" — change nothing."""
        data = TRICKY.encode("utf-8")
        whole = events_of(make_lexer(data))
        for offset in range(len(data) + 1):
            split = events_of(make_lexer(iter([data[:offset], data[offset:]])))
            assert split == whole, offset

    def test_one_byte_chunks(self):
        data = TRICKY.encode("utf-8")
        assert events_of(
            make_lexer(bytes([b]) for b in data)
        ) == events_of(make_lexer(data))

    def test_push_mode_byte_at_a_time(self):
        data = TRICKY.encode("utf-8")
        lexer = ByteXmlLexer()
        got = []
        for index in range(len(data)):
            lexer.feed(data[index : index + 1])
            while True:
                try:
                    event = lexer.next_event()
                except XmlStarvedError:
                    break
                assert event is not None  # input is not closed yet
                got.append(event)
        lexer.close()
        while True:
            event = lexer.next_event()
            if event is None:
                break
            got.append(event)
        assert got == events_of(make_lexer(data))

    def test_skip_subtree_at_every_split_counts_identically(self):
        data = TRICKY.encode("utf-8")
        reference = XmlLexer(TRICKY)
        reference.next_event()  # <a>
        expected_count = reference.skip_subtree()
        expected_tail = events_of(reference)
        for offset in range(0, len(data) + 1, 3):
            lexer = ByteXmlLexer(iter([data[:offset], data[offset:]]))
            lexer.next_event()
            assert lexer.skip_subtree() == expected_count, offset
            assert events_of(lexer) == expected_tail, offset


# Constructs the bulk scanner matches with multi-byte needles —
# ``]]>``, ``-->``, quote characters, and UTF-8 sequences — arranged
# so the needle itself straddles chunk refills.  All are well-formed:
# a bare ``]]>`` in character data and ``--`` inside comments are
# illegal XML, so the ``]]>`` text content is assembled from CDATA
# sections instead.
BATCH_EDGE_DOCS = [
    # "]]>" in text, legally split across two CDATA sections
    "<a><![CDATA[]]]]><![CDATA[>]]>x</a>",
    # "]" run hugging the CDATA terminator: content is "x]"
    "<a><![CDATA[x]]]></a>",
    # longer "]" run, then a second section starting with ">"
    "<a><![CDATA[]]]]]]><![CDATA[>x]]></a>",
    # dash runs inside comments, stopping short of "--"
    "<a><!-- - - - --><!----></a>",
    # ">" and quote characters inside quoted attribute values
    "<a k=\"x>y\" l='a\"b' m=\"c&amp;'d\"/>",
    # multi-byte UTF-8 (2-, 3- and 4-byte) hugging markup boundaries
    '<a é="中">𝄞<b>é</b>中</a>',
]


class TestBatchScanEdges:
    """Every-byte-split parity on the needles the batch scanner jumps
    between (DESIGN.md §15): terminators and quotes that arrive split
    across refills must scan exactly like the per-byte oracle."""

    @pytest.mark.parametrize("doc", BATCH_EDGE_DOCS)
    def test_events_identical_at_every_byte_split(self, doc):
        data = doc.encode("utf-8")
        expected = events_of(make_lexer(doc))
        for offset in range(len(data) + 1):
            got = events_of(make_lexer(iter([data[:offset], data[offset:]])))
            assert got == expected, offset

    @pytest.mark.parametrize("doc", BATCH_EDGE_DOCS)
    def test_tokens_identical_at_one_byte_chunks(self, doc):
        data = doc.encode("utf-8")
        expected = token_views(list(tokenize(doc)), False)
        got = token_views(list(tokenize(bytes([b]) for b in data)), False)
        assert got == expected

    @pytest.mark.parametrize("doc", BATCH_EDGE_DOCS)
    def test_skip_subtree_at_every_split(self, doc):
        data = doc.encode("utf-8")
        oracle = XmlLexer(doc)
        oracle.next_event()
        expected = (oracle.skip_subtree(), events_of(oracle))
        for offset in range(len(data) + 1):
            lexer = ByteXmlLexer(iter([data[:offset], data[offset:]]))
            lexer.next_event()
            got = (lexer.skip_subtree(), events_of(lexer))
            assert got == expected, offset


class TestErrorParity:
    @pytest.mark.parametrize("doc", MALFORMED)
    def test_same_error_identity_and_offset(self, doc):
        """ASCII malformed inputs: same exception type, message and
        (byte == char) offset as the oracle."""

        def drain(lexer):
            return lambda: list(lexer)

        expected = outcome(drain(XmlLexer(doc)))
        got = outcome(drain(ByteXmlLexer(doc.encode())))
        assert got == expected
        if expected[0] == "error":
            with pytest.raises(XmlSyntaxError) as str_exc:
                list(XmlLexer(doc))
            with pytest.raises(XmlSyntaxError) as byte_exc:
                list(ByteXmlLexer(doc.encode()))
            assert byte_exc.value.offset == str_exc.value.offset

    @pytest.mark.parametrize("doc", MALFORMED)
    def test_same_error_under_byte_chunking(self, doc):
        data = doc.encode()
        expected = outcome(lambda: list(XmlLexer(doc)))
        for offset in range(len(data) + 1):
            got = outcome(
                lambda: list(ByteXmlLexer(iter([data[:offset], data[offset:]])))
            )
            assert got == expected, offset

    def test_starvation_is_not_an_error(self):
        lexer = ByteXmlLexer()
        lexer.feed(b"<a><b>text")
        assert lexer.next_event() == (0, "a", None, None)
        assert lexer.next_event() == (0, "b", None, None)
        with pytest.raises(XmlStarvedError):
            lexer.next_event()  # the text run may continue
        lexer.feed(b" more</b></a>").close()
        assert lexer.next_event() == (2, None, None, "text more")


class TestInvalidUtf8:
    def test_text_run_reports_byte_position(self):
        bad = b"<a>caf\xff-</a>"
        with pytest.raises(XmlSyntaxError) as exc:
            list(ByteXmlLexer(bad))
        assert "invalid UTF-8" in exc.value.message
        assert exc.value.offset == 6  # the exact offending byte

    def test_attribute_value_reports_byte_position(self):
        bad = b'<a k="x\x80y"/>'
        with pytest.raises(XmlSyntaxError) as exc:
            list(ByteXmlLexer(bad))
        assert "invalid UTF-8" in exc.value.message
        assert exc.value.offset == 7

    def test_truncated_sequence_at_end_of_input(self):
        bad = "<a>é".encode("utf-8")[:-1]  # é cut in half, then EOF
        with pytest.raises(XmlSyntaxError) as exc:
            list(ByteXmlLexer(bad))
        assert "invalid UTF-8" in exc.value.message or "unexpected end" in str(
            exc.value
        )

    def test_split_mid_document_still_byte_exact(self):
        bad = b"<a><b>ok</b>\xc3\x28</a>"  # invalid continuation byte
        position = bad.index(b"\xc3")
        for offset in range(len(bad) + 1):
            lexer = ByteXmlLexer(iter([bad[:offset], bad[offset:]]))
            with pytest.raises(XmlSyntaxError) as exc:
                list(lexer)
            assert "invalid UTF-8" in exc.value.message, offset
            assert exc.value.offset == position, offset

    def test_never_a_unicode_decode_error_from_events(self):
        bad = b"<a x=\"\xfe\">t</a>"
        lexer = ByteXmlLexer(bad)
        with pytest.raises(XmlSyntaxError):
            events_of(lexer)

    def test_skipped_subtrees_are_opaque_bytes(self):
        """Lazy decode's contract: content inside a fully skipped
        subtree is not decoded on the ASCII-classifiable fast path, so
        invalid UTF-8 there can go unnoticed — tags are still
        validated.  (Runs that need Unicode classification — first
        significant byte >= 0x80 — do decode, and therefore do
        validate.)"""
        doc = b"<a><junk>caf\xff\xfe<inner>x\x80</inner></junk><b>x</b></a>"
        lexer = ByteXmlLexer(doc)
        assert lexer.next_event() == (0, "a", None, None)
        assert lexer.next_event() == (0, "junk", None, None)
        lexer.skip_subtree()  # no decode, no error
        assert lexer.next_event() == (0, "b", None, None)
        assert lexer.next_event() == (2, None, None, "x")

    def test_session_feed_maps_to_xml_syntax_error(self):
        engine = GCXEngine()
        session = engine.session("for $b in /a/b return $b")
        with pytest.raises(XmlSyntaxError, match="invalid UTF-8"):
            session.feed(b"<a><b>caf\xff</b></a>")
            session.finish()

    def test_server_maps_invalid_utf8_chunk_to_error_frame(self):
        """Robustness end to end: a CHUNK whose bytes are not UTF-8
        yields an ERROR frame with the byte position — not a crashed
        handler — and the connection stays usable."""
        query = "for $b in /a/b return $b"
        with ServerThread(max_sessions=2) as handle:
            with GCXClient(handle.host, handle.port) as client:
                with pytest.raises(ServerError) as exc:
                    client.open(query)
                    client.send_chunk(b"<a><b>caf\xff</b></a>")
                    client.finish()
                assert "XmlSyntaxError" in str(exc.value)
                assert "invalid UTF-8" in str(exc.value)
                # same connection, next query succeeds
                outcome = client.run_query(query, "<a><b>ok</b></a>")
                assert outcome.output == "<b>ok</b>"


class TestEndToEndBytes:
    QUERY = "<out>{ for $b in /a/b return $b }</out>"

    def test_engine_run_accepts_bytes(self):
        engine = GCXEngine()
        plan = engine.compile(self.QUERY)
        expected = engine.run(plan, TRICKY.replace("<a ", "<a ", 1))
        str_result = engine.run(plan, TRICKY)
        byte_result = engine.run(plan, TRICKY.encode("utf-8"))
        assert byte_result.output == str_result.output == expected.output
        assert byte_result.stats.series == str_result.stats.series
        assert byte_result.stats.watermark == str_result.stats.watermark

    def test_engine_run_accepts_binary_file(self, tmp_path):
        engine = GCXEngine()
        plan = engine.compile(self.QUERY)
        path = tmp_path / "doc.xml"
        path.write_bytes(TRICKY.encode("utf-8"))
        with open(path, "rb") as handle:
            byte_result = engine.run(plan, handle, chunk_size=7)
        assert byte_result.output == engine.run(plan, TRICKY).output

    def test_session_bytes_feed_identical_to_str_feed(self):
        engine = GCXEngine()
        plan = engine.compile(self.QUERY)
        baseline = engine.run(plan, TRICKY)
        data = TRICKY.encode("utf-8")
        for offset in range(0, len(data) + 1, 5):
            session = engine.session(plan)
            session.feed(data[:offset])
            session.feed(data[offset:])
            result = session.finish()
            assert result.output == baseline.output, offset
            assert result.stats.series == baseline.stats.series, offset

    def test_binary_output_session_streams_wire_ready_bytes(self):
        query = "<out>{ for $t in /a/réé return $t }</out>"
        document = "<a><réé>caf锦é†</réé><réé>中文✓</réé></a>"
        engine = GCXEngine()
        baseline = engine.query(query, document)
        session = engine.session(engine.compile(query), binary_output=True)
        session.feed(document.encode("utf-8"))
        # finish() signals end of input (which lets evaluation complete
        # and closes the output channel) while this thread pumps — the
        # same shape as the server's RESULT pump.
        finished = {}
        finisher = threading.Thread(
            target=lambda: finished.setdefault("result", session.finish())
        )
        finisher.start()
        parts = []
        while True:
            # a tiny bound forces cuts near multi-byte output chars
            part = session.next_output(max_chars=5, timeout=10.0)
            if part is None:
                break
            assert isinstance(part, bytes)
            part.decode("utf-8")  # every fragment valid UTF-8 on its own
            parts.append(part)
        finisher.join()
        tail = finished["result"].output
        assert b"".join(parts).decode("utf-8") + tail == baseline.output

    def test_cli_reads_binary(self, tmp_path, capsys):
        from repro.cli import main

        query_path = tmp_path / "q.xq"
        query_path.write_text(self.QUERY, encoding="utf-8")
        doc_path = tmp_path / "doc.xml"
        doc_path.write_bytes(TRICKY.encode("utf-8"))
        assert main(
            ["run", str(query_path), str(doc_path), "--chunk-size", "11"]
        ) == 0
        out = capsys.readouterr().out
        expected = GCXEngine().query(self.QUERY, TRICKY).output
        assert expected in out

    def test_cli_invalid_utf8_is_one_line_error(self, tmp_path, capsys):
        from repro.cli import main

        query_path = tmp_path / "q.xq"
        query_path.write_text(self.QUERY, encoding="utf-8")
        doc_path = tmp_path / "doc.xml"
        doc_path.write_bytes(b"<a><b>caf\xff</b></a>")
        assert main(["run", str(query_path), str(doc_path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "invalid UTF-8" in err


# ----------------------------------------------------------------------
# property-based differential testing
# ----------------------------------------------------------------------

# Fragments chosen so concatenations stay well-formed while exercising
# multi-byte characters, entities and CDATA around every chunk cut.
_FRAGMENTS = st.sampled_from(
    [
        "<b>x</b>",
        "<b k=\"v\"/>",
        "<b läng='中文'/>",
        "<réé>café</réé>",
        "t&#65;il",
        "&amp;&lt;",
        "&#x2603;",
        " ",
        " \t\r\n",
        "<![CDATA[<raw> ]]>",
        "<![CDATA[中]]>",
        "<!-- nöte -->",
        "<?pi da ta?>",
        "<c><d>δδ</d></c>",
        "",
    ]
)


@st.composite
def documents(draw):
    body = "".join(draw(st.lists(_FRAGMENTS, min_size=0, max_size=8)))
    return f"<a>{body}</a>"


class TestHypothesisDifferential:
    @given(doc=documents(), cuts=st.lists(st.integers(min_value=0), max_size=6))
    @settings(max_examples=120, deadline=None)
    def test_events_identical_at_random_byte_cuts(self, doc, cuts):
        """The acceptance property: for every document and every
        byte-level chunking — including cuts inside multi-byte UTF-8
        sequences, entities and CDATA markers — the bytes lexer's
        event stream equals the str oracle's over the whole document."""
        data = doc.encode("utf-8")
        expected = events_of(make_lexer(doc))
        got = events_of(make_lexer(iter(byte_chunks(data, cuts))))
        assert got == expected

    @given(doc=documents(), cuts=st.lists(st.integers(min_value=0), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_tokens_identical_at_random_byte_cuts(self, doc, cuts):
        data = doc.encode("utf-8")
        expected = token_views(list(tokenize(doc)), False)
        got = token_views(
            list(tokenize(iter(byte_chunks(data, cuts)))), False
        )
        assert got == expected

    @given(
        doc=documents(),
        cuts=st.lists(st.integers(min_value=0), max_size=4),
        keep_ws=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_skip_subtree_count_matches_oracle(self, doc, cuts, keep_ws):
        """Skipping the root subtree must account exactly the tokens
        the str oracle would have emitted — whitespace significance
        and entity validation agree byte for byte."""
        data = doc.encode("utf-8")
        oracle = XmlLexer(doc, keep_whitespace=keep_ws)
        oracle.next_event()
        expected = outcome(oracle.skip_subtree)
        lexer = ByteXmlLexer(
            iter(byte_chunks(data, cuts)), keep_whitespace=keep_ws
        )
        lexer.next_event()
        assert outcome(lexer.skip_subtree) == expected

    @given(doc=documents(), cuts=st.lists(st.integers(min_value=0), max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_session_output_identical_to_pull_run(self, doc, cuts):
        """End to end: bytes-fed sessions ≡ str pull runs at any
        byte-level chunking (output, watermark, series)."""
        engine = GCXEngine()
        plan = engine.compile("<out>{ for $b in /a/b return $b }</out>")
        baseline = engine.run(plan, doc)
        session = engine.session(plan)
        for chunk in byte_chunks(doc.encode("utf-8"), cuts):
            session.feed(chunk)
        result = session.finish()
        assert result.output == baseline.output
        assert result.stats.watermark == baseline.stats.watermark
        assert result.stats.series == baseline.stats.series


# ----------------------------------------------------------------------
# fused lexer kernel (DESIGN.md §15): fused ≡ table ≡ str oracle
# ----------------------------------------------------------------------

# Child-axis plans over the documents() alphabet; each admits the
# fused batch-scan front-end, with live tags that hit, miss, and
# include multi-byte names.
_PLAN_QUERIES = (
    "<out>{ for $b in /a/b return $b }</out>",
    "<out>{ for $d in /a/c/d return $d }</out>",
    "<out>{ for $r in /a/réé return $r }</out>",
)

_FUSED_ENGINE = GCXEngine()
_TABLE_ENGINE = GCXEngine(codegen=False)


def _result_fingerprint(result):
    stats = result.stats
    return (
        result.output,
        stats.tokens,
        stats.watermark,
        stats.series,
        stats.subtrees_skipped,
    )


def outcome_with_offset(fn):
    try:
        return ("ok", fn())
    except XmlSyntaxError as exc:
        return ("error", type(exc).__name__, exc.message, exc.offset)


class TestFusedKernelDifferential:
    """The acceptance property for the fused tier: for every document,
    plan and byte-level chunking, the fused batch-scan front-end is
    indistinguishable from the table tier and the str-lexer oracle —
    output, stats and error identity (type, message, byte offset)."""

    def test_plans_admit_the_fused_kernel(self):
        for query in _PLAN_QUERIES:
            plan = _FUSED_ENGINE.compile(query)
            assert plan.kernels is not None, query
            assert plan.kernels.lexer is not None, query

    @given(
        doc=documents(),
        cuts=st.lists(st.integers(min_value=0), max_size=5),
        query=st.sampled_from(_PLAN_QUERIES),
    )
    @settings(max_examples=80, deadline=None)
    def test_pull_run_identical_at_random_byte_cuts(self, doc, cuts, query):
        fused_plan = _FUSED_ENGINE.compile(query)
        table_plan = _TABLE_ENGINE.compile(query)
        chunks = byte_chunks(doc.encode("utf-8"), cuts)
        oracle = _result_fingerprint(_TABLE_ENGINE.run(table_plan, doc))
        fused = _result_fingerprint(_FUSED_ENGINE.run(fused_plan, iter(chunks)))
        table = _result_fingerprint(_TABLE_ENGINE.run(table_plan, iter(chunks)))
        assert fused == table == oracle

    @given(
        doc=documents(),
        cuts=st.lists(st.integers(min_value=0), max_size=5),
        query=st.sampled_from(_PLAN_QUERIES),
    )
    @settings(max_examples=60, deadline=None)
    def test_push_session_identical_at_random_byte_cuts(self, doc, cuts, query):
        fused_plan = _FUSED_ENGINE.compile(query)
        oracle = _result_fingerprint(_FUSED_ENGINE.run(fused_plan, doc))
        session = _FUSED_ENGINE.session(fused_plan)
        for chunk in byte_chunks(doc.encode("utf-8"), cuts):
            session.feed(chunk)
        assert _result_fingerprint(session.finish()) == oracle

    def test_tricky_document_every_byte_split(self):
        """The full construct zoo through the fused tier at every
        two-way byte split — CDATA, comments, entities, multi-byte
        names, dead subtrees — must match the whole-buffer run."""
        plan = _FUSED_ENGINE.compile(_PLAN_QUERIES[0])
        data = TRICKY.encode("utf-8")
        expected = _result_fingerprint(_FUSED_ENGINE.run(plan, TRICKY))
        for offset in range(len(data) + 1):
            result = _FUSED_ENGINE.run(
                plan, iter([data[:offset], data[offset:]])
            )
            assert _result_fingerprint(result) == expected, offset

    @pytest.mark.parametrize("doc", MALFORMED)
    def test_malformed_error_identity_at_every_split(self, doc):
        """Error parity through the fused session: same exception
        type, message and byte offset as the str-oracle run *at the
        same split* (a restart after starvation may legitimately move
        the reported offset, so the oracle must be chunked alike) —
        the fused batch scan must not report errors early, late, or at
        a shifted position."""
        plan = _FUSED_ENGINE.compile(_PLAN_QUERIES[0])
        data = doc.encode("utf-8")
        for offset in range(len(data) + 1):

            def str_run(offset=offset):
                chunks = iter([doc[:offset], doc[offset:]])
                return _FUSED_ENGINE.run(plan, chunks).output

            def fused_run(offset=offset):
                session = _FUSED_ENGINE.session(plan)
                session.feed(data[:offset])
                session.feed(data[offset:])
                return session.finish().output

            expected = outcome_with_offset(str_run)
            assert outcome_with_offset(fused_run) == expected, offset


class TestOutputChannelBinary:
    def test_bound_smaller_than_one_character_overshoots_not_splits(self):
        """A max_chars below the width of a multi-byte output character
        must emit the whole character (exceeding the bound by <= 3
        bytes), never a standalone-invalid fragment."""
        from repro.core.session import _OutputChannel

        channel = _OutputChannel(binary=True)
        channel.write("中a文")  # 3 + 1 + 3 bytes
        channel.close()
        fragments = []
        while True:
            part = channel.next(max_chars=1, timeout=1.0)
            if part is None:
                break
            part.decode("utf-8")  # must be valid on its own
            assert len(part) <= 3
            fragments.append(part)
        assert b"".join(fragments).decode("utf-8") == "中a文"
        assert len(fragments) == 3

    def test_passthrough_stream_unaffected_by_binary_default(self):
        engine = GCXEngine()
        sink = io.StringIO()
        session = engine.session(
            "<out>{ for $b in /a/b return $b }</out>", output_stream=sink
        )
        session.feed(b"<a><b>x</b></a>")
        result = session.finish()
        assert result.output == ""
        assert sink.getvalue() == "<out><b>x</b></out>"
