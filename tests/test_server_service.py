"""End-to-end tests of the concurrent query service over real TCP.

Every test starts a :class:`~repro.server.service.ServerThread` on an
ephemeral port and drives it with the blocking client — the same path
the CLI, the CI smoke job and ``benchmarks/bench_server.py`` use.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.engine import GCXEngine
from repro.datasets.bib import BIB_QUERY, figure3c_document
from repro.server.client import GCXClient, ServerBusyError, ServerError
from repro.server.service import ServerThread
from repro.xmark.queries import ADAPTED_QUERIES

Q1 = ADAPTED_QUERIES["q1"].text


@pytest.fixture(scope="module")
def server():
    with ServerThread(max_sessions=64) as handle:
        yield handle


@pytest.fixture(scope="module")
def q1_expected(xmark_small):
    return GCXEngine(record_series=False).query(Q1, xmark_small).output


def _connect(server, **kwargs):
    return GCXClient(server.host, server.port, **kwargs)


class TestRoundtrip:
    def test_output_byte_identical_to_engine_run(self, server, xmark_small, q1_expected):
        with _connect(server) as client:
            outcome = client.run_query(Q1, xmark_small)
        assert outcome.output == q1_expected
        assert outcome.session["output_chars"] == len(q1_expected)
        assert outcome.session["watermark"] >= 1

    def test_arbitrary_chunk_boundaries(self, server):
        document = figure3c_document()
        expected = GCXEngine(record_series=False).query(BIB_QUERY, document).output
        with _connect(server, chunk_size=7) as client:
            outcome = client.run_query(BIB_QUERY, document)
        assert outcome.output == expected

    def test_many_queries_share_one_connection_and_plan(self, server, xmark_small, q1_expected):
        with _connect(server) as client:
            before = client.stats()["plan_cache"]["misses"]
            for _ in range(3):
                assert client.run_query(Q1, xmark_small).output == q1_expected
            after = client.stats()["plan_cache"]["misses"]
        # Q1 was compiled by earlier tests at most once; never again here.
        assert after == before

    def test_empty_result_still_finishes(self, server):
        query = "<r>{ for $x in /doc/absent return $x }</r>"
        with _connect(server) as client:
            outcome = client.run_query(query, "<doc><a/></doc>")
        expected = GCXEngine().query(query, "<doc><a/></doc>").output
        assert outcome.output == expected


class TestErrors:
    def test_malformed_xml_returns_error_frame(self, server):
        with _connect(server) as client:
            with pytest.raises(ServerError) as excinfo:
                client.run_query(BIB_QUERY, "<bib><book></bib>")
            message = str(excinfo.value)
            assert "XmlSyntaxError" in message
            assert "\n" not in message
            # The connection survives an evaluation error.
            document = figure3c_document()
            expected = GCXEngine().query(BIB_QUERY, document).output
            assert client.run_query(BIB_QUERY, document).output == expected

    def test_truncated_document_returns_error_frame(self, server):
        with _connect(server) as client:
            client.open(BIB_QUERY)
            client.send_chunk("<bib><book><title>unfinished")
            with pytest.raises(ServerError, match="XmlSyntaxError"):
                client.finish()

    def test_unparsable_query_rejected_at_open(self, server):
        with _connect(server) as client:
            with pytest.raises(ServerError, match="XQueryParseError"):
                client.open("for $x in return broken")
            # Still usable afterwards.
            assert client.stats()["sessions"]["opened"] >= 0

    def test_invalid_utf8_open_payload_gets_error_frame(self, server):
        """Garbage bytes in OPEN must answer ERROR, not drop the link."""
        import socket

        from repro.server.protocol import (
            HEADER,
            FrameType,
            encode_frame,
            read_frame_blocking,
        )

        with socket.create_connection((server.host, server.port), timeout=30) as sock:
            sock.sendall(HEADER.pack(int(FrameType.OPEN), 2) + b"\xff\xfe")
            frame = read_frame_blocking(sock)
            assert frame is not None
            assert frame.type is FrameType.ERROR
            assert "UnicodeDecodeError" in frame.text
            # The connection survives: a valid OPEN still works.
            sock.sendall(encode_frame(FrameType.OPEN, "<r>{ for $x in /d return $x }</r>"))
            frame = read_frame_blocking(sock)
            assert frame is not None
            assert frame.type is FrameType.OPENED

    def test_chunk_before_open_is_a_protocol_error(self, server):
        with _connect(server) as client:
            client.send_chunk("<doc/>")
            with pytest.raises((ServerError, ConnectionError)):
                client.finish()

    def test_pipelined_frames_after_failed_open_are_drained(
        self, server, xmark_small, q1_expected
    ):
        """A pipelining client sends OPEN+CHUNK+FINISH before reading
        the ERROR; the server drains that query and serves the next."""
        import socket

        from repro.server.protocol import FrameType, encode_frame, read_frame_blocking

        with socket.create_connection((server.host, server.port), timeout=30) as sock:
            wire = (
                encode_frame(FrameType.OPEN, "for $x in return broken")
                + encode_frame(FrameType.CHUNK, "<doc>ignored")
                + encode_frame(FrameType.FINISH)
                + encode_frame(FrameType.OPEN, Q1)
            )
            for start in range(0, len(xmark_small), 8192):
                wire += encode_frame(
                    FrameType.CHUNK, xmark_small[start : start + 8192]
                )
            wire += encode_frame(FrameType.FINISH)
            sock.sendall(wire)
            frames = []
            while True:
                frame = read_frame_blocking(sock)
                assert frame is not None, "connection closed before FINISH"
                frames.append(frame)
                if frame.type is FrameType.FINISH:
                    break
        assert frames[0].type is FrameType.ERROR
        assert "XQueryParseError" in frames[0].text
        assert frames[1].type is FrameType.OPENED
        output = "".join(f.text for f in frames if f.type is FrameType.RESULT)
        assert output == q1_expected


class TestAdmissionControl:
    def test_busy_beyond_max_sessions_then_recovers(self, xmark_small, q1_expected):
        with ServerThread(max_sessions=1) as handle:
            holder = GCXClient(handle.host, handle.port)
            second = GCXClient(handle.host, handle.port)
            try:
                holder.open(Q1)  # occupies the single slot, never finishes yet
                with pytest.raises(ServerBusyError):
                    second.open(Q1)
                rejected = handle.server.metrics.snapshot()["sessions"]["rejected"]
                assert rejected == 1
                # Finish the holder; the slot frees up and the very
                # connection that got BUSY retries successfully.
                for start in range(0, len(xmark_small), 8192):
                    holder.send_chunk(xmark_small[start : start + 8192])
                assert holder.finish().output == q1_expected
                assert second.run_query(Q1, xmark_small).output == q1_expected
            finally:
                holder.close()
                second.close()

    def test_64_concurrent_sessions_byte_identical(self, xmark_small, q1_expected):
        """Acceptance: 64 concurrent sessions over one shared plan."""
        clients = 64
        barrier = threading.Barrier(clients)
        outputs: list[str | None] = [None] * clients
        errors: list[BaseException] = []

        def drive(index: int, host: str, port: int) -> None:
            try:
                with GCXClient(host, port, chunk_size=4096) as client:
                    barrier.wait(timeout=30)
                    outputs[index] = client.run_query(Q1, xmark_small).output
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        with ServerThread(max_sessions=clients) as handle:
            threads = [
                threading.Thread(target=drive, args=(i, handle.host, handle.port))
                for i in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            snapshot = handle.server.scheduler.snapshot()

        assert not errors
        assert all(output == q1_expected for output in outputs)
        # One shared plan: 64 sessions, exactly one analysis.
        assert snapshot["plan_cache"]["misses"] == 1
        assert snapshot["sessions"]["completed"] == clients
        assert snapshot["sessions"]["active"] == 0


class TestShutdown:
    def test_shutdown_with_idle_connected_client(self):
        """An idle connection must not hang shutdown (3.12.1+ changed
        Server.wait_closed to wait for connection handlers)."""
        handle = ServerThread(max_sessions=2).start()
        idle = GCXClient(handle.host, handle.port)
        try:
            handle.stop()
            assert not handle._thread.is_alive()
        finally:
            idle.close()

    def test_shutdown_with_open_session(self, xmark_small):
        """A half-fed session is aborted, not waited for."""
        handle = ServerThread(max_sessions=2).start()
        client = GCXClient(handle.host, handle.port)
        try:
            client.open(Q1)
            client.send_chunk(xmark_small[:1000])
            handle.stop()
            assert not handle._thread.is_alive()
        finally:
            client.close()

    def test_lazy_package_exports(self):
        import importlib
        import sys

        for name in ("repro.server", "repro.server.client", "repro.server.service"):
            sys.modules.pop(name, None)
        package = importlib.import_module("repro.server")
        # Importing the package alone must not load the service stack.
        assert "repro.server.service" not in sys.modules
        assert package.DEFAULT_PORT == 7733
        assert package.GCXServer is not None  # resolves on demand
        assert "repro.server.service" in sys.modules
        with pytest.raises(AttributeError):
            package.not_a_thing


class TestStats:
    def test_stats_snapshot_shape(self, server, xmark_small):
        with _connect(server) as client:
            client.run_query(Q1, xmark_small)
            snap = client.stats()
        assert snap["sessions"]["opened"] >= 1
        assert snap["sessions"]["active"] == 0
        assert snap["bytes"]["in"] >= len(xmark_small)
        assert snap["bytes"]["out"] > 0
        assert snap["peak_buffer_watermark"] >= 1
        assert snap["latency_ms"]["p50"] > 0
        assert snap["latency_ms"]["p99"] >= snap["latency_ms"]["p50"]
        assert 0.0 <= snap["plan_cache"]["hit_rate"] <= 1.0
        assert snap["uptime_s"] >= 0

    def test_bytes_metrics_count_wire_bytes(self):
        """Non-ASCII input: the registry counts UTF-8 bytes, not chars."""
        document = "<doc><a>héllo wörld ✓</a></doc>"
        query = "<r>{ for $x in /doc/a return $x }</r>"
        with ServerThread(max_sessions=2) as handle:
            with GCXClient(handle.host, handle.port, chunk_size=5) as client:
                outcome = client.run_query(query, document)
                snap = client.stats()
        assert snap["bytes"]["in"] == len(document.encode("utf-8"))
        assert snap["bytes"]["out"] == len(outcome.output.encode("utf-8"))
        assert snap["bytes"]["in"] > len(document)  # chars would under-count

    def test_failed_sessions_counted(self, xmark_small):
        with ServerThread(max_sessions=4) as handle:
            with GCXClient(handle.host, handle.port) as client:
                with pytest.raises(ServerError):
                    client.run_query(BIB_QUERY, "<bib><oops></bib>")
                snap = client.stats()
        assert snap["sessions"]["failed"] == 1
        assert snap["sessions"]["active"] == 0


class TestStreamingResults:
    """RESULT frames flow while the client is still sending CHUNKs
    (DESIGN.md §10's emission contract, end to end over TCP)."""

    def test_first_result_frame_before_finish(self, xmark_small, q1_expected):
        chunks = [
            xmark_small[i : i + 2048]
            for i in range(0, len(xmark_small), 2048)
        ]
        assert len(chunks) > 4
        with ServerThread(max_sessions=2) as handle:
            with GCXClient(handle.host, handle.port) as client:
                client.open(Q1)
                # feed most of the document, then demand a RESULT frame
                # while FINISH has not been sent
                for chunk in chunks[:-1]:
                    client.send_chunk(chunk)
                early = client.recv_result()
                assert early, "no streamed RESULT before FINISH"
                client.send_chunk(chunks[-1])
                outcome = client.finish()
        assert early + outcome.output == q1_expected

    def test_streamed_and_buffered_results_concatenate(
        self, server, xmark_small, q1_expected
    ):
        """Early reads plus finish() reassemble the exact output."""
        chunks = [
            xmark_small[i : i + 4096]
            for i in range(0, len(xmark_small), 4096)
        ]
        with _connect(server) as client:
            client.open(Q1)
            parts = []
            for index, chunk in enumerate(chunks):
                client.send_chunk(chunk)
                if index == len(chunks) // 2:
                    parts.append(client.recv_result())
            outcome = client.finish()
        assert "".join(parts) + outcome.output == q1_expected

    def test_error_after_streamed_results_keeps_connection_usable(
        self, server, xmark_small, q1_expected
    ):
        """Malformed input mid-stream: the ERROR frame ends the query
        cleanly even though RESULT frames were already on the wire,
        and the connection still serves the next query."""
        with _connect(server) as client:
            client.open(Q1)
            client.send_chunk("<site><people><oops>")
            with pytest.raises(ServerError):
                client.send_chunk("</people></site>")
                client.finish()
            outcome = client.run_query(Q1, xmark_small)
        assert outcome.output == q1_expected


    def test_pipelined_large_early_output_does_not_deadlock(self):
        """run_query pipelines the whole document while the server
        streams a result about as large as the input: the client's
        duplex send loop must keep draining RESULT frames or the
        socket buffers wedge both sides (regression for the streamed-
        results change)."""
        body = "".join(f"<b>payload-{i:06d}</b>" for i in range(60_000))
        document = f"<a>{body}</a>"  # ~1 MB in, ~1 MB out
        query = "for $b in /a/b return $b"
        expected = GCXEngine(record_series=False).query(query, document).output
        with ServerThread(max_sessions=2) as handle:
            with GCXClient(handle.host, handle.port, timeout=30) as client:
                outcome = client.run_query(query, document)
        assert outcome.output == expected

    def test_recv_result_timeout_when_no_output_yet(self, xmark_small):
        """A query that produces nothing before FINISH must not hang an
        interleaved early read: recv_result(timeout=...) returns None."""
        query = 'for $b in /site/people/person return if ($b/@id = "no-such") then $b else ()'
        with ServerThread(max_sessions=2) as handle:
            with GCXClient(handle.host, handle.port) as client:
                client.open(query)
                client.send_chunk(xmark_small[:2000])
                assert client.recv_result(timeout=0.3) is None
                client.send_chunk(xmark_small[2000:])
                outcome = client.finish()
        assert outcome.output == ""


class TestTimeToFirstResult:
    def test_stats_report_ttfr(self, xmark_small):
        with ServerThread(max_sessions=2) as handle:
            with GCXClient(handle.host, handle.port) as client:
                client.run_query(Q1, xmark_small)
                snap = client.stats()
        ttfr = snap["ttfr_ms"]
        assert ttfr["count"] == 1
        assert ttfr["p50"] > 0
        assert ttfr["p99"] >= ttfr["p50"]
        # the first fragment exists no later than the whole session
        assert ttfr["p99"] <= snap["latency_ms"]["p99"] + 1e-6

    def test_stats_report_program_footprint(self, server, xmark_small):
        with _connect(server) as client:
            client.run_query(Q1, xmark_small)
            snap = client.stats()
        programs = snap["programs"]
        assert programs["plans"] >= 1
        assert programs["ops"] > 0
        assert programs["fallbacks"] == 0
