"""Differential checkpoint/resume suite (hypothesis, DESIGN.md §16).

The acceptance bar for durable snapshots: for Hypothesis-chosen
documents, chunkings, and split points, a session checkpointed at a
chunk boundary and restored in a **fresh** session must finish with
output, watermark, and per-token series byte-identical to an
uninterrupted run — across the XMark queries the paper benchmarks
(Q1/Q8/Q20) and in both lexer domains (the bytes-domain lexer that
drives sessions, and the str-domain lexer via a direct
``snapshot_state``/``restore_state`` round-trip).
"""

from __future__ import annotations

import functools

from hypothesis import given, settings, strategies as st

from repro.core.engine import GCXEngine
from repro.xmark.generator import generate_document
from repro.xmark.queries import ADAPTED_QUERIES
from repro.xmlio.errors import XmlStarvedError
from repro.xmlio.lexer import XmlLexer
from repro.xmlio.lexer_bytes import ByteXmlLexer

QUERIES = ("q1", "q8", "q20")

_ENGINE = GCXEngine()


@functools.lru_cache(maxsize=4)
def _doc(seed: int) -> bytes:
    return generate_document(scale=0.08, seed=seed).encode()


@functools.lru_cache(maxsize=8)
def _reference(seed: int, key: str):
    plan = _ENGINE.compile(ADAPTED_QUERIES[key].text)
    return _ENGINE.run(plan, _doc(seed).decode())


# ---------------------------------------------------------------------------
# session-level: checkpoint at every chunk boundary, restore one
# ---------------------------------------------------------------------------


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_checkpoint_every_boundary_restore_byte_identical(data):
    seed = data.draw(st.sampled_from((11, 23)), label="doc seed")
    key = data.draw(st.sampled_from(QUERIES), label="query")
    doc = _doc(seed)
    # chunk < len(doc), so at least one interior boundary exists
    chunk = data.draw(st.integers(512, len(doc) - 1), label="chunk size")
    boundaries = [
        min(start + chunk, len(doc))
        for start in range(0, len(doc), chunk)
        if start + chunk < len(doc)
    ]
    split = data.draw(st.sampled_from(boundaries), label="restore boundary")

    reference = _reference(seed, key)
    plan = _ENGINE.compile(ADAPTED_QUERIES[key].text)

    # one interrupted run: snapshot at *every* chunk boundary, keep the
    # blob taken at the Hypothesis-chosen one
    session = _ENGINE.session(plan, checkpointable=True)
    chosen = None
    for start in range(0, len(doc), chunk):
        session.feed(doc[start : start + chunk])
        boundary = min(start + chunk, len(doc))
        if boundary < len(doc):
            blob = session.snapshot()
            if boundary == split:
                chosen = blob
    result = session.finish()
    assert result.output == reference.output

    assert chosen is not None
    restored = _ENGINE.restore_session(chosen)
    assert restored.bytes_fed == split
    for start in range(split, len(doc), chunk):
        restored.feed(doc[start : start + chunk])
    resumed = restored.finish()
    assert resumed.output == reference.output
    assert resumed.stats.watermark == reference.stats.watermark
    assert resumed.stats.series == reference.stats.series


@given(data=st.data())
@settings(max_examples=10, deadline=None)
def test_restore_survives_second_generation(data):
    # snapshot → restore → snapshot again → restore again: blobs taken
    # from restored sessions are just as good as first-generation ones
    seed, key = 11, data.draw(st.sampled_from(QUERIES))
    doc = _doc(seed)
    third = len(doc) // 3
    reference = _reference(seed, key)
    plan = _ENGINE.compile(ADAPTED_QUERIES[key].text)

    first = _ENGINE.session(plan, checkpointable=True)
    first.feed(doc[:third])
    blob1 = first.snapshot()
    first.abort()

    second = _ENGINE.restore_session(blob1)
    second.feed(doc[third : 2 * third])
    blob2 = second.snapshot()
    second.abort()

    final = _ENGINE.restore_session(blob2)
    assert final.bytes_fed == 2 * third
    final.feed(doc[2 * third :])
    assert final.finish().output == reference.output


# ---------------------------------------------------------------------------
# lexer-level: both lexers round-trip their state at arbitrary splits
# ---------------------------------------------------------------------------

# a compact document exercising the constructs whose scan state spans
# chunk boundaries: internal subset, entities, comments, CDATA,
# character references, self-closing tags, long text runs
_TRICKY = (
    '<!DOCTYPE a [<!ELEMENT a (b)>]>'
    '<a x="1&amp;2"><!-- note --><b><![CDATA[<raw> &amp;]]></b>'
    "t&#65;il-" + "x" * 64 + "<c k='v'/><d/></a>"
)


def _drain(lexer):
    tokens = []
    while True:
        try:
            token = lexer.next_token()
        except XmlStarvedError:
            return tokens, False
        if token is None:
            return tokens, True
        tokens.append(token)


def _roundtrip_at(make, doc, split):
    """Tokens from (feed prefix → snapshot → restore into a fresh lexer
    → feed suffix) must equal one uninterrupted tokenization."""
    whole = make()
    whole.feed(doc)
    whole.close()
    expected, done = _drain(whole)
    assert done

    first = make()
    first.feed(doc[:split])
    tokens, _ = _drain(first)  # quiescent (starved) — snapshot-safe
    state = first.snapshot_state()

    second = make()
    second.restore_state(state)
    second.feed(doc[split:])
    second.close()
    rest, done = _drain(second)
    assert done
    assert tokens + rest == expected, split


@given(split=st.integers(0, len(_TRICKY)))
@settings(max_examples=60, deadline=None)
def test_str_lexer_state_roundtrip_every_split(split):
    _roundtrip_at(lambda: XmlLexer(None), _TRICKY, split)


@given(split=st.integers(0, len(_TRICKY.encode())))
@settings(max_examples=60, deadline=None)
def test_byte_lexer_state_roundtrip_every_split(split):
    doc = _TRICKY.encode()
    _roundtrip_at(lambda: ByteXmlLexer(), doc, split)
