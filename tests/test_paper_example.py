"""Reproduction tests for the paper's worked example (Figures 1 and 3).

These tests pin the externally-reported numbers of the demo paper:

* the role table r1–r7 (checked in test_core_analysis);
* the Figure 1 role annotations on the buffered prefix;
* Figure 3(b): nine articles + one book evaluate with a small, bounded
  buffer;
* Figure 3(c): nine books + one article build up a staircase, with 23
  nodes buffered when ``</bib>`` arrives;
* the documents have 82 tags forming 41 nodes.
"""

from repro.core.buffer import Buffer
from repro.core.engine import GCXEngine
from repro.core.matcher import PathMatcher
from repro.core.projector import StreamProjector
from repro.datasets.bib import (
    BIB_QUERY,
    figure3b_document,
    figure3c_document,
    make_bib_document,
)
from repro.xmlio.lexer import make_lexer, tokenize


class TestDocumentShape:
    def test_82_tags_41_nodes(self):
        for doc in (figure3b_document(), figure3c_document()):
            tokens = list(tokenize(doc))
            assert len(tokens) == 82
            starts = sum(1 for t in tokens if t.kind.value == "start")
            assert starts == 41


class TestFigure1RoleAssignment:
    """Project the stream prefix of Figure 1(a) and compare the role
    annotations with the paper's drawing."""

    def project_prefix(self, xml):
        engine = GCXEngine()
        compiled = engine.compile(BIB_QUERY)
        buffer = Buffer()
        matcher = PathMatcher(
            [(role.name, role.path) for role in compiled.analysis.roles]
        )
        projector = StreamProjector(make_lexer(xml), matcher, buffer)
        projector.run_to_end()
        return buffer

    def test_prefix_roles_match_figure_1a(self):
        # "<bib><book><title/><author/></book>" + closing to be well-formed
        buffer = self.project_prefix("<bib><book><title/><author/></book></bib>")
        nodes = {n.tag: n for n in buffer.iter_live()}
        assert nodes["bib"].describe_roles() == "{r2}"
        assert nodes["book"].describe_roles() == "{r3,r5,r6}"
        assert nodes["title"].describe_roles() == "{r5,r7}"
        assert nodes["author"].describe_roles() == "{r5}"

    def test_price_gets_witness_role(self):
        buffer = self.project_prefix(
            "<bib><book><price/><price/></book></bib>"
        )
        prices = [n for n in buffer.iter_live() if n.tag == "price"]
        assert prices[0].roles["r4"] == 1
        assert prices[0].roles["r5"] == 1
        # the second price is only subtree data: no witness role
        assert "r4" not in prices[1].roles


class TestFigure3b:
    """Nine articles + one book: bounded buffer, articles one at a time."""

    def test_output(self):
        result = GCXEngine().query(BIB_QUERY, figure3b_document())
        # every child has a price, so the first loop outputs nothing;
        # the single book contributes one title
        assert result.output == "<r><title></title></r>"

    def test_buffer_bounded(self):
        result = GCXEngine().query(BIB_QUERY, figure3b_document())
        # articles are purged one at a time: the buffer never holds
        # more than a handful of nodes (paper plot stays low)
        assert result.stats.watermark <= 8

    def test_articles_processed_one_at_a_time(self):
        result = GCXEngine().query(BIB_QUERY, figure3b_document())
        series = result.stats.series
        # the series oscillates: it returns to a small floor after each
        # article instead of growing
        floor = min(series[8:])
        assert series.count(floor) >= 5

    def test_buffer_empty_at_end(self):
        result = GCXEngine().query(BIB_QUERY, figure3b_document())
        assert result.stats.final_buffered == 0


class TestFigure3c:
    """Nine books + one article: staircase growth, 23 nodes at </bib>."""

    def test_23_nodes_buffered_at_closing_bib(self):
        result = GCXEngine().query(BIB_QUERY, figure3c_document())
        assert result.stats.watermark == 23

    def test_staircase_growth(self):
        result = GCXEngine().query(BIB_QUERY, figure3c_document())
        series = result.stats.series
        # each processed book leaves behind exactly two nodes (book{r6},
        # title{r7}): successive book boundaries differ by 2
        boundaries = [series[i] for i in range(7, 7 + 9 * 8, 8)]
        steps = [b - a for a, b in zip(boundaries, boundaries[1:])]
        assert all(step == 2 for step in steps)

    def test_output_book_titles(self):
        result = GCXEngine().query(BIB_QUERY, figure3c_document())
        assert result.output.count("<title>") == 9

    def test_buffer_empty_at_end(self):
        result = GCXEngine().query(BIB_QUERY, figure3c_document())
        assert result.stats.final_buffered == 0


class TestFigure1SignoffEffects:
    """After the first loop processes the book of Figure 1, the buffer
    holds exactly the nodes of Figure 1(c): bib{r2}, book{r6}, title{r7}."""

    def test_buffer_after_first_iteration(self):
        # Craft a document where the stream pauses after the book: use
        # a second child so the first loop requests more input, then
        # check the buffer through the engine's series instead.
        doc = make_bib_document(["book", "article"])
        result = GCXEngine().query(BIB_QUERY, doc)
        series = result.stats.series
        # tokens: <bib>=1, book subtree=8 (9 total), article subtree=8
        # (17), </bib>=18.  After the article's opening tag was pulled
        # (token 10), the book's signOffs have executed: buffer holds
        # bib + book{r6} + title{r7} + article skeleton.
        assert series[8] >= 5  # book fully buffered before signOff
        # after processing the article's first token the purge happened
        assert series[9] == 4  # bib, book, title + article

    def test_mixed_document_output(self):
        doc = make_bib_document(["book", "article"])
        result = GCXEngine().query(BIB_QUERY, doc)
        assert result.output == "<r><title></title></r>"
