"""The multi-process worker pool (DESIGN.md §14): shared-nothing
serving must never change a result, and the supervisor must keep the
fleet healthy through crashes and drains.

The robustness legs deliberately use the ``fdpass`` mode: its
least-loaded placement is deterministic (ties break to the lowest
worker index, so with no closes in flight it behaves like
round-robin), so the tests can pin a session to a worker, kill
exactly that worker, and assert (a) the in-flight client fails with a
connection error — never a hang, (b) the supervisor restarts the
worker, and (c) the survivors keep serving byte-identical results
throughout.
"""

from __future__ import annotations

import ast
import os
import pathlib
import signal
import socket
import threading
import time

import pytest

from repro.core.engine import GCXEngine
from repro.server.client import GCXClient, ServerBusyError
from repro.server.metrics import aggregate_snapshots
from repro.server.scheduler import split_admission
from repro.server.service import ServerThread
from repro.server.workers import WorkerSupervisor, reuseport_available
from repro.xmark.queries import ADAPTED_QUERIES


@pytest.fixture(scope="module")
def q1():
    return ADAPTED_QUERIES["q1"].text


@pytest.fixture(scope="module")
def q1_expected(q1):
    # one reference run per module; every pool output must match it
    doc = _module_doc()
    return GCXEngine(record_series=False).query(q1, doc).output


_DOC_CACHE: dict = {}


def _module_doc() -> str:
    if "doc" not in _DOC_CACHE:
        from repro.xmark.generator import generate_document

        _DOC_CACHE["doc"] = generate_document(scale=0.5, seed=7)
    return _DOC_CACHE["doc"]


def _wait_until(predicate, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(message)


# ---------------------------------------------------------------------------
# units: admission split and metrics aggregation
# ---------------------------------------------------------------------------


def test_split_admission_preserves_global_cap():
    assert split_admission(64, 4) == [16, 16, 16, 16]
    assert split_admission(10, 4) == [3, 3, 2, 2]
    assert sum(split_admission(10, 4)) == 10
    assert split_admission(7, 1) == [7]
    # degenerate pools: every worker keeps at least one slot, so an
    # oversized pool degrades into extra capacity rather than dead
    # workers (the only case where the global cap is exceeded)
    assert split_admission(2, 4) == [1, 1, 1, 1]


def test_aggregate_snapshots_sums_and_peaks():
    merged = aggregate_snapshots(
        [
            {
                "uptime_s": 10.0,
                "sessions": {"opened": 3, "active": 1},
                "peak_buffer_watermark": 7,
                "latency_ms": {"count": 3, "p50": 2.0, "p99": 9.0},
                "plan_cache": {"hits": 3, "misses": 1, "hit_rate": 0.75},
            },
            {
                "uptime_s": 4.0,
                "sessions": {"opened": 2, "active": 0},
                "peak_buffer_watermark": 11,
                "latency_ms": {"count": 1, "p50": 5.0, "p99": 5.0},
                "plan_cache": {"hits": 0, "misses": 2, "hit_rate": 0.0},
            },
        ]
    )
    assert merged["sessions"] == {"opened": 5, "active": 1}
    assert merged["latency_ms"]["count"] == 4
    # peaks/percentiles/uptime merge as maxima, not sums
    assert merged["peak_buffer_watermark"] == 11
    assert merged["latency_ms"]["p99"] == 9.0
    assert merged["uptime_s"] == 10.0
    # derived ratios are recomputed from the summed counters
    assert merged["plan_cache"]["hit_rate"] == 0.5


# ---------------------------------------------------------------------------
# serving correctness: byte identity and fleet STATS in both modes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "mode",
    [
        pytest.param(
            "reuseport",
            marks=pytest.mark.skipif(
                not reuseport_available(), reason="no SO_REUSEPORT"
            ),
        ),
        "fdpass",
    ],
)
def test_pool_byte_identity_and_fleet_stats(mode, q1, q1_expected):
    doc = _module_doc()
    with WorkerSupervisor(workers=2, max_sessions=8, mode=mode) as pool:
        assert len(pool.worker_pids()) == 2
        outputs = []
        for _ in range(4):
            with GCXClient(pool.host, pool.port, chunk_size=8192) as client:
                outputs.append(client.run_query(q1, doc).output)
        assert all(output == q1_expected for output in outputs)

        # a STATS frame answered by ANY worker reports the whole fleet
        with GCXClient(pool.host, pool.port) as client:
            stats = client.stats()
    assert set(stats) == {"fleet", "totals", "per_worker"}
    assert stats["fleet"]["workers"] == 2
    assert stats["fleet"]["mode"] == mode
    assert stats["fleet"]["per_worker_max_sessions"] == [4, 4]
    assert stats["totals"]["sessions"]["completed"] == 4
    assert len(stats["per_worker"]) == 2
    assert sum(
        snap["sessions"]["completed"] for snap in stats["per_worker"]
    ) == 4
    assert [snap["worker"]["index"] for snap in stats["per_worker"]] == [0, 1]


def test_pool_admission_is_per_worker(q1):
    """The global cap splits across workers; each worker refuses its
    own overload with BUSY (refuse-don't-queue survives sharding)."""
    with WorkerSupervisor(workers=2, max_sessions=2, mode="fdpass") as pool:
        # least-loaded placement: the two holders land on different
        # workers, so both workers are at their single-slot cap
        holders = [GCXClient(pool.host, pool.port) for _ in range(2)]
        try:
            for holder in holders:
                holder.open(q1)
            with GCXClient(pool.host, pool.port) as extra:
                with pytest.raises(ServerBusyError):
                    extra.open(q1)
        finally:
            for holder in holders:
                holder.close()


def test_fdpass_least_loaded_placement(q1):
    """fdpass placement is least-loaded, not blind rotation: once a
    worker's adopted connection closes, the *next* connection goes
    back to the worker with the fewest open connections — a worker
    stuck holding long-running sessions stops attracting new ones.
    A round-robin acceptor fails this test: after conn1→w0, conn2→w1,
    close(conn2), its rotation hands conn3 to w0 (two actives on w0);
    least-loaded hands it to the now-idle w1."""
    with WorkerSupervisor(workers=2, max_sessions=8, mode="fdpass") as pool:
        holder_a = GCXClient(pool.host, pool.port)
        holder_b = GCXClient(pool.host, pool.port)
        try:
            holder_a.open(q1)
            holder_b.open(q1)
            _wait_until(
                lambda: pool.adopted_counts() == {0: 1, 1: 1},
                timeout=10,
                message="holders did not spread over both workers",
            )
            # free worker 1's connection; the close note must drain
            # before it can attract the next placement
            holder_b.close()
            _wait_until(
                lambda: pool.adopted_counts() == {0: 1, 1: 0},
                timeout=10,
                message="worker 1's close note never reached the acceptor",
            )
            holder_b = GCXClient(pool.host, pool.port)
            holder_b.open(q1)
            _wait_until(
                lambda: pool.adopted_counts() == {0: 1, 1: 1},
                timeout=10,
                message="new connection was not placed least-loaded",
            )
            # implementation-independent ground truth: one active
            # session per worker — blind rotation would stack both
            # live sessions on worker 0
            _wait_until(
                lambda: [
                    snap.get("sessions", {}).get("active", 0)
                    for snap in pool.fleet_snapshot()["per_worker"]
                ] == [1, 1],
                timeout=10,
                message="sessions not balanced one per worker",
            )
        finally:
            holder_a.close()
            holder_b.close()


# ---------------------------------------------------------------------------
# the client's bounded BUSY retry (off by default)
# ---------------------------------------------------------------------------


def test_busy_retry_defaults_off(q1):
    with ServerThread(max_sessions=1) as handle:
        with GCXClient(handle.host, handle.port) as holder:
            holder.open(q1)
            with GCXClient(handle.host, handle.port) as refused:
                with pytest.raises(ServerBusyError):
                    refused.open(q1)


def test_busy_retry_succeeds_when_slot_frees(q1):
    with ServerThread(max_sessions=1) as handle:
        holder = GCXClient(handle.host, handle.port)
        holder.open(q1)

        opened = threading.Event()
        errors: list[BaseException] = []

        def retry_open() -> None:
            try:
                with GCXClient(
                    handle.host,
                    handle.port,
                    busy_retries=8,
                    busy_backoff=0.05,
                ) as client:
                    client.open(q1)
                    opened.set()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        thread = threading.Thread(target=retry_open)
        thread.start()
        time.sleep(0.3)  # let at least one attempt hit BUSY
        holder.finish()
        holder.close()
        thread.join(timeout=30)
        assert not errors
        assert opened.is_set(), "retrying client never got the freed slot"


def test_busy_retry_bounded(q1):
    """Retries are bounded: a persistently full server still ends in
    ServerBusyError, after busy_retries + 1 attempts."""
    with ServerThread(max_sessions=1) as handle:
        with GCXClient(handle.host, handle.port) as holder:
            holder.open(q1)
            started = time.monotonic()
            with GCXClient(
                handle.host, handle.port, busy_retries=2, busy_backoff=0.01
            ) as client:
                with pytest.raises(ServerBusyError):
                    client.open(q1)
            # two backoffs happened (jittered 0.5x-1.5x of 10ms + 20ms)
            assert time.monotonic() - started >= 0.01


# ---------------------------------------------------------------------------
# robustness: crash, restart, drain
# ---------------------------------------------------------------------------


def _worker_with_active_session(pool) -> int:
    """PID of the worker holding the (single) active session, read
    from the fleet snapshot."""
    snapshot = pool.fleet_snapshot()
    pids = [
        snap["worker"]["pid"]
        for snap in snapshot["per_worker"]
        if snap.get("sessions", {}).get("active")
    ]
    assert len(pids) == 1, snapshot
    return pids[0]


def test_worker_crash_restarts_and_survivors_serve(q1, q1_expected):
    doc = _module_doc()
    with WorkerSupervisor(
        workers=2, max_sessions=8, mode="fdpass", backoff_initial=0.05
    ) as pool:
        original_pids = set(pool.worker_pids())

        # pin an in-flight session to a worker, then SIGKILL the worker
        victim_client = GCXClient(pool.host, pool.port, timeout=30)
        victim_client.open(q1)
        victim_client.send_chunk(doc[:4096])
        victim_pid = _worker_with_active_session(pool)
        os.kill(victim_pid, signal.SIGKILL)

        # the in-flight client fails with a connection error — never a
        # hang (the 30s socket timeout above is the hang backstop)
        with pytest.raises(OSError):
            victim_client.finish()
        victim_client.close()

        # the survivor serves byte-identical results while the
        # supervisor restarts the dead worker with backoff
        with GCXClient(pool.host, pool.port, chunk_size=8192) as client:
            assert client.run_query(q1, doc).output == q1_expected

        _wait_until(
            lambda: len(pool.worker_pids()) == 2
            and victim_pid not in pool.worker_pids(),
            timeout=15,
            message="supervisor never restarted the killed worker",
        )
        assert pool.restarts >= 1
        replacement = set(pool.worker_pids()) - original_pids
        assert replacement, "restarted worker should have a fresh pid"

        # the rebuilt fleet serves across both workers again
        outputs = []
        for _ in range(4):
            with GCXClient(pool.host, pool.port, chunk_size=8192) as client:
                outputs.append(client.run_query(q1, doc).output)
        assert all(output == q1_expected for output in outputs)


def test_worker_sigterm_drains_open_session_then_restarts(q1, q1_expected):
    """SIGTERM to one worker is a graceful per-worker drain: its open
    session runs to completion, then the supervisor replaces it."""
    doc = _module_doc()
    with WorkerSupervisor(
        workers=2, max_sessions=8, mode="fdpass", backoff_initial=0.05
    ) as pool:
        client = GCXClient(pool.host, pool.port, timeout=60, chunk_size=8192)
        client.open(q1)
        client.send_chunk(doc[:4096])
        victim_pid = _worker_with_active_session(pool)
        os.kill(victim_pid, signal.SIGTERM)
        time.sleep(0.2)  # let the drain begin before finishing input

        for start in range(4096, len(doc), 8192):
            client.send_chunk(doc[start : start + 8192])
        outcome = client.finish()
        client.close()
        assert outcome.output == q1_expected

        _wait_until(
            lambda: len(pool.worker_pids()) == 2
            and victim_pid not in pool.worker_pids(),
            timeout=15,
            message="supervisor never replaced the drained worker",
        )


def test_fleet_drain_finishes_open_sessions_refuses_new(q1, q1_expected):
    doc = _module_doc()
    pool = WorkerSupervisor(workers=2, max_sessions=8, mode="reuseport"
                            if reuseport_available() else "fdpass")
    pool.start()
    try:
        client = GCXClient(pool.host, pool.port, timeout=60, chunk_size=8192)
        client.open(q1)
        client.send_chunk(doc[:4096])

        pool.begin_drain()

        # new connections are refused once the listeners close...
        def refused() -> bool:
            try:
                probe = socket.create_connection(
                    (pool.host, pool.port), timeout=1
                )
            except OSError:
                return True
            probe.close()
            return False

        _wait_until(
            refused, timeout=10, message="drained pool still accepting"
        )

        # ...but the open session runs to completion, byte-identical
        for start in range(4096, len(doc), 8192):
            client.send_chunk(doc[start : start + 8192])
        outcome = client.finish()
        client.close()
        assert outcome.output == q1_expected
    finally:
        pool.stop()


# ---------------------------------------------------------------------------
# shared-nothing guard: the pool must never share engine state
# ---------------------------------------------------------------------------


def test_workers_module_imports_no_cross_process_state():
    """workers.py supervises processes; it must never import the
    multiplex or session layers (mutable per-process state) — each
    worker builds its own engine stack.  CI greps for the same thing;
    this test makes the guard locally runnable and AST-exact."""
    source = (
        pathlib.Path(__file__).parent.parent
        / "src" / "repro" / "server" / "workers.py"
    ).read_text(encoding="utf-8")
    imported: set[str] = set()
    for node in ast.walk(ast.parse(source)):
        if isinstance(node, ast.Import):
            imported.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module:
            imported.add(node.module)
    forbidden = [
        name
        for name in imported
        if name.startswith(("repro.multiplex", "repro.core"))
    ]
    assert not forbidden, (
        f"workers.py imports cross-process state: {forbidden}"
    )
