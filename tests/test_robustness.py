"""Stress and failure-injection tests.

A streaming engine is pointless if it dies on the documents that
motivate streaming: very deep, very wide, or malformed mid-stream.
"""

import io

import pytest

from repro.core.engine import GCXEngine
from repro.xmlio.errors import XmlSyntaxError


class TestDeepDocuments:
    DEPTH = 5000

    def deep_doc(self, depth):
        return "<r>" + "<d>" * depth + "x" + "</d>" * depth + "</r>"

    def test_deep_document_skipped_subtree(self):
        # the query never touches the deep chain: it must be skipped
        # without recursion or buffering
        xml = self.deep_doc(self.DEPTH).replace("<r>", "<r><a>hit</a>")
        result = GCXEngine().query("for $a in /r/a return $a", xml)
        assert result.output == "<a>hit</a>"
        assert result.stats.watermark <= 3

    def test_deep_document_fully_buffered_and_output(self):
        # the whole chain is matched, buffered, serialized and purged
        xml = self.deep_doc(self.DEPTH)
        result = GCXEngine().query("for $r in /r return $r", xml)
        assert result.output == xml
        assert result.stats.final_buffered == 0

    def test_deep_document_descendant_iteration(self):
        xml = self.deep_doc(1000)
        result = GCXEngine().query(
            "for $t in /r/descendant::text() return $t", xml
        )
        assert result.output == "x"
        assert result.stats.final_buffered == 0


class TestWideDocuments:
    def test_many_siblings_streamed_in_constant_memory(self):
        xml = "<r>" + "<e><v>1</v></e>" * 20_000 + "</r>"
        result = GCXEngine().query("for $e in /r/e return $e/v/text()", xml)
        assert result.output == "1" * 20_000
        assert result.stats.watermark < 10

    def test_many_attributes(self):
        attrs = " ".join(f'a{i}="{i}"' for i in range(300))
        xml = f"<r><e {attrs}></e></r>"
        result = GCXEngine().query('for $e in /r/e return $e/@a299', xml)
        assert result.output == "299"


class TestMalformedInputSurfacesMidStream:
    def test_mismatched_tag_raises_during_evaluation(self):
        xml = "<r><a></a><b></a></r>"
        with pytest.raises(XmlSyntaxError, match="mismatched"):
            GCXEngine().query("for $a in /r/a return $a", xml)

    def test_truncated_document_raises(self):
        xml = "<r><a></a><b>"
        with pytest.raises(XmlSyntaxError, match="unclosed"):
            GCXEngine().query("for $x in /r/* return $x", xml)

    def test_error_in_skipped_region_still_raised(self):
        # even inside a subtree the projector skips, well-formedness is
        # checked (the skip consumes tokens through the lexer)
        xml = "<r><skip><broken></skip><a></a></r>"
        with pytest.raises(XmlSyntaxError):
            GCXEngine().query("for $a in /r/a return $a", xml)


class TestStreamingIO:
    def test_output_stream_receives_result_incrementally(self):
        sink = io.StringIO()
        engine = GCXEngine()
        compiled = engine.compile("for $e in /r/e return $e")
        result = engine.run(compiled, "<r><e>1</e><e>2</e></r>", output_stream=sink)
        assert sink.getvalue() == "<e>1</e><e>2</e>"
        assert result.output == ""  # went to the stream instead
        assert result.stats.output_chars == len(sink.getvalue())

    def test_input_file_like(self):
        source = io.StringIO("<r><e>1</e></r>")
        engine = GCXEngine()
        result = engine.run(engine.compile("for $e in /r/e return $e"), source)
        assert result.output == "<e>1</e>"

    def test_stream_output_matches_buffered_output(self):
        xml = "<r><e a='1'>x</e><f/></r>"
        query = "<out>{ for $x in /r/* return $x }</out>"
        engine = GCXEngine()
        sink = io.StringIO()
        engine.run(engine.compile(query), xml, output_stream=sink)
        buffered = engine.evaluate(query, xml)
        assert sink.getvalue() == buffered


class TestUnicodeAndEscaping:
    def test_unicode_content_roundtrip(self):
        xml = "<r><e>ünïcødé — 漢字</e></r>"
        out = GCXEngine().evaluate("for $e in /r/e return $e", xml)
        assert out == xml.replace("<r>", "").replace("</r>", "")

    def test_entities_resolved_and_reescaped(self):
        xml = "<r><e>&lt;tag&gt; &amp; more</e></r>"
        out = GCXEngine().evaluate("for $e in /r/e return $e/text()", xml)
        assert out == "&lt;tag&gt; &amp; more"

    def test_cdata_through_engine(self):
        xml = "<r><e><![CDATA[<raw> & stuff]]></e></r>"
        out = GCXEngine().evaluate("for $e in /r/e return $e/text()", xml)
        assert out == "&lt;raw&gt; &amp; stuff"

    def test_attribute_escaping_roundtrip(self):
        xml = '<r><e k="a&amp;b&quot;c"></e></r>'
        out = GCXEngine().evaluate("for $e in /r/e return $e", xml)
        assert 'k="a&amp;b&quot;c"' in out


class TestPathologicalQueries:
    def test_query_touching_nothing(self):
        result = GCXEngine().query(
            "for $z in /r/nope/nada return $z", "<r>" + "<a>x</a>" * 100 + "</r>"
        )
        assert result.output == ""
        assert result.stats.watermark <= 1

    def test_same_path_used_many_times(self):
        query = "(" + ", ".join("for $x in /r/a return $x/text()" for _ in range(10)) + ")"
        result = GCXEngine().query(query, "<r><a>v</a></r>")
        assert result.output == "v" * 10
        assert result.stats.final_buffered == 0

    def test_deeply_nested_conditionals(self):
        query = "for $a in /r/a return "
        for _ in range(20):
            query += "if (exists $a/x) then "
        query += '"deep"'
        for _ in range(20):
            query += " else ()"
        result = GCXEngine().query(query, "<r><a><x/></a></r>")
        assert result.output == "deep"

    def test_empty_document_root_only(self):
        result = GCXEngine().query("for $r in /r return $r", "<r/>")
        assert result.output == "<r></r>"
