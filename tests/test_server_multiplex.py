"""Shared streams over the wire: SUBSCRIBE / PUBLISH end to end.

One publisher connection feeds a named stream once; N subscriber
connections each attached one compiled plan to it.  The server runs a
single lexer+projector pass (DESIGN.md §13) and every subscriber's
RESULT bytes must equal an independent engine run of its query.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.core.engine import GCXEngine
from repro.server.client import GCXClient, ServerBusyError, ServerError
from repro.server.protocol import FrameType, encode_frame, read_frame_blocking
from repro.server.service import ServerThread
from repro.xmark.generator import generate_document

QUERIES = [
    "for $p in /site/people/person return $p/name",
    "for $c in /site/closed_auctions/closed_auction return $c/price",
    "for $i in /site/regions//item return $i/name",
    "let $n := count(/site/people/person) return <total>{$n}</total>",
]


@pytest.fixture(scope="module")
def doc() -> str:
    return generate_document(scale=0.5, seed=11)


@pytest.fixture(scope="module")
def expected(doc):
    engine = GCXEngine(record_series=False)
    return [engine.query(q, doc).output for q in QUERIES]


@pytest.fixture(scope="module")
def server():
    with ServerThread(max_sessions=16, max_streams=4) as handle:
        yield handle


def _collect_into(client, box, index):
    try:
        box[index] = client.collect()
    except BaseException as exc:  # noqa: BLE001 - asserted by callers
        box[index] = exc


def _fanout(server, doc, queries, stream="xmark"):
    """Subscribe one client per query, publish *doc* once, return
    (outcomes, stream summary)."""
    subscribers = [GCXClient(server.host, server.port) for _ in queries]
    try:
        for client, query in zip(subscribers, queries):
            client.subscribe(stream, query)
        box: list = [None] * len(queries)
        readers = [
            threading.Thread(target=_collect_into, args=(client, box, i))
            for i, client in enumerate(subscribers)
        ]
        for reader in readers:
            reader.start()
        with GCXClient(server.host, server.port, chunk_size=4096) as publisher:
            summary = publisher.publish_document(stream, doc)
        for reader in readers:
            reader.join(timeout=60)
        for item in box:
            if isinstance(item, BaseException):
                raise item
        return box, summary
    finally:
        for client in subscribers:
            client.close()


class TestFanout:
    def test_every_subscriber_byte_identical(self, server, doc, expected):
        outcomes, summary = _fanout(server, doc, QUERIES)
        for outcome, want in zip(outcomes, expected):
            assert outcome.output == want
            assert outcome.session["output_chars"] == len(want)
        assert summary["subscribers"] == len(QUERIES)
        assert summary["bytes_in"] == len(doc.encode("utf-8"))
        assert summary["product_dfa"]["components"] == len(QUERIES)

    def test_single_subscriber_stream(self, server, doc, expected):
        outcomes, summary = _fanout(server, doc, QUERIES[:1], stream="solo")
        assert outcomes[0].output == expected[0]
        assert summary["subscribers"] == 1

    def test_publish_with_no_subscribers_skips_everything(self, server, doc):
        with GCXClient(server.host, server.port) as publisher:
            summary = publisher.publish_document("empty", doc)
        assert summary["subscribers"] == 0

    def test_stream_name_is_reusable_after_finish(self, server, doc, expected):
        for _ in range(2):
            outcomes, _ = _fanout(server, doc, QUERIES[:2], stream="again")
            assert [o.output for o in outcomes] == expected[:2]

    def test_stats_multiplex_section(self, doc, expected):
        with ServerThread(max_sessions=8, max_streams=2) as handle:
            outcomes, _ = _fanout(handle, doc, QUERIES[:3])
            with GCXClient(handle.host, handle.port) as client:
                snap = client.stats()
        assert [o.output for o in outcomes] == expected[:3]
        mux = snap["multiplex"]
        assert mux["streams"]["opened"] == 1
        assert mux["streams"]["completed"] == 1
        assert mux["streams"]["active"] == 0
        assert mux["subscribers"]["completed"] == 3
        assert mux["subscribers"]["active"] == 0
        assert mux["peak_fanout"] == 3
        assert snap["sessions"]["completed"] >= 3  # subscribers hold slots


class TestSubscribeErrors:
    def test_bad_query_gets_error_and_connection_survives(
        self, server, doc, expected
    ):
        with GCXClient(server.host, server.port) as client:
            with pytest.raises(ServerError, match="XQueryParseError"):
                client.subscribe("xmark2", "for $x in broken (((")
            # The very same connection can still run a normal query.
            assert client.run_query(QUERIES[0], doc).output == expected[0]

    def test_missing_separator_gets_error(self, server):
        with GCXClient(server.host, server.port) as client:
            client._send(FrameType.SUBSCRIBE, "no-newline-and-no-query")
            with pytest.raises(ServerError, match="SUBSCRIBE payload"):
                client._recv()
            client.stats()  # still usable

    def test_pipelined_frames_after_failed_subscribe_are_drained(
        self, server, doc, expected
    ):
        """Satellite: a pipelining client sends SUBSCRIBE+CHUNK+FINISH
        before reading the ERROR; the server drains the dead
        conversation and serves the next query on the same socket."""
        with socket.create_connection(
            (server.host, server.port), timeout=30
        ) as sock:
            wire = (
                encode_frame(FrameType.SUBSCRIBE, "s\nfor $x in broken (((")
                + encode_frame(FrameType.CHUNK, "<doc>ignored")
                + encode_frame(FrameType.FINISH)
                + encode_frame(FrameType.OPEN, QUERIES[0])
            )
            for start in range(0, len(doc), 8192):
                wire += encode_frame(FrameType.CHUNK, doc[start : start + 8192])
            wire += encode_frame(FrameType.FINISH)
            sock.sendall(wire)
            frames = []
            while True:
                frame = read_frame_blocking(sock)
                assert frame is not None, "connection closed before FINISH"
                frames.append(frame)
                if frame.type is FrameType.FINISH:
                    break
        assert frames[0].type is FrameType.ERROR
        assert "XQueryParseError" in frames[0].text
        assert frames[1].type is FrameType.OPENED
        output = "".join(f.text for f in frames if f.type is FrameType.RESULT)
        assert output == expected[0]

    def test_subscribe_after_stream_started_is_refused(self, server, doc):
        with GCXClient(server.host, server.port) as publisher:
            publisher.publish("sealed")
            publisher.send_chunk(doc[:4096])  # first chunk seals the plan
            late = GCXClient(server.host, server.port)
            try:
                with pytest.raises(ServerError, match="sealed"):
                    late.subscribe("sealed", QUERIES[0])
            finally:
                late.close()
            publisher.send_chunk(doc[4096:])
            publisher._send(FrameType.FINISH)
            frame = publisher._recv()
            assert frame.type is FrameType.FINISH


class TestPublishErrors:
    def test_second_publisher_for_live_stream_refused(self, server, doc):
        with GCXClient(server.host, server.port) as first:
            first.publish("contested")
            with GCXClient(server.host, server.port) as second:
                with pytest.raises(ServerError, match="publisher"):
                    second.publish("contested")
                # Drain mode: the refused connection still serves STATS.
                second.stats()
            first.send_chunk(doc)
            first._send(FrameType.FINISH)
            assert first._recv().type is FrameType.FINISH

    def test_stream_limit_answers_busy(self, doc):
        with ServerThread(max_sessions=8, max_streams=1) as handle:
            with GCXClient(handle.host, handle.port) as holder:
                holder.publish("one")
                with GCXClient(handle.host, handle.port) as over:
                    with pytest.raises(ServerBusyError, match="stream limit"):
                        over.publish("two")
                holder.send_chunk(doc)
                holder._send(FrameType.FINISH)
                assert holder._recv().type is FrameType.FINISH
            # The slot frees: a new stream opens fine.
            with GCXClient(handle.host, handle.port) as next_publisher:
                assert next_publisher.publish_document("two", doc)[
                    "subscribers"
                ] == 0

    def test_subscriber_limit_answers_busy(self, doc):
        """Each subscriber counts against max_sessions."""
        with ServerThread(max_sessions=1, max_streams=2) as handle:
            holder = GCXClient(handle.host, handle.port)
            over = GCXClient(handle.host, handle.port)
            try:
                holder.subscribe("cap", QUERIES[0])
                with pytest.raises(ServerBusyError):
                    over.subscribe("cap", QUERIES[1])
            finally:
                holder.close()
                over.close()

    def test_malformed_stream_fails_every_subscriber(self, server, doc):
        subscribers = [GCXClient(server.host, server.port) for _ in range(2)]
        try:
            for client, query in zip(subscribers, QUERIES[:2]):
                client.subscribe("doomed", query)
            box: list = [None] * 2
            readers = [
                threading.Thread(target=_collect_into, args=(c, box, i))
                for i, c in enumerate(subscribers)
            ]
            for reader in readers:
                reader.start()
            with GCXClient(server.host, server.port) as publisher:
                publisher.publish("doomed")
                publisher.send_chunk("<site><people></wrong>")
                publisher._send(FrameType.FINISH)
                frame = publisher._read_frame()
                assert frame.type is FrameType.ERROR
                assert "XmlSyntaxError" in frame.text
            for reader in readers:
                reader.join(timeout=60)
            for item in box:
                assert isinstance(item, ServerError)
                assert "XmlSyntaxError" in str(item)
        finally:
            for client in subscribers:
                client.close()

    def test_publisher_disconnect_fails_subscribers_and_frees_the_name(
        self, server, doc
    ):
        sub = GCXClient(server.host, server.port)
        try:
            sub.subscribe("vanishing", QUERIES[0])
            box: list = [None]
            reader = threading.Thread(target=_collect_into, args=(sub, box, 0))
            reader.start()
            publisher = GCXClient(server.host, server.port)
            publisher.publish("vanishing")
            publisher.send_chunk(doc[:2048])
            publisher.close()  # mid-stream disconnect
            reader.join(timeout=60)
            assert isinstance(box[0], (ServerError, ConnectionError))
        finally:
            sub.close()
        # The name is reclaimable by a fresh publisher.
        with GCXClient(server.host, server.port) as fresh:
            assert fresh.publish("vanishing") == "vanishing"
            fresh.send_chunk("<site></site>")
            fresh._send(FrameType.FINISH)
            assert fresh._recv().type is FrameType.FINISH


class TestConversationGuards:
    def test_subscribe_while_session_active_closes(self, server, doc):
        with GCXClient(server.host, server.port) as client:
            client.open(QUERIES[0])
            client._send(FrameType.SUBSCRIBE, "x\n" + QUERIES[1])
            with pytest.raises((ServerError, ConnectionError)):
                client._recv()
                client._recv()

    def test_publish_while_session_active_closes(self, server):
        with GCXClient(server.host, server.port) as client:
            client.open(QUERIES[0])
            client._send(FrameType.PUBLISH, "x")
            with pytest.raises((ServerError, ConnectionError)):
                client._recv()
                client._recv()
