"""The shared-stream multiplexer (DESIGN.md §13).

Acceptance bar: every subscriber of a :class:`SharedStreamSession` is
**byte-identical** to an independent single-plan run of its query —
output, watermark, per-token series, role statistics — at every input
chunking, for every subscriber mix, including mixed sets where some
plans skip subtrees other plans need (the driver may then never skip,
yet each subscriber's replayed skip counts must still equal what its
own lexer would have reported).  The per-plan pipeline under each
subscriber is the stock compiled machinery, so the independent runs
(themselves held byte-identical to the interpreting oracles by the
differential suites of earlier layers) anchor the whole ladder.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import GCXEngine
from repro.core.matcher import PathDFA, ProductDFA
from repro.core.session import SessionStateError
from repro.multiplex import MultiplexError, MultiplexPlan, SharedStreamSession
from repro.xmark.generator import generate_document
from repro.xmlio.errors import XmlSyntaxError

# A deliberately mixed workload over one XMark document: the people
# queries are dead inside <regions>, the regions query needs exactly
# that subtree, and the count query buffers nothing but existence —
# so for any subscriber subset the product's skip decisions differ,
# while each individual subscriber must behave as if it ran alone.
QUERIES = [
    "for $p in /site/people/person return $p/name",
    "for $c in /site/closed_auctions/closed_auction return $c/price",
    "for $i in /site/regions//item return $i/name",
    "let $n := count(/site/people/person) return <total>{$n}</total>",
    "for $p in /site/people/person return <who>{$p/name, $p/emailaddress}</who>",
]


@pytest.fixture(scope="module")
def doc() -> str:
    return generate_document(scale=0.5, seed=5)


@pytest.fixture(scope="module")
def engine() -> GCXEngine:
    return GCXEngine()


@pytest.fixture(scope="module")
def solo(engine, doc):
    """Independent single-plan oracle runs, one per query."""
    return [engine.run(engine.compile(q), doc) for q in QUERIES]


def assert_identical(result, oracle):
    assert result.output == oracle.output
    assert result.stats.watermark == oracle.stats.watermark
    assert result.stats.series == oracle.stats.series
    assert result.stats.tokens == oracle.stats.tokens
    assert result.stats.roles_assigned == oracle.stats.roles_assigned
    assert result.stats.roles_removed == oracle.stats.roles_removed
    assert result.stats.subtrees_skipped == oracle.stats.subtrees_skipped
    assert result.stats.nodes_buffered == oracle.stats.nodes_buffered
    assert result.stats.nodes_purged == oracle.stats.nodes_purged


# ---------------------------------------------------------------------------
# the product DFA
# ---------------------------------------------------------------------------


class TestProductDFA:
    def test_dead_only_when_every_component_is_dead(self, engine):
        people = engine.compile(QUERIES[0]).dfa
        regions = engine.compile(QUERIES[2]).dfa
        product = ProductDFA([people, regions])
        state = product.start
        child, _, dead = product.element(state, "site")
        assert not dead
        # <regions> is dead for the people plan but alive for the
        # regions plan: the product must stay alive.
        inside, _, dead = product.element(child, "regions")
        assert not dead
        # A tag neither plan can use below the root is dead for both.
        _, _, dead = product.element(child, "unrelated")
        assert dead

    def test_single_component_product_mirrors_the_plan_dfa(self, engine):
        dfa = engine.compile(QUERIES[0]).dfa
        product = ProductDFA([dfa])
        p_state, d_state = product.start, dfa.start
        for tag in ("site", "people", "person", "name"):
            p_child, p_parent, p_dead = product.element(p_state, tag)
            d_child, d_parent, _ = dfa.element(d_state, tag)
            assert product._states[p_child] == (d_child,)
            assert product._states[p_parent] == (d_parent,)
            assert p_dead == (d_child == PathDFA.dead)
            p_state, d_state = p_child, d_child

    def test_product_shares_component_memos(self, engine):
        dfa = engine.compile("for $x in /never/seen/before return $x").dfa
        before = dfa.stats()["element_transitions"]
        product = ProductDFA([dfa])
        product.element(product.start, "zzz_unseen")
        assert dfa.stats()["element_transitions"] > before

    def test_empty_product_is_dead_at_the_root(self):
        product = ProductDFA([])
        assert product.is_dead(product.start)

    def test_stats_shape(self, engine):
        product = ProductDFA([engine.compile(q).dfa for q in QUERIES[:3]])
        product.element(product.start, "site")
        stats = product.stats()
        assert stats["components"] == 3
        assert stats["states"] >= 2
        assert stats["element_transitions"] >= 1


class TestMultiplexPlan:
    def test_requires_compiled_plans(self, engine):
        plan = engine.compile(QUERIES[0])
        stripped = plan.__class__(
            plan.source,
            plan.parsed,
            plan.normalized,
            plan.analysis,
            plan.rewritten,
            plan.matcher,
        )
        with pytest.raises(MultiplexError):
            MultiplexPlan.for_plans([stripped])

    def test_fanout_and_stats(self, engine):
        plans = [engine.compile(q) for q in QUERIES[:2]]
        mux = MultiplexPlan.for_plans(plans)
        assert mux.fanout == 2
        assert mux.stats()["components"] == 2


# ---------------------------------------------------------------------------
# byte-identity: every subscriber equals its independent run
# ---------------------------------------------------------------------------


class TestByteIdentity:
    def test_all_queries_one_pass(self, engine, doc, solo):
        for result, oracle in zip(engine.multiplex(QUERIES, doc), solo):
            assert_identical(result, oracle)

    def test_single_subscriber_stream(self, engine, doc, solo):
        [result] = engine.multiplex(QUERIES[:1], doc)
        assert_identical(result, solo[0])

    def test_same_plan_subscribed_twice(self, engine, doc, solo):
        results = engine.multiplex([QUERIES[0], QUERIES[0]], doc)
        for result in results:
            assert_identical(result, solo[0])

    def test_table_kernels_fallback_is_identical(self, doc, solo):
        engine = GCXEngine(codegen=False)
        for result, oracle in zip(engine.multiplex(QUERIES, doc), solo):
            assert_identical(result, oracle)

    def test_mixed_skip_sets(self, engine, doc, solo):
        """Subscribers whose skip decisions conflict: the people-only
        pair would skip <regions>; adding the regions query forces the
        driver through it — nobody's stats may change either way."""
        for subset in ([0, 1], [0, 2], [2, 3], [0, 1, 3], [1, 2, 4]):
            results = engine.multiplex([QUERIES[i] for i in subset], doc)
            for index, result in zip(subset, results):
                assert_identical(result, solo[index])


@st.composite
def chunking_and_subset(draw):
    """A random byte-partition recipe plus a subscriber subset."""
    cuts = draw(st.lists(st.integers(0, 100_000), max_size=10))
    subset = draw(
        st.lists(
            st.integers(0, len(QUERIES) - 1), min_size=1, max_size=5
        )
    )
    return cuts, subset


@given(chunking_and_subset())
@settings(max_examples=20, deadline=None)
def test_random_chunkings_and_subscriber_mixes(engine, doc, solo, case):
    """The Hypothesis differential: any chunking, any subscriber mix."""
    cuts, subset = case
    data = doc.encode("utf-8")
    bounds = sorted({0, len(data), *[c % (len(data) + 1) for c in cuts]})
    chunks = [data[a:b] for a, b in zip(bounds, bounds[1:])]
    shared = engine.shared_session()
    subscribers = [
        shared.subscribe(engine.compile(QUERIES[i])) for i in subset
    ]
    for chunk in chunks:
        shared.feed(chunk)
    summary = shared.finish()
    assert summary["subscribers"] == len(subset)
    assert summary["bytes_in"] == len(data)
    for index, subscriber in zip(subset, subscribers):
        assert_identical(subscriber.finish(), solo[index])


# ---------------------------------------------------------------------------
# lifecycle, errors, backpressure
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_subscribe_after_seal_raises(self, engine, doc):
        shared = engine.shared_session()
        shared.subscribe(engine.compile(QUERIES[0]))
        shared.feed(doc[:100])
        with pytest.raises(SessionStateError):
            shared.subscribe(engine.compile(QUERIES[1]))
        shared.abort()

    def test_feed_after_finish_raises(self, engine, doc):
        shared = engine.shared_session()
        sub = shared.subscribe(engine.compile(QUERIES[0]))
        shared.feed(doc)
        shared.finish()
        with pytest.raises(SessionStateError):
            shared.feed("<more/>")
        sub.finish()

    def test_finish_is_idempotent(self, engine, doc):
        shared = engine.shared_session()
        sub = shared.subscribe(engine.compile(QUERIES[0]))
        shared.feed(doc)
        assert shared.finish() is shared.finish()
        assert sub.finish() is sub.finish()

    def test_empty_subscriber_set_skips_the_document(self, engine, doc):
        shared = engine.shared_session()
        shared.feed(doc)
        summary = shared.finish()
        assert summary["subscribers"] == 0

    def test_malformed_input_raises_everywhere(self, engine):
        shared = engine.shared_session()
        subs = [shared.subscribe(engine.compile(q)) for q in QUERIES[:3]]
        shared.feed("<site><people></wrong>")
        with pytest.raises(XmlSyntaxError):
            shared.finish()
        for sub in subs:
            with pytest.raises(XmlSyntaxError):
                sub.finish()
            assert sub.failed

    def test_truncated_input_raises_everywhere(self, engine, doc):
        shared = engine.shared_session()
        sub = shared.subscribe(engine.compile(QUERIES[0]))
        shared.feed(doc[: len(doc) // 2])
        with pytest.raises(XmlSyntaxError):
            shared.finish()
        with pytest.raises(XmlSyntaxError):
            sub.finish()

    def test_aborted_subscriber_does_not_stall_the_stream(
        self, engine, doc, solo
    ):
        shared = engine.shared_session(max_pending_batches=1)
        quitter = shared.subscribe(engine.compile(QUERIES[2]))
        stayer = shared.subscribe(engine.compile(QUERIES[0]))
        quitter.abort()
        for start in range(0, len(doc), 4096):
            shared.feed(doc[start : start + 4096])
        shared.finish()
        assert_identical(stayer.finish(), solo[0])

    def test_abort_tears_everything_down(self, engine, doc):
        shared = engine.shared_session()
        shared.subscribe(engine.compile(QUERIES[0]))
        shared.feed(doc[:1000])
        shared.abort()  # must not hang or raise

    def test_incremental_output_streams_while_feeding(self, engine, doc):
        # The regions query emits from the front of the document, so
        # fragments must be available before the input is half fed.
        shared = engine.shared_session()
        sub = shared.subscribe(engine.compile(QUERIES[2]))
        chunks = [doc[i : i + 2048] for i in range(0, len(doc), 2048)]
        half = len(chunks) // 2
        for chunk in chunks[:half]:
            shared.feed(chunk)
        # Block until the subscriber emits a fragment — the input is
        # only half fed, so output demonstrably streams incrementally.
        early = sub.next_output(timeout=10)
        assert early
        for chunk in chunks[half:]:
            shared.feed(chunk)
        shared.finish()
        result = sub.finish()
        whole = early + sub.drain_output() + result.output
        oracle = engine.run(engine.compile(QUERIES[2]), doc)
        assert whole == oracle.output


class TestBackpressure:
    def test_slow_subscriber_throttles_the_feed(self, engine, doc):
        """With a bounded output channel nobody drains, the pipeline
        must block the producer instead of buffering the document.
        Tiny batches so the driver flushes often enough for the
        output-side stall to propagate all the way to ``feed``."""
        shared = SharedStreamSession(
            max_pending_chunks=1, max_pending_batches=1, batch_events=16
        )
        sub = shared.subscribe(
            engine.compile(QUERIES[2]), max_pending_output=64
        )
        done = threading.Event()

        def producer():
            for start in range(0, len(doc), 512):
                shared.feed(doc[start : start + 512])
            shared.finish()
            done.set()

        feeder = threading.Thread(target=producer, daemon=True)
        feeder.start()
        assert not done.wait(0.5), "producer never blocked on backpressure"
        # Draining the subscriber releases the whole chain.
        parts = []
        while True:
            part = sub.next_output(timeout=10)
            if part is None:
                break
            parts.append(part)
        feeder.join(timeout=10)
        assert done.is_set()
        result = sub.finish()
        oracle = engine.run(engine.compile(QUERIES[2]), doc)
        assert "".join(parts) + result.output == oracle.output
