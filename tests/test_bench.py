"""Tests for the benchmark harness and reporting."""

import pytest

from repro.baselines import FluxLikeEngine
from repro.bench.harness import BenchResult, buffer_profile, compare_engines, run_engine
from repro.bench.reporting import ascii_plot, format_table
from repro.core.engine import GCXEngine
from repro.datasets.bib import BIB_QUERY, figure3c_document


class TestHarness:
    def test_run_engine_collects_measurements(self):
        result = run_engine(
            GCXEngine(), BIB_QUERY, figure3c_document(), "bib", "41 nodes"
        )
        assert result.engine == "gcx"
        assert result.watermark == 23
        assert result.tokens == 82
        assert result.seconds > 0

    def test_repeat_keeps_best_time(self):
        slow = run_engine(GCXEngine(), BIB_QUERY, figure3c_document(), repeat=3)
        assert slow.seconds > 0

    def test_buffer_profile_series(self):
        series = buffer_profile(GCXEngine(), BIB_QUERY, figure3c_document())
        assert len(series) == 82
        assert max(series) == 23

    def test_compare_engines_reports_na(self):
        results = compare_engines(
            [GCXEngine(), FluxLikeEngine(dtd=None)],
            "for $i in /a/descendant::b return $i",
            "<a><b></b></a>",
        )
        assert results[0].supported
        assert not results[1].supported
        assert results[1].cell() == "n/a"

    def test_cell_formatting(self):
        result = BenchResult("gcx", "q1", "10MB", 0.18, 11000, 100, 10)
        assert result.cell() == "0.18s / 1.23MB"

    def test_cell_formatting_small_memory_in_kb(self):
        result = BenchResult("gcx", "q1", "10MB", 0.18, 20, 100, 10)
        assert result.cell() == "0.18s / 2.2KB"

    def test_estimated_mb_scales_with_watermark(self):
        small = BenchResult("e", "q", "d", 1.0, 100, 1, 1)
        large = BenchResult("e", "q", "d", 1.0, 10000, 1, 1)
        assert large.estimated_mb == pytest.approx(100 * small.estimated_mb)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(
            ["query", "gcx", "dom"],
            [["q1", "0.1s", "2.0s"], ["q8-long", "1.0s", "3.0s"]],
        )
        lines = table.splitlines()
        assert lines[0].startswith("query")
        assert len(lines) == 4
        # all rows equally wide (trailing spaces aside)
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_ascii_plot_contains_peak(self):
        plot = ascii_plot([0, 1, 5, 2, 0], title="demo")
        assert "demo" in plot
        assert "peak 5" in plot
        assert "*" in plot

    def test_ascii_plot_empty_series(self):
        assert "(empty series)" in ascii_plot([], title="t")

    def test_ascii_plot_downsamples(self):
        plot = ascii_plot(list(range(1000)), width=40, height=8)
        longest = max(len(line) for line in plot.splitlines())
        assert longest < 70

    def test_ascii_plot_flat_series(self):
        plot = ascii_plot([3, 3, 3], width=10, height=4)
        assert "peak 3" in plot


class TestThroughputGate:
    """The CI gate enforces compiled >= interpreting on every kernel
    pair (projector, evaluator, lexer, generated code)."""

    #: a payload that satisfies every gated pair, overridden per test.
    #: engine_q1_codegen deliberately sits below engine_q1_compiled_bytes
    #: but above its 0.85 floor — the documented noise tolerance.
    PASSING = dict(
        engine_q1_compiled=10.0,
        engine_q1_pull=4.0,
        evaluator_vm=12.0,
        evaluator_interp=9.0,
        lexer_bytes=15.0,
        lexer_bytes_fused=14.0,
        lexer_events=10.0,
        projector_q1_codegen=11.0,
        projector_q1_tables=10.0,
        engine_q1_codegen=9.5,
        engine_q1_compiled_bytes=10.0,
        server_8queries_shared=24.0,
        server_8queries_independent=8.0,
        server_q1_8clients=8.0,
        server_q1_8clients_4workers={"mb_per_s": 24.0, "cpu_count": 4},
    )

    @staticmethod
    def _gate():
        import importlib.util
        import os

        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks",
            "check_throughput_gate.py",
        )
        spec = importlib.util.spec_from_file_location("throughput_gate", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @staticmethod
    def _entries(**mb_per_s):
        return {
            "entries": {
                name: value if isinstance(value, dict) else {"mb_per_s": value}
                for name, value in mb_per_s.items()
            }
        }

    def _write(self, tmp_path, payload):
        import json

        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_passes_when_compiled_wins_all_pairs(self, tmp_path):
        gate = self._gate()
        path = self._write(tmp_path, self._entries(**self.PASSING))
        message = gate.check(path)
        assert "evaluator_vm" in message and "ok" in message
        assert "lexer_bytes" in message
        assert "projector_q1_codegen" in message
        assert "server_8queries_shared" in message

    def test_multiplex_pair_gates_at_its_documented_floor(self, tmp_path):
        """The shared/independent pair carries a 2.7x floor: 3.0x
        passes (PASSING encodes it), 2.0x is the regression class the
        gate exists for — a driver that stops sharing the pass."""
        gate = self._gate()
        path = self._write(
            tmp_path,
            self._entries(**{**self.PASSING, "server_8queries_shared": 16.0}),
        )
        with pytest.raises(SystemExit, match="server_8queries_shared"):
            gate.check(path)

    def test_pool_pair_gates_on_multicore_hosts(self, tmp_path):
        """On a >=4-core recording host the 4-worker pool must hold
        its 2.5x floor: 3.0x passes (PASSING encodes it), 1.2x is a
        pool that stopped sharding."""
        gate = self._gate()
        path = self._write(
            tmp_path,
            self._entries(
                **{
                    **self.PASSING,
                    "server_q1_8clients_4workers": {
                        "mb_per_s": 9.6,
                        "cpu_count": 4,
                    },
                }
            ),
        )
        with pytest.raises(SystemExit, match="stopped scaling"):
            gate.check(path)

    def test_pool_pair_not_enforced_on_few_cores(self, tmp_path):
        """Recorded on 1 cpu, 4 workers cannot beat one process 3x —
        the same 1.2x ratio passes with an honest 'not enforced'
        note instead of a false regression."""
        gate = self._gate()
        path = self._write(
            tmp_path,
            self._entries(
                **{
                    **self.PASSING,
                    "server_q1_8clients_4workers": {
                        "mb_per_s": 9.6,
                        "cpu_count": 1,
                    },
                }
            ),
        )
        message = gate.check(path)
        assert "not enforced" in message
        assert "server_q1_8clients_4workers" in message

    def test_fails_when_pool_entries_missing(self, tmp_path):
        gate = self._gate()
        payload = {
            name: value
            for name, value in self.PASSING.items()
            if name != "server_q1_8clients_4workers"
        }
        path = self._write(tmp_path, self._entries(**payload))
        with pytest.raises(SystemExit, match="server_q1_8clients_4workers"):
            gate.check(path)

    def test_fails_when_vm_regresses_below_interpreter(self, tmp_path):
        gate = self._gate()
        path = self._write(
            tmp_path, self._entries(**{**self.PASSING, "evaluator_vm": 8.0})
        )
        with pytest.raises(SystemExit, match="evaluator_vm"):
            gate.check(path)

    def test_fails_when_bytes_lexer_regresses_below_str(self, tmp_path):
        gate = self._gate()
        path = self._write(
            tmp_path, self._entries(**{**self.PASSING, "lexer_bytes": 9.0})
        )
        with pytest.raises(SystemExit, match="lexer_bytes"):
            gate.check(path)

    def test_fused_scan_pair_gates_at_its_documented_floor(self, tmp_path):
        """The fused/unfused scan pair carries a 0.85 parity floor
        (DESIGN.md §15): 14.0 vs 15.0 passes (PASSING encodes it),
        11.0 vs 15.0 is a fused path that lost its batch machinery."""
        gate = self._gate()
        path = self._write(
            tmp_path,
            self._entries(**{**self.PASSING, "lexer_bytes_fused": 11.0}),
        )
        with pytest.raises(SystemExit, match="lexer_bytes_fused"):
            gate.check(path)

    def test_tokenizer_absolute_floor(self, tmp_path):
        """``lexer_bytes`` also carries an absolute MB/s floor: a
        tokenizer that lost batch scanning entirely fails even if it
        still beats the str event path's ratio."""
        gate = self._gate()
        path = self._write(
            tmp_path,
            self._entries(
                **{
                    **self.PASSING,
                    "lexer_bytes": 7.0,
                    "lexer_events": 4.0,
                    "lexer_bytes_fused": 7.0,
                }
            ),
        )
        with pytest.raises(SystemExit, match="absolute"):
            gate.check(path)

    def test_fails_when_generated_projector_loses_to_tables(self, tmp_path):
        """The projector-stage codegen pair has a 0.9 noise floor:
        8.5 vs 10.0 is below it and fails."""
        gate = self._gate()
        path = self._write(
            tmp_path,
            self._entries(**{**self.PASSING, "projector_q1_codegen": 8.5}),
        )
        with pytest.raises(SystemExit, match="projector_q1_codegen"):
            gate.check(path)

    def test_engine_codegen_pair_tolerates_noise_but_has_a_floor(
        self, tmp_path
    ):
        """End to end the tokenizer is the ceiling, so the codegen/
        tables engine pair carries a 0.85 floor: 9.5 vs 10.0 passes
        (PASSING already encodes that), 8.0 vs 10.0 fails."""
        gate = self._gate()
        path = self._write(
            tmp_path,
            self._entries(**{**self.PASSING, "engine_q1_codegen": 8.0}),
        )
        with pytest.raises(SystemExit, match="engine_q1_codegen"):
            gate.check(path)

    def test_fails_when_evaluator_entries_missing(self, tmp_path):
        gate = self._gate()
        payload = {
            name: value
            for name, value in self.PASSING.items()
            if not name.startswith("evaluator")
        }
        path = self._write(tmp_path, self._entries(**payload))
        with pytest.raises(SystemExit, match="evaluator"):
            gate.check(path)


class TestProfileStages:
    def test_harness_runs_and_attributes_stages(self, capsys):
        import importlib.util
        import os

        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks",
            "profile_stages.py",
        )
        spec = importlib.util.spec_from_file_location("profile_stages", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.main(["--scale", "0.3", "--repeat", "1"]) == 0
        out = capsys.readouterr().out
        for stage in ("lexer_str", "lexer_bytes", "projector", "engine"):
            assert stage in out
        assert "MB/s" in out
