"""Unit tests for the minimal DTD parser."""

from repro.xmark.generator import XMARK_DTD
from repro.xmlio.dtd import parse_dtd


class TestParseDtd:
    def test_sequence_model(self):
        dtd = parse_dtd("<!ELEMENT site (regions, people, auctions)>")
        decl = dtd.declaration("site")
        assert decl.children == ("regions", "people", "auctions")
        assert decl.sequence is True
        assert not decl.mixed

    def test_choice_model_is_not_sequence(self):
        dtd = parse_dtd("<!ELEMENT bib (book|article)*>")
        decl = dtd.declaration("bib")
        assert decl.sequence is False
        assert set(decl.children) == {"book", "article"}

    def test_mixed_content(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA|em)*>")
        decl = dtd.declaration("p")
        assert decl.mixed is True
        assert "em" in decl.children

    def test_empty_content(self):
        dtd = parse_dtd("<!ELEMENT br EMPTY>")
        assert dtd.declaration("br").empty is True

    def test_occurrence_markers_ignored(self):
        dtd = parse_dtd("<!ELEMENT a (b?, c*, d+)>")
        assert dtd.declaration("a").children == ("b", "c", "d")
        assert dtd.declaration("a").sequence is True

    def test_unknown_element_is_none(self):
        dtd = parse_dtd("<!ELEMENT a (b)>")
        assert dtd.declaration("zzz") is None

    def test_multiline_declarations(self):
        dtd = parse_dtd("<!ELEMENT a\n  (b,\n   c)>")
        assert dtd.declaration("a").children == ("b", "c")


class TestSchemaInference:
    def test_no_more_children_in_sequence(self):
        dtd = parse_dtd("<!ELEMENT site (regions, people, auctions)>")
        # once 'people' is seen, no further 'regions' child can occur
        assert dtd.no_more_children_of("site", seen="people", wanted="regions")
        assert not dtd.no_more_children_of("site", seen="people", wanted="auctions")

    def test_choice_model_gives_no_inference(self):
        dtd = parse_dtd("<!ELEMENT bib (book|article)*>")
        assert not dtd.no_more_children_of("bib", seen="article", wanted="book")

    def test_unknown_parent_gives_no_inference(self):
        dtd = parse_dtd("<!ELEMENT a (b, c)>")
        assert not dtd.no_more_children_of("zzz", seen="c", wanted="b")

    def test_xmark_dtd_sections_ordered(self):
        dtd = parse_dtd(XMARK_DTD)
        assert dtd.no_more_children_of("site", seen="people", wanted="regions")
        assert dtd.no_more_children_of(
            "site", seen="closed_auctions", wanted="open_auctions"
        )
        assert not dtd.no_more_children_of(
            "site", seen="regions", wanted="closed_auctions"
        )
