"""Tests for scalar let clauses (extension)."""

import pytest

from repro.baselines import FullDomEngine
from repro.core.engine import GCXEngine
from repro.xquery import ast as q
from repro.xquery.normalize import NormalizationError, normalize_query
from repro.xquery.parser import XQueryParseError, parse_query

XML = "<a><b><v>1</v><v>2</v></b><b><v>3</v></b></a>"


@pytest.fixture
def engine():
    return GCXEngine()


class TestParsing:
    def test_let_parses(self):
        body = parse_query("let $n := count(/a/b) return <t>{ $n }</t>").body
        assert isinstance(body, q.LetExpr)
        assert body.var == "n"
        assert isinstance(body.value, q.Aggregate)

    def test_let_literal_value(self):
        body = parse_query('let $n := "x" return $n').body
        assert body.value == q.Literal("x")

    def test_let_numeric_literal(self):
        body = parse_query("let $n := 42 return $n").body
        assert body.value == q.Literal(42)

    def test_let_node_value_rejected(self):
        with pytest.raises(XQueryParseError, match="scalar"):
            parse_query("let $n := /a/b return $n")


class TestNormalization:
    def test_let_variable_renamed_apart(self):
        query = normalize_query(
            parse_query(
                "(let $n := count(/a/b) return $n,"
                " let $n := count(/a/b/v) return $n)"
            )
        )
        first, second = query.body.items
        assert first.var != second.var
        assert first.body.var == first.var

    def test_navigation_from_scalar_rejected(self):
        with pytest.raises(NormalizationError, match="scalar"):
            normalize_query(
                parse_query("let $n := count(/a/b) return $n/deeper")
            )

    def test_iteration_from_scalar_rejected(self):
        with pytest.raises(NormalizationError):
            normalize_query(
                parse_query(
                    "let $n := count(/a/b) return for $x in $n/y return $x"
                )
            )


class TestEvaluation:
    def test_let_output(self, engine):
        out = engine.evaluate("let $n := count(/a/b/v) return <t>{ $n }</t>", XML)
        assert out == "<t>3</t>"

    def test_let_in_comparison(self, engine):
        out = engine.evaluate(
            "let $n := count(/a/b) return "
            'if ($n >= 2) then "many" else "few"',
            XML,
        )
        assert out == "many"

    def test_let_per_binding(self, engine):
        out = engine.evaluate(
            "for $b in /a/b return "
            "let $n := count($b/v) return <c>{ $n }</c>",
            XML,
        )
        assert out == "<c>2</c><c>1</c>"

    def test_let_string_literal(self, engine):
        out = engine.evaluate('let $s := "hi" return ($s, $s)', XML)
        assert out == "hihi"

    def test_let_exists_is_true(self, engine):
        out = engine.evaluate(
            'let $n := count(/a/zzz) return if (exists $n) then "y" else "n"',
            XML,
        )
        assert out == "y"

    def test_let_in_attribute_template(self, engine):
        out = engine.evaluate(
            'for $b in /a/b return let $n := count($b/v) return <r n="{$n}"/>',
            XML,
        )
        assert out == '<r n="2"></r><r n="1"></r>'

    def test_original_q8_shape_with_let(self, engine):
        # close to the published XMark Q8: per person, a let-bound count
        xml = (
            "<db><people><p id='1'/><p id='2'/></people>"
            "<orders><o buyer='1'/><o buyer='1'/><o buyer='2'/></orders></db>"
        )
        query = """
        for $db in /db return
          for $os in $db/orders return
            for $ps in $db/people return
              for $p in $ps/p return
                <item id="{$p/@id}">{
                  let $n := count($os/o) return $n
                }</item>
        """
        out = engine.evaluate(query, xml)
        assert out == '<item id="1">3</item><item id="2">3</item>'

    def test_matches_dom_oracle(self, engine):
        dom = FullDomEngine()
        for text in (
            "let $n := count(/a/b/v) return <t>{ $n }</t>",
            "for $b in /a/b return let $n := sum($b/v) return "
            "if ($n > 2) then $b else ()",
            'let $n := avg(/a/b/v) return <r a="{$n}"/>',
        ):
            assert engine.evaluate(text, XML) == dom.evaluate(text, XML)

    def test_buffer_cleared(self, engine):
        result = engine.query(
            "for $b in /a/b return let $n := count($b/v) return $n", XML
        )
        assert result.stats.final_buffered == 0
