"""Unit tests for XML serialization."""

from repro.xmlio.lexer import tokenize
from repro.xmlio.writer import XmlWriter, escape_attribute, escape_text


class TestEscaping:
    def test_text_escapes_angle_brackets_and_amp(self):
        assert escape_text("<a> & </a>") == "&lt;a&gt; &amp; &lt;/a&gt;"

    def test_text_leaves_quotes(self):
        assert escape_text('say "hi"') == 'say "hi"'

    def test_attribute_escapes_quote(self):
        assert escape_attribute('a"b') == "a&quot;b"

    def test_attribute_escapes_amp_and_lt(self):
        assert escape_attribute("a<&b") == "a&lt;&amp;b"


class TestXmlWriter:
    def test_element_with_attributes(self):
        writer = XmlWriter()
        writer.start_element("a", [("x", "1")])
        writer.text("body")
        writer.end_element("a")
        assert writer.getvalue() == '<a x="1">body</a>'

    def test_empty_attribute_list(self):
        writer = XmlWriter()
        writer.start_element("a", [])
        writer.end_element("a")
        assert writer.getvalue() == "<a></a>"

    def test_raw_passthrough(self):
        writer = XmlWriter()
        writer.raw("<pre&served/>")
        assert writer.getvalue() == "<pre&served/>"

    def test_token_roundtrip(self):
        xml = '<a x="1">t<b></b></a>'
        writer = XmlWriter()
        for token in tokenize(xml):
            writer.token(token)
        assert writer.getvalue() == xml

    def test_len_counts_characters(self):
        writer = XmlWriter()
        writer.text("abc")
        writer.text("de")
        assert len(writer) == 5
