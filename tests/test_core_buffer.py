"""Unit tests for the buffer and its active garbage collection."""

from repro.core.buffer import Buffer


def build_chain(buffer, tags):
    """Materialize a chain root -> tags[0] -> tags[1] -> ..."""
    node = buffer.root
    nodes = []
    for tag in tags:
        node = buffer.new_element(node, tag)
        nodes.append(node)
    return nodes


class TestMaterialization:
    def test_live_count_excludes_root(self):
        buffer = Buffer()
        assert buffer.live_count == 0
        build_chain(buffer, ["a", "b"])
        assert buffer.live_count == 2

    def test_children_in_arrival_order(self):
        buffer = Buffer()
        a = buffer.new_element(buffer.root, "a")
        b1 = buffer.new_element(a, "b")
        b2 = buffer.new_element(a, "b")
        assert a.children == [b1, b2]
        assert a.child_seqs == [b1.seq, b2.seq]
        assert b1.seq < b2.seq

    def test_text_nodes_closed_on_creation(self):
        buffer = Buffer()
        a = buffer.new_element(buffer.root, "a")
        t = buffer.new_text(a, "hello")
        assert t.closed and t.is_text
        assert t.string_value() == "hello"

    def test_string_value_concatenates(self):
        buffer = Buffer()
        a = buffer.new_element(buffer.root, "a")
        buffer.new_text(a, "x")
        b = buffer.new_element(a, "b")
        buffer.new_text(b, "y")
        buffer.new_text(a, "z")
        assert a.string_value() == "xyz"

    def test_next_child_after(self):
        buffer = Buffer()
        a = buffer.new_element(buffer.root, "a")
        b1 = buffer.new_element(a, "b")
        c = buffer.new_element(a, "c")
        b2 = buffer.new_element(a, "b")
        is_b = lambda n: n.tag == "b"  # noqa: E731
        assert a.next_child_after(0, is_b) is b1
        assert a.next_child_after(b1.seq, is_b) is b2
        assert a.next_child_after(b2.seq, is_b) is None
        assert a.next_child_after(b1.seq) is c


class TestRoleAccounting:
    def test_add_roles_updates_subtree_counts(self):
        buffer = Buffer()
        a, b, c = build_chain(buffer, ["a", "b", "c"])
        buffer.add_roles(c, {"r1": 2})
        assert c.roles["r1"] == 2
        assert c.subtree_roles == 2
        assert b.subtree_roles == 2
        assert a.subtree_roles == 2
        assert buffer.root.subtree_roles == 2

    def test_remove_missing_role_is_noop(self):
        buffer = Buffer()
        (a,) = build_chain(buffer, ["a"])
        buffer.remove_role(a, "r9")
        assert buffer.live_count == 1
        assert buffer.stats.roles_removed == 0

    def test_total_role_instances(self):
        buffer = Buffer()
        a, b = build_chain(buffer, ["a", "b"])
        buffer.add_roles(a, {"r1": 1})
        buffer.add_roles(b, {"r2": 3})
        assert buffer.total_role_instances() == 4


class TestGarbageCollection:
    def test_purge_on_last_role_removed(self):
        buffer = Buffer()
        a, b = build_chain(buffer, ["a", "b"])
        buffer.add_roles(a, {"ra": 1})
        buffer.add_roles(b, {"rb": 1})
        buffer.close(b)
        buffer.close(a)
        buffer.remove_role(b, "rb")
        assert b.purged
        assert buffer.live_count == 1  # a still holds ra
        buffer.remove_role(a, "ra")
        assert a.purged
        assert buffer.live_count == 0

    def test_open_node_is_pinned(self):
        buffer = Buffer()
        (a,) = build_chain(buffer, ["a"])
        buffer.add_roles(a, {"r": 1})
        buffer.remove_role(a, "r")
        assert not a.purged, "open nodes must not be purged"
        buffer.close(a)
        assert a.purged

    def test_node_with_role_bearing_descendant_survives(self):
        # the paper's Figure 1(c): book keeps role r6, title keeps r7;
        # a roleless ancestor must survive while a descendant has roles
        buffer = Buffer()
        a, b, c = build_chain(buffer, ["a", "b", "c"])
        buffer.add_roles(c, {"r": 1})
        for node in (c, b, a):
            buffer.close(node)
        assert buffer.live_count == 3
        buffer.remove_role(c, "r")
        # cascade removes c, then the roleless spine b and a
        assert buffer.live_count == 0

    def test_multiset_roles_require_all_instances_removed(self):
        buffer = Buffer()
        a, b = build_chain(buffer, ["a", "b"])
        buffer.add_roles(b, {"r": 2})
        buffer.close(b)
        buffer.close(a)
        buffer.remove_role(b, "r")
        assert not b.purged
        buffer.remove_role(b, "r")
        assert b.purged

    def test_purge_detaches_from_parent(self):
        buffer = Buffer()
        a = buffer.new_element(buffer.root, "a")
        b1 = buffer.new_element(a, "b")
        b2 = buffer.new_element(a, "b")
        buffer.add_roles(a, {"ra": 1})
        buffer.add_roles(b1, {"r": 1})
        buffer.add_roles(b2, {"r": 1})
        buffer.close(b1)
        buffer.remove_role(b1, "r")
        assert a.children == [b2]
        assert a.child_seqs == [b2.seq]

    def test_seq_iteration_survives_purge(self):
        buffer = Buffer()
        a = buffer.new_element(buffer.root, "a")
        buffer.add_roles(a, {"ra": 1})
        children = [buffer.new_element(a, "b") for _ in range(3)]
        for child in children:
            buffer.add_roles(child, {"r": 1})
            buffer.close(child)
        first = a.next_child_after(0)
        buffer.remove_role(first, "r")  # purge the first child
        resumed = a.next_child_after(first.seq)
        assert resumed is children[1]

    def test_purged_subtree_is_released(self):
        buffer = Buffer()
        a, b, c = build_chain(buffer, ["a", "b", "c"])
        buffer.add_roles(a, {"r": 1})
        for node in (c, b, a):
            buffer.close(node)
        # b, c are roleless and closed: closing them purges bottom-up
        assert buffer.live_count == 1
        assert not a.children

    def test_stats_track_purges(self):
        buffer = Buffer()
        a, b = build_chain(buffer, ["a", "b"])
        buffer.add_roles(b, {"r": 1})
        buffer.close(b)
        buffer.close(a)
        buffer.remove_role(b, "r")
        assert buffer.stats.nodes_purged == 2
        assert buffer.stats.roles_assigned == 1
        assert buffer.stats.roles_removed == 1


class TestBulkOperations:
    def test_clear(self):
        buffer = Buffer()
        a, b = build_chain(buffer, ["a", "b"])
        buffer.add_roles(b, {"r": 1})
        freed = buffer.clear()
        assert freed == 2
        assert buffer.live_count == 0
        assert not buffer.root.children

    def test_iter_live_preorder(self):
        buffer = Buffer()
        a = buffer.new_element(buffer.root, "a")
        b = buffer.new_element(a, "b")
        c = buffer.new_element(a, "c")
        assert [n.tag for n in buffer.iter_live()] == ["a", "b", "c"]

    def test_render_shows_roles(self):
        buffer = Buffer()
        a, b = build_chain(buffer, ["bib", "book"])
        buffer.add_roles(a, {"r2": 1})
        buffer.add_roles(b, {"r3": 1, "r5": 1})
        rendering = buffer.render()
        assert "bib{r2}" in rendering
        assert "book{r3,r5}" in rendering
