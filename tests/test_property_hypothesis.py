"""Property-based tests (hypothesis) on the core data structures.

Three laws are exercised:

1. **Lexer/serializer round-trip** — tokenizing a serialized random
   tree reproduces the tree.
2. **Matcher ≡ oracle** — the total number of role instances the
   streaming matcher assigns equals the number of match derivations
   the DOM oracle finds for the same path (the multiplicity semantics
   active GC depends on).
3. **Engine invariants** — on randomized documents, the streaming
   engine agrees with the DOM oracle, ends with an empty buffer, and
   never buffers more than the projection-only engine.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines import FullDomEngine, ProjectionOnlyEngine
from repro.core.buffer import Buffer
from repro.core.engine import GCXEngine
from repro.core.matcher import PathMatcher
from repro.core.projector import StreamProjector
from repro.xmlio.dom import parse_dom
from repro.xmlio.lexer import make_lexer, tokenize
from repro.xmlio.tokens import TokenKind
from repro.xmlio.writer import XmlWriter, serialize_dom
from repro.xpath.evaluator import evaluate_path
from repro.xpath.parser import parse_path

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_TAGS = ("a", "b", "c", "d")


@st.composite
def xml_trees(draw, max_depth=4):
    """A random XML document string over a small tag alphabet."""

    def node(depth):
        tag = draw(st.sampled_from(_TAGS))
        attrs = ""
        if draw(st.booleans()):
            value = draw(st.integers(0, 3))
            attrs = f' k="v{value}"'
        if depth >= max_depth or draw(st.integers(0, 2)) == 0:
            if draw(st.booleans()):
                text = draw(st.sampled_from(("x", "yy", "z1")))
                return f"<{tag}{attrs}>{text}</{tag}>"
            return f"<{tag}{attrs}></{tag}>"
        children = "".join(
            node(depth + 1) for _ in range(draw(st.integers(0, 3)))
        )
        return f"<{tag}{attrs}>{children}</{tag}>"

    return f"<r>{node(1)}{node(1)}</r>"


@st.composite
def role_paths(draw):
    """A random projection path over the same alphabet."""
    steps = []
    for _ in range(draw(st.integers(1, 3))):
        axis = draw(st.sampled_from(("", "descendant::", "descendant-or-self::")))
        if axis == "descendant-or-self::":
            test = "node()"
        else:
            test = draw(st.sampled_from(_TAGS + ("*",)))
        steps.append(axis + test)
    return "/r/" + "/".join(steps)


# ---------------------------------------------------------------------------
# 1. lexer round-trip
# ---------------------------------------------------------------------------


@given(xml_trees())
@settings(max_examples=60, deadline=None)
def test_lexer_serializer_roundtrip(xml):
    writer = XmlWriter()
    for token in tokenize(xml):
        writer.token(token)
    assert writer.getvalue() == xml


@given(xml_trees())
@settings(max_examples=60, deadline=None)
def test_dom_roundtrip(xml):
    assert serialize_dom(parse_dom(xml)) == xml


@given(xml_trees())
@settings(max_examples=40, deadline=None)
def test_token_nesting_balanced(xml):
    depth = 0
    for token in tokenize(xml):
        if token.kind is TokenKind.START:
            depth += 1
        elif token.kind is TokenKind.END:
            depth -= 1
        assert depth >= 0
    assert depth == 0


# ---------------------------------------------------------------------------
# 2. matcher ≡ oracle
# ---------------------------------------------------------------------------


@given(xml_trees(), role_paths())
@settings(max_examples=80, deadline=None)
def test_matcher_assigns_oracle_derivation_counts(xml, path_text):
    path = parse_path(path_text)
    buffer = Buffer()
    matcher = PathMatcher([("r", path)])
    StreamProjector(make_lexer(xml), matcher, buffer).run_to_end()
    assigned = buffer.stats.roles_assigned

    document = parse_dom(xml)
    derivations = evaluate_path(path, document, count_derivations=True)
    assert assigned == len(derivations)


@given(xml_trees(), role_paths())
@settings(max_examples=40, deadline=None)
def test_projection_buffers_at_most_document(xml, path_text):
    path = parse_path(path_text)
    buffer = Buffer()
    matcher = PathMatcher([("root", parse_path("/")), ("r", path)])
    StreamProjector(make_lexer(xml), matcher, buffer).run_to_end()
    total_nodes = parse_dom(xml).count_nodes() - 1  # minus #document
    assert buffer.live_count <= total_nodes


# ---------------------------------------------------------------------------
# 3. engine invariants
# ---------------------------------------------------------------------------

_ENGINE_QUERIES = (
    "for $x in /r/a return $x",
    "for $x in /r/descendant::b return $x/@k",
    "for $x in /r/* return if (exists $x/c) then $x/c else ()",
    'for $x in /r/a return if ($x/@k = "v1") then $x/b else ()',
    "for $x in /r/a return for $y in $x/b return $y/text()",
)


@given(xml_trees(), st.sampled_from(_ENGINE_QUERIES))
@settings(max_examples=80, deadline=None)
def test_streaming_engine_matches_oracle(xml, query):
    gcx = GCXEngine().query(query, xml)
    dom = FullDomEngine().query(query, xml)
    assert gcx.output == dom.output


@given(xml_trees(), st.sampled_from(_ENGINE_QUERIES))
@settings(max_examples=60, deadline=None)
def test_buffer_empty_and_roles_balanced_after_run(xml, query):
    result = GCXEngine().query(query, xml)
    assert result.stats.final_buffered == 0
    # the only unremoved instance is the root role r1
    assert result.stats.roles_assigned == result.stats.roles_removed + 1
    assert result.stats.nodes_purged == result.stats.nodes_buffered


@given(xml_trees(), st.sampled_from(_ENGINE_QUERIES))
@settings(max_examples=40, deadline=None)
def test_gcx_never_buffers_more_than_projection(xml, query):
    gcx = GCXEngine().query(query, xml)
    projection = ProjectionOnlyEngine().query(query, xml)
    assert gcx.stats.watermark <= projection.stats.watermark
    assert gcx.output == projection.output


@given(xml_trees())
@settings(max_examples=30, deadline=None)
def test_identity_query_copies_document(xml):
    output = GCXEngine().evaluate("for $x in /r return $x", xml)
    assert output == xml
