"""Unit tests for the XQuery parser."""

import pytest

from repro.xquery import ast as q
from repro.xquery.parser import XQueryParseError, parse_query


class TestBasicExpressions:
    def test_for_loop(self):
        query = parse_query("for $x in /a/b return $x")
        body = query.body
        assert isinstance(body, q.ForExpr)
        assert body.var == "x"
        assert body.source.var is None
        assert str(body.source.path) == "/a/b"
        assert isinstance(body.body, q.PathExpr)

    def test_for_from_variable(self):
        query = parse_query("for $x in /a return for $y in $x/b return $y")
        inner = query.body.body
        assert inner.source.var == "x"
        assert str(inner.source.path) == "b"

    def test_sequence(self):
        query = parse_query('("a", "b", "c")')
        assert isinstance(query.body, q.Sequence)
        assert len(query.body.items) == 3

    def test_empty_sequence(self):
        assert isinstance(parse_query("()").body, q.Empty)

    def test_string_literal(self):
        assert parse_query('"hello"').body == q.TextLiteral("hello")

    def test_single_quoted_string(self):
        assert parse_query("'hi'").body == q.TextLiteral("hi")

    def test_variable_output(self):
        body = parse_query("for $x in /a return $x").body.body
        assert body == q.PathExpr("x", body.path)
        assert not body.path.steps

    def test_path_output_with_steps(self):
        body = parse_query("for $x in /a return $x/b/c").body.body
        assert str(body.path) == "b/c"

    def test_comments_skipped(self):
        query = parse_query("(: comment :) for $x in /a return (: x :) $x")
        assert isinstance(query.body, q.ForExpr)


class TestConstructors:
    def test_empty_constructor(self):
        body = parse_query("<r/>").body
        assert isinstance(body, q.ElementConstructor)
        assert body.tag == "r"
        assert isinstance(body.body, q.Empty)

    def test_constructor_with_enclosed_expr(self):
        body = parse_query("<r>{ for $x in /a return $x }</r>").body
        assert isinstance(body.body, q.ForExpr)

    def test_constructor_attributes(self):
        body = parse_query('<r kind="x" n="1"/>').body
        assert body.attributes == (("kind", "x"), ("n", "1"))

    def test_nested_constructors(self):
        body = parse_query("<a><b/></a>").body
        assert isinstance(body.body, q.ElementConstructor)
        assert body.body.tag == "b"

    def test_literal_text_content(self):
        body = parse_query("<a>hello</a>").body
        assert body.body == q.TextLiteral("hello")

    def test_mixed_content(self):
        body = parse_query("<a>x{ $v }y</a>").body
        # parses, but $v is unbound: that is normalize's job to reject
        assert isinstance(body.body, q.Sequence)
        assert len(body.body.items) == 3

    def test_unterminated_constructor(self):
        with pytest.raises(XQueryParseError, match="unterminated constructor"):
            parse_query("<a>{ () }")


class TestConditions:
    def test_if_exists(self):
        body = parse_query("if (exists /a/b) then <y/> else ()").body
        assert isinstance(body, q.IfExpr)
        assert isinstance(body.condition, q.Exists)

    def test_exists_with_parens(self):
        body = parse_query("if (exists(/a/b)) then <y/> else ()").body
        assert isinstance(body.condition, q.Exists)

    def test_not(self):
        body = parse_query("if (not(exists /a)) then <y/> else ()").body
        assert isinstance(body.condition, q.Not)
        assert isinstance(body.condition.operand, q.Exists)

    def test_and_or_precedence(self):
        body = parse_query(
            'if (exists /a and exists /b or exists /c) then <y/> else ()'
        ).body
        # 'and' binds tighter than 'or'
        assert isinstance(body.condition, q.Or)
        assert isinstance(body.condition.left, q.And)

    def test_comparison_symbols(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            body = parse_query(f'if (/a/b {op} "3") then <y/> else ()').body
            assert body.condition.op == op

    def test_comparison_keywords(self):
        body = parse_query('if (/a/b eq "3") then <y/> else ()').body
        assert body.condition.op == "="
        body = parse_query("if (/a/b ge 3) then <y/> else ()").body
        assert body.condition.op == ">="

    def test_numeric_literal_operand(self):
        body = parse_query("if (/a/b < 42) then <y/> else ()").body
        assert body.condition.right == q.Literal(42)

    def test_float_literal(self):
        body = parse_query("if (/a/b < 4.5) then <y/> else ()").body
        assert body.condition.right == q.Literal(4.5)

    def test_attribute_comparison(self):
        body = parse_query('if (/a/@id = "x") then <y/> else ()').body
        assert str(body.condition.left.path) == "/a/@id"

    def test_bare_path_condition_is_exists(self):
        body = parse_query("if (/a/b) then <y/> else ()").body
        assert isinstance(body.condition, q.Exists)

    def test_where_clause(self):
        body = parse_query('for $x in /a where $x/b = "1" return $x').body
        assert isinstance(body.where, q.Comparison)


class TestSignOff:
    def test_signoff_parses(self):
        body = parse_query("for $x in /a return ($x, signOff($x, r3))").body
        stmt = body.body.items[1]
        assert isinstance(stmt, q.SignOff)
        assert stmt.var == "x"
        assert stmt.role == "r3"

    def test_signoff_with_path(self):
        body = parse_query(
            "for $x in /a return signOff($x/descendant-or-self::node(), r5)"
        ).body
        assert str(body.body.path) == "descendant-or-self::node()"

    def test_paper_rewritten_query_roundtrips(self):
        text = """
        <r> {
        for $bib in /bib return
        ((for $x in $bib/* return
        (if (not(exists $x/price)) then $x else (),
        signOff($x,r3),
        signOff($x/price[1],r4),
        signOff($x/descendant-or-self::node(),r5))),
        (for $b in $bib/book return
        ($b/title,
        signOff($b,r6),
        signOff($b/title/descendant-or-self::node(),r7)
        )),
        signOff($bib,r2)) }
        </r>
        """
        query = parse_query(text)
        signoffs = [
            e
            for e in _iter_all(query.body)
            if isinstance(e, q.SignOff)
        ]
        assert sorted(s.role for s in signoffs) == ["r2", "r3", "r4", "r5", "r6", "r7"]


def _iter_all(expr):
    from repro.xquery.ast import iter_expressions

    return iter_expressions(expr)


class TestErrors:
    def test_trailing_input(self):
        with pytest.raises(XQueryParseError, match="trailing input"):
            parse_query("<a/> <b/>")

    def test_missing_return(self):
        with pytest.raises(XQueryParseError, match="return"):
            parse_query("for $x in /a $x")

    def test_missing_in(self):
        with pytest.raises(XQueryParseError, match="'in'"):
            parse_query("for $x return $x")

    def test_unterminated_string(self):
        with pytest.raises(XQueryParseError, match="unterminated string"):
            parse_query('"abc')

    def test_unterminated_comment(self):
        with pytest.raises(XQueryParseError, match="unterminated comment"):
            parse_query("(: oops <a/>")

    def test_condition_requires_operator_after_literal(self):
        with pytest.raises(XQueryParseError):
            parse_query('if ("lonely") then <y/> else ()')
