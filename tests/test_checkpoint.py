"""Durable session snapshots (DESIGN.md §16): the versioned codec and
the StreamSession freeze/snapshot/restore lifecycle.

The contract under test: a checkpointable session can be serialized at
any quiescent point into a self-contained, versioned blob; restoring
that blob — in this process or a fresh one — yields a session that
continues **byte-identically** (output, watermark, per-token series).
Stale or foreign blobs are *refused*, never misread: a bumped format
version, corrupted magic, truncated payload, or mismatched plan each
raise a distinct, typed error before any engine state is touched.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

import pytest

from repro.core.engine import GCXEngine
from repro.core.session import SessionStateError, StreamSession
from repro.core.snapshot import (
    FORMAT_VERSION,
    MAGIC,
    BlobReader,
    BlobWriter,
    SnapshotFormatError,
    SnapshotPlanMismatch,
    peek_plan_text,
    read_header,
)
from repro.xmark.queries import ADAPTED_QUERIES

QUERY = ADAPTED_QUERIES["q1"].text
OTHER_QUERY = ADAPTED_QUERIES["q8"].text


@pytest.fixture(scope="module")
def doc(xmark_small):
    return xmark_small


@pytest.fixture(scope="module")
def gcx():
    # module-scoped engine so the plan cache is shared across tests
    # (the conftest ``gcx`` is function-scoped)
    return GCXEngine()


@pytest.fixture(scope="module")
def reference(gcx, doc):
    return gcx.run(gcx.compile(QUERY), doc)


def _feed_range(session, data: bytes, start: int, stop: int, step: int = 4096):
    for i in range(start, stop, step):
        session.feed(data[i : min(i + step, stop)])


# ---------------------------------------------------------------------------
# happy path: snapshot mid-stream, continue / restore, byte-identical
# ---------------------------------------------------------------------------


class TestSnapshotLifecycle:
    def test_snapshot_then_continue_is_byte_identical(self, gcx, doc, reference):
        data = doc.encode()
        session = gcx.session(QUERY, checkpointable=True)
        half = len(data) // 2
        _feed_range(session, data, 0, half)
        blob = session.snapshot()  # freezes, encodes, thaws
        assert isinstance(blob, bytes) and blob.startswith(MAGIC)
        _feed_range(session, data, half, len(data))
        result = session.finish()
        assert result.output == reference.output
        assert result.stats.watermark == reference.stats.watermark
        assert result.stats.series == reference.stats.series

    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.5, 0.9])
    def test_restore_in_fresh_session(self, gcx, doc, reference, fraction):
        data = doc.encode()
        split = int(len(data) * fraction)
        session = gcx.session(QUERY, checkpointable=True)
        _feed_range(session, data, 0, split)
        blob = session.snapshot()
        session.abort()  # the original is dead; only the blob survives

        restored = gcx.restore_session(blob)
        assert restored.bytes_fed == split
        _feed_range(restored, data, split, len(data))
        result = restored.finish()
        assert result.output == reference.output
        assert result.stats.watermark == reference.stats.watermark
        assert result.stats.series == reference.stats.series

    def test_repeated_checkpoints_along_one_stream(self, gcx, doc, reference):
        data = doc.encode()
        session = gcx.session(QUERY, checkpointable=True)
        step = max(1, len(data) // 5)
        blobs = []
        for i in range(0, len(data), step):
            session.feed(data[i : i + step])
            blobs.append(session.snapshot())
        assert session.finish().output == reference.output
        # every blob is independently restorable and self-describing
        for blob in blobs:
            assert peek_plan_text(blob) == gcx.compile(QUERY).canonical_text()

    def test_restore_from_intermediate_checkpoint(self, gcx, doc, reference):
        # checkpoint at every chunk boundary, then resume from one in
        # the middle — later checkpoints do not invalidate earlier ones
        data = doc.encode()
        session = gcx.session(QUERY, checkpointable=True)
        step = max(1, len(data) // 4)
        blobs = []
        fed = []
        for i in range(0, len(data), step):
            session.feed(data[i : i + step])
            fed.append(min(i + step, len(data)))
            blobs.append(session.snapshot())
        session.abort()

        blob, offset = blobs[1], fed[1]
        restored = gcx.restore_session(blob)
        assert restored.bytes_fed == offset
        _feed_range(restored, data, offset, len(data))
        assert restored.finish().output == reference.output

    def test_binary_output_session_roundtrip(self, gcx, doc, reference):
        # the server path: binary_output sessions snapshot/restore too,
        # and undrained output is carried inside the blob
        data = doc.encode()
        session = gcx.session(
            QUERY, checkpointable=True, binary_output=True, max_pending_output=None
        )
        half = len(data) // 2
        _feed_range(session, data, 0, half)
        blob = session.snapshot()
        session.abort()
        restored = gcx.restore_session(blob)
        _feed_range(restored, data, half, len(data))
        assert restored.finish().output == reference.output

    def test_restore_carries_delivered_output_offset(self, gcx, doc, reference):
        # the drained-prefix position is part of the snapshot: a session
        # restored from the blob reports the session-absolute delivered
        # offset, not zero — what keeps post-resume checkpoints exact
        data = doc.encode()
        session = gcx.session(QUERY, checkpointable=True, binary_output=True)
        _feed_range(session, data, 0, len(data) // 2)
        early = session.drain_output()
        blob = session.snapshot()
        assert session.delivered_output == len(early)
        session.abort()
        restored = gcx.restore_session(blob)
        assert restored.delivered_output == len(early)
        _feed_range(restored, data, len(data) // 2, len(data))
        result = restored.finish()
        assert early.decode() + result.output == reference.output


# ---------------------------------------------------------------------------
# the codec's primitives
# ---------------------------------------------------------------------------


class TestCodecPrimitives:
    @pytest.mark.parametrize(
        "value",
        [0, 1, -1, 2**63 - 1, -(2**63), 2**63, 2**200 + 17, -(2**200) - 17],
    )
    def test_svarint_roundtrip_is_unbounded(self, value):
        # slot values are Python ints (e.g. large aggregate sums), so
        # the zigzag must not assume a 64-bit domain
        w = BlobWriter()
        w.svarint(value)
        assert BlobReader(w.getvalue()).svarint() == value

    def test_runaway_varint_still_refused(self):
        # endless continuation bytes in a corrupt blob must fail loudly
        # rather than materialize an absurd integer
        with pytest.raises(SnapshotFormatError, match="overflow"):
            BlobReader(b"\xff" * 4096).varint()

    def test_bool_roundtrip(self):
        w = BlobWriter()
        w.bool_(True)
        w.bool_(False)
        r = BlobReader(w.getvalue())
        assert r.bool_() is True and r.bool_() is False

    @pytest.mark.parametrize("corrupt", [b"\x02", b"\x80", b"\xff"])
    def test_corrupt_bool_byte_refused(self, corrupt):
        # a bit-flipped flag must not silently decode as False
        with pytest.raises(SnapshotFormatError, match="bool"):
            BlobReader(corrupt).bool_()


# ---------------------------------------------------------------------------
# freeze/thaw mechanics
# ---------------------------------------------------------------------------


class TestFreezeThaw:
    def test_freeze_parks_and_thaw_resumes(self, gcx, doc, reference):
        data = doc.encode()
        session = gcx.session(QUERY, checkpointable=True)
        _feed_range(session, data, 0, len(data) // 3)
        session.freeze()
        assert session.frozen
        session.freeze()  # idempotent while frozen
        session.thaw()
        assert not session.frozen
        _feed_range(session, data, len(data) // 3, len(data))
        assert session.finish().output == reference.output

    def test_thaw_requires_frozen(self, gcx):
        session = gcx.session(QUERY, checkpointable=True)
        with pytest.raises(SessionStateError):
            session.thaw()
        session.abort()

    def test_freeze_after_finish_refused(self, gcx, doc):
        session = gcx.session(QUERY, checkpointable=True)
        session.feed(doc)
        session.finish()
        with pytest.raises(SessionStateError, match="finished"):
            session.freeze()

    def test_non_checkpointable_session_refuses_freeze(self, gcx, doc):
        session = gcx.session(QUERY)
        session.feed(doc[:1000])
        with pytest.raises(SessionStateError, match="checkpointable"):
            session.freeze()
        with pytest.raises(SessionStateError, match="checkpointable"):
            session.snapshot()
        session.abort()

    def test_checkpointable_requires_compiled_tiers(self, doc):
        # the interpreted projector/evaluator tiers carry closures the
        # codec cannot represent; asking for a checkpointable session
        # on them must fail fast at open time
        for engine in (GCXEngine(compiled=False), GCXEngine(compiled_eval=False)):
            with pytest.raises(SessionStateError):
                engine.session(QUERY, checkpointable=True)

    def test_checkpointable_pins_table_tier(self, gcx, doc, reference):
        # codegen/fused-lexer engines silently drop to the table tier
        # for checkpointable sessions — results must not change
        engine = GCXEngine(codegen=True, fused_lexer=True)
        session = engine.session(QUERY, checkpointable=True)
        session.feed(doc)
        assert session.finish().output == reference.output


# ---------------------------------------------------------------------------
# refusals: stale versions and foreign blobs are rejected, not misread
# ---------------------------------------------------------------------------


class TestRefusals:
    @pytest.fixture()
    def blob(self, gcx, doc):
        data = doc.encode()
        session = gcx.session(QUERY, checkpointable=True)
        _feed_range(session, data, 0, len(data) // 2)
        blob = session.snapshot()
        session.abort()
        return blob

    def test_header_roundtrip(self, blob, gcx):
        _reader, plan_text, digest = read_header(blob)
        assert plan_text == gcx.compile(QUERY).canonical_text()
        assert digest
        assert peek_plan_text(blob) == plan_text

    def test_stale_format_version_refused(self, blob, gcx):
        stale = (
            blob[:4]
            + (FORMAT_VERSION + 1).to_bytes(2, "big")
            + blob[6:]
        )
        with pytest.raises(SnapshotFormatError, match="not supported"):
            gcx.restore_session(stale)

    def test_bad_magic_refused(self, blob, gcx):
        with pytest.raises(SnapshotFormatError):
            gcx.restore_session(b"XXXX" + blob[4:])

    @pytest.mark.parametrize("keep", [0, 3, 6, 40])
    def test_truncated_blob_refused(self, blob, gcx, keep):
        with pytest.raises(SnapshotFormatError):
            gcx.restore_session(blob[:keep])

    def test_wrong_plan_refused(self, blob, gcx):
        other = gcx.compile(OTHER_QUERY)
        with pytest.raises(SnapshotPlanMismatch):
            StreamSession.restore(other, blob)

    def test_snapshot_errors_are_value_errors(self, blob, gcx):
        # the server maps ValueError to a QUERY ERROR frame; every
        # refusal must be caught by that net, not crash the worker
        assert issubclass(SnapshotFormatError, ValueError)
        assert issubclass(SnapshotPlanMismatch, ValueError)


# ---------------------------------------------------------------------------
# cross-process restore: the blob is the whole truth
# ---------------------------------------------------------------------------


_RESTORE_SCRIPT = """\
import sys

from repro.core.engine import GCXEngine

blob_path, data_path, offset = sys.argv[1], sys.argv[2], int(sys.argv[3])
with open(blob_path, "rb") as fh:
    blob = fh.read()
with open(data_path, "rb") as fh:
    data = fh.read()
engine = GCXEngine()
session = engine.restore_session(blob)
assert session.bytes_fed == offset, (session.bytes_fed, offset)
for i in range(offset, len(data), 4096):
    session.feed(data[i : i + 4096])
result = session.finish()
sys.stdout.write(result.output)
"""


def test_restore_in_fresh_process(gcx, doc, reference, tmp_path):
    data = doc.encode()
    split = len(data) // 2
    session = gcx.session(QUERY, checkpointable=True)
    _feed_range(session, data, 0, split)
    blob = session.snapshot()
    session.abort()

    blob_path = tmp_path / "session.gcxs"
    data_path = tmp_path / "doc.xml"
    script_path = tmp_path / "restore_child.py"
    blob_path.write_bytes(blob)
    data_path.write_bytes(data)
    script_path.write_text(_RESTORE_SCRIPT)

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(script_path), str(blob_path), str(data_path), str(split)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout == reference.output
