"""Tests for the evaluator's blocking pull protocol and its laziness.

The paper's pipeline reads input strictly on demand.  These tests pin
*how much* of the stream each operation consumes, using the token
counter as the observable.
"""

from repro.core.buffer import Buffer
from repro.core.engine import GCXEngine
from repro.core.evaluator import PullEvaluator
from repro.core.matcher import PathMatcher
from repro.core.projector import StreamProjector
from repro.core.stats import BufferStats
from repro.xmlio.lexer import make_lexer
from repro.xmlio.writer import XmlWriter
from repro.xquery.normalize import normalize_query
from repro.xquery.parser import parse_query
from repro.core.analysis import analyze_query
from repro.core.signoff import insert_signoffs


def make_pipeline(query_text, xml):
    """Wire a full pipeline manually, exposing all components."""
    normalized = normalize_query(parse_query(query_text))
    analysis = analyze_query(normalized)
    rewritten = insert_signoffs(normalized, analysis)
    stats = BufferStats()
    buffer = Buffer(stats)
    matcher = PathMatcher([(r.name, r.path) for r in analysis.roles])
    projector = StreamProjector(make_lexer(xml), matcher, buffer, stats)
    writer = XmlWriter()
    evaluator = PullEvaluator(rewritten, projector, buffer, writer, True)
    return evaluator, projector, buffer, writer, stats


class TestLazyConsumption:
    """A loop must read its parent's scope to its end tag (it cannot
    know "no more bindings" earlier), so token consumption always spans
    the stream — exactly like the paper's full-width x-axes.  What the
    laziness bounds is what gets *buffered*."""

    def test_first_only_loop_buffers_only_the_witness(self):
        xml = "<r>" + "<e>x</e>" * 100 + "</r>"
        evaluator, projector, buffer, writer, stats = make_pipeline(
            "for $e in /r/e[1] return $e", xml
        )
        evaluator.run()
        assert writer.getvalue() == "<e>x</e>"
        # the matcher exhausted the [1] state after the first <e>: the
        # other 99 never entered the buffer
        assert stats.nodes_buffered <= 4  # r, e, its text (+ lookahead)

    def test_exists_stops_at_first_witness(self):
        # price is the first child: exists must not read the siblings
        xml = "<r><e><price>1</price>" + "<pad>y</pad>" * 50 + "</e></r>"
        evaluator, projector, buffer, writer, stats = make_pipeline(
            "for $e in /r/e return if (exists $e/price) then \"y\" else \"n\"",
            xml,
        )
        # manually evaluate only up to the condition: run the whole
        # query but snapshot token consumption right after output
        evaluator.run()
        assert writer.getvalue() == "y"
        # the signOff at the loop end forces reading $e to its close,
        # but that is demanded by the preemption discipline; verify the
        # witness itself was found long before end-of-stream by the
        # buffer never holding the pads (they match no projection path)
        assert all(
            node.tag != "pad" for node in buffer.iter_live()
        )

    def test_loop_reads_parent_scope_to_its_end(self):
        xml = "<r><want>1</want><later>2</later><later>3</later></r>"
        evaluator, projector, buffer, writer, stats = make_pipeline(
            "for $w in /r/want return $w", xml
        )
        evaluator.run()
        # the <want> loop needed to learn that no further <want>
        # arrives: the whole document was consumed, but the <later>
        # elements were never buffered
        assert stats.tokens == 11  # the full document
        assert all(n.tag != "later" for n in buffer.iter_live())

    def test_engine_drain_flag_controls_tail_reading(self):
        # a query without loops consumes nothing by itself; the drain
        # flag decides whether the engine still reads the stream for
        # the buffer-profile statistics
        xml = "<r>" + "<later>x</later>" * 50 + "</r>"
        lazy = GCXEngine(drain=False).query('"hello"', xml)
        eager = GCXEngine(drain=True).query('"hello"', xml)
        assert lazy.output == eager.output == "hello"
        assert lazy.stats.tokens == 0
        assert eager.stats.tokens > 0


class TestBlockingPrimitives:
    def test_next_child_pulls_until_match(self):
        evaluator, projector, buffer, writer, stats = make_pipeline(
            "for $b in /r/b return $b", "<r><a>1</a><a>2</a><b>3</b></r>"
        )
        root = buffer.root
        child = evaluator._next_child(
            root, 0, lambda n: n.is_element and n.tag == "r"
        )
        assert child.tag == "r"
        b = evaluator._next_child(
            child, 0, lambda n: n.is_element and n.tag == "b"
        )
        assert b.tag == "b"

    def test_next_child_returns_none_when_closed(self):
        evaluator, projector, buffer, writer, stats = make_pipeline(
            "for $b in /r/b return $b", "<r><a>1</a></r>"
        )
        root = buffer.root
        r = evaluator._next_child(root, 0, lambda n: n.is_element)
        missing = evaluator._next_child(
            r, 0, lambda n: n.is_element and n.tag == "zzz"
        )
        assert missing is None
        assert r.closed

    def test_ensure_closed_reads_to_end_tag(self):
        evaluator, projector, buffer, writer, stats = make_pipeline(
            "for $r in /r return $r", "<r><x>1</x><y>2</y></r>"
        )
        root = buffer.root
        r = evaluator._next_child(root, 0, lambda n: n.is_element)
        assert not r.closed
        evaluator._ensure_closed(r)
        assert r.closed


class TestSkippedRegionsDuringEvaluation:
    def test_unprojected_siblings_never_buffered(self):
        xml = (
            "<site>"
            "<junk><deep><deeper>z</deeper></deep></junk>"
            "<want><v>1</v></want>"
            "<junk2><x>y</x></junk2>"
            "</site>"
        )
        result = GCXEngine().query("for $w in /site/want return $w", xml)
        assert result.output == "<want><v>1</v></want>"
        assert result.stats.subtrees_skipped == 2
        # junk subtrees contribute tokens but never nodes
        assert result.stats.nodes_buffered <= 4
