"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.baselines import FluxLikeEngine, FullDomEngine, ProjectionOnlyEngine
from repro.core.engine import GCXEngine
from repro.datasets.bib import (
    BIB_QUERY,
    figure3b_document,
    figure3c_document,
)
from repro.xmark.generator import XMARK_DTD, generate_document
from repro.xmlio.dtd import parse_dtd


@pytest.fixture
def gcx():
    return GCXEngine()


@pytest.fixture
def dom_engine():
    return FullDomEngine()


@pytest.fixture
def projection_engine():
    return ProjectionOnlyEngine()


@pytest.fixture
def flux_engine():
    return FluxLikeEngine(dtd=parse_dtd(XMARK_DTD))


@pytest.fixture
def bib_query():
    return BIB_QUERY


@pytest.fixture
def fig3b_doc():
    return figure3b_document()


@pytest.fixture
def fig3c_doc():
    return figure3c_document()


@pytest.fixture(scope="session")
def xmark_small():
    """A small deterministic XMark document shared across tests."""
    return generate_document(scale=0.5, seed=7)


@pytest.fixture(scope="session")
def xmark_medium():
    """A medium deterministic XMark document shared across tests."""
    return generate_document(scale=2.0, seed=42)
