"""Chunk-boundary robustness of the compile-once / stream-many layer.

The acceptance bar for the session architecture: a StreamSession must
produce **byte-identical output** (and identical buffer behaviour —
watermark and per-token series) to a one-shot ``GCXEngine.run`` for any
chunking of the input, down to one-character chunks and every possible
split offset; and compiling a query once then streaming N documents
must run static analysis exactly once (observable through the plan
cache counters).
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings, strategies as st

import repro.core.engine as engine_module
from repro.baselines import FluxLikeEngine, ProjectionOnlyEngine
from repro.core.engine import GCXEngine
from repro.core.plan import PlanCache
from repro.core.session import SessionStateError
from repro.datasets.bib import BIB_QUERY, figure3c_document
from repro.xmark.generator import XMARK_DTD
from repro.xmark.queries import ADAPTED_QUERIES
from repro.xmlio.dtd import parse_dtd
from repro.xmlio.errors import XmlSyntaxError
from repro.xmlio.lexer import tokenize

# A compact document exercising every construct the lexer must carry
# across chunk boundaries: DOCTYPE with internal subset, attributes
# with entities, comments, CDATA, character references, self-closing
# tags, and multi-byte text runs.
TRICKY_XML = (
    '<!DOCTYPE a [<!ELEMENT a (b)>]>'
    '<a x="1&amp;2"><!-- note --><b><![CDATA[<raw> &amp;]]></b>'
    "t&#65;il<c k='v'/></a>"
)
TRICKY_QUERY = "<out>{ for $b in /a/b return $b }</out>"


def chunked(text: str, size: int) -> list[str]:
    return [text[start : start + size] for start in range(0, len(text), size)]


def run_session(engine: GCXEngine, plan, chunks) -> "engine_module.RunResult":
    session = engine.session(plan)
    for chunk in chunks:
        session.feed(chunk)
    return session.finish()


class TestEveryOffsetSplit:
    """Splitting the document at *every* byte offset changes nothing."""

    @pytest.mark.parametrize(
        "query,xml",
        [
            (TRICKY_QUERY, TRICKY_XML),
            ("for $b in /a/b return $b", "<a><b>1</b><x>junk</x><b>2</b></a>"),
        ],
    )
    def test_two_way_splits_identical(self, query, xml):
        engine = GCXEngine()
        plan = engine.compile(query)
        baseline = engine.run(plan, xml)
        for offset in range(len(xml) + 1):
            result = run_session(engine, plan, [xml[:offset], xml[offset:]])
            assert result.output == baseline.output, offset
            assert result.stats.watermark == baseline.stats.watermark, offset
            assert result.stats.series == baseline.stats.series, offset
            assert result.stats.tokens == baseline.stats.tokens, offset

    def test_bib_document_every_offset(self):
        engine = GCXEngine(record_series=False)
        plan = engine.compile(BIB_QUERY)
        xml = figure3c_document()
        baseline = engine.run(plan, xml)
        for offset in range(0, len(xml) + 1, 7):  # every 7th byte: ~90 splits
            result = run_session(engine, plan, [xml[:offset], xml[offset:]])
            assert result.output == baseline.output, offset
            assert result.stats.watermark == baseline.stats.watermark, offset

    def test_one_character_chunks(self):
        engine = GCXEngine()
        plan = engine.compile(TRICKY_QUERY)
        baseline = engine.run(plan, TRICKY_XML)
        result = run_session(engine, plan, chunked(TRICKY_XML, 1))
        assert result.output == baseline.output
        assert result.stats.series == baseline.stats.series


class TestAdaptedQueriesChunked:
    """All tier-1 XMark queries: session ≡ pull at several chunk sizes."""

    @pytest.mark.parametrize("key", sorted(ADAPTED_QUERIES))
    @pytest.mark.parametrize("size", [17, 1024])
    def test_byte_identical(self, key, size, xmark_small):
        engine = GCXEngine(record_series=False)
        plan = engine.compile(ADAPTED_QUERIES[key].text)
        baseline = engine.run(plan, xmark_small)
        result = run_session(engine, plan, chunked(xmark_small, size))
        assert result.output == baseline.output
        assert result.stats.watermark == baseline.stats.watermark
        assert result.stats.tokens == baseline.stats.tokens

    @pytest.mark.parametrize(
        "make_engine",
        [
            lambda: ProjectionOnlyEngine(record_series=False),
            lambda: FluxLikeEngine(
                dtd=parse_dtd(XMARK_DTD), record_series=False
            ),
        ],
        ids=["projection-only", "flux-like"],
    )
    def test_baseline_engines_stream_too(self, make_engine, xmark_small):
        engine = make_engine()
        plan = engine.compile(ADAPTED_QUERIES["q1"].text)
        baseline = engine.run(plan, xmark_small)
        result = run_session(engine, plan, chunked(xmark_small, 512))
        assert result.output == baseline.output
        assert result.stats.watermark == baseline.stats.watermark


# ---------------------------------------------------------------------------
# hypothesis: random documents, random partitions
# ---------------------------------------------------------------------------

_TAGS = ("a", "b", "c", "d")


@st.composite
def xml_trees(draw, max_depth=4):
    """A random XML document string over a small tag alphabet."""

    def node(depth):
        tag = draw(st.sampled_from(_TAGS))
        attrs = ""
        if draw(st.booleans()):
            attrs = f' k="v{draw(st.integers(0, 3))}"'
        if depth >= max_depth or draw(st.integers(0, 2)) == 0:
            if draw(st.booleans()):
                text = draw(st.sampled_from(("x", "y&amp;z", "1")))
                return f"<{tag}{attrs}>{text}</{tag}>"
            return f"<{tag}{attrs}/>"
        children = "".join(
            node(depth + 1) for _ in range(draw(st.integers(0, 3)))
        )
        return f"<{tag}{attrs}>{children}</{tag}>"

    return f"<r>{node(1)}{node(1)}</r>"


@st.composite
def partitioned(draw):
    """A document plus a random partition of it into chunks."""
    xml = draw(xml_trees())
    cuts = sorted(draw(st.lists(st.integers(0, len(xml)), max_size=8)))
    bounds = [0, *cuts, len(xml)]
    return xml, [xml[a:b] for a, b in zip(bounds, bounds[1:])]


@given(partitioned())
@settings(max_examples=60, deadline=None)
def test_chunked_token_stream_equals_whole(case):
    xml, chunks = case
    assert list(tokenize(iter(chunks))) == list(tokenize(xml))


@given(partitioned())
@settings(max_examples=25, deadline=None)
def test_session_equals_pull_on_random_partitions(case):
    xml, chunks = case
    engine = GCXEngine()
    plan = engine.compile("<out>{ for $x in /r/b return $x }</out>")
    baseline = engine.run(plan, xml)
    result = run_session(engine, plan, chunks)
    assert result.output == baseline.output
    assert result.stats.watermark == baseline.stats.watermark
    assert result.stats.series == baseline.stats.series


# ---------------------------------------------------------------------------
# the compile-once guarantee
# ---------------------------------------------------------------------------


class TestPlanCache:
    def test_static_analysis_runs_exactly_once(self, monkeypatch):
        calls = []
        real = engine_module.analyze_query

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(engine_module, "analyze_query", counting)
        engine = GCXEngine()
        documents = [f"<a><b>{i}</b></a>" for i in range(5)]
        outputs = [
            engine.query("for $b in /a/b return $b", doc).output
            for doc in documents
        ]
        assert outputs == [f"<b>{i}</b>" for i in range(5)]
        assert len(calls) == 1
        stats = engine.plan_cache.stats
        assert stats.misses == 1
        assert stats.hits == len(documents) - 1

    def test_sessions_share_one_plan(self):
        engine = GCXEngine()
        plan = engine.compile(TRICKY_QUERY)
        sessions = [engine.session(plan) for _ in range(4)]
        results = [
            session.feed(TRICKY_XML).finish() for session in sessions
        ]
        assert len({id(result.compiled) for result in results}) == 1
        assert engine.plan_cache.stats.misses == 1

    def test_whitespace_variants_share_plan(self):
        engine = GCXEngine()
        first = engine.compile("for $b in /a/b return $b")
        second = engine.compile("for  $b  in\n  /a/b\n  return  $b")
        assert second is first
        stats = engine.plan_cache.stats
        assert stats.canonical_reuses == 1
        assert stats.misses == 1  # static analysis still ran only once

    def test_string_literal_whitespace_not_conflated(self):
        # Whitespace inside string literals is significant: these two
        # queries must compile to *different* plans, not share a cache
        # entry through a whitespace-mangled key.
        engine = GCXEngine()
        doc = "<a><b>1</b></a>"
        spaced = engine.query('<out>{ "x  y" }</out>', doc).output
        single = engine.query('<out>{ "x y" }</out>', doc).output
        assert spaced == "<out>x  y</out>"
        assert single == "<out>x y</out>"
        assert engine.plan_cache.stats.misses == 2

    def test_first_witness_engines_do_not_share_plans(self):
        cache = PlanCache()
        with_witness = GCXEngine(plan_cache=cache)
        without = GCXEngine(first_witness=False, plan_cache=cache)
        query = 'for $b in /a/b return if (exists $b/p) then "y" else ()'
        plan_a = with_witness.compile(query)
        plan_b = without.compile(query)
        assert plan_a is not plan_b
        assert cache.stats.misses == 2

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        engine = GCXEngine(plan_cache=cache)
        queries = [f"for $b in /a/b{i} return $b" for i in range(3)]
        for query in queries:
            engine.compile(query)
        assert len(cache) == 2
        engine.compile(queries[0])  # evicted: recompiles
        assert cache.stats.misses == 4

    def test_clear_resets_counters(self):
        engine = GCXEngine()
        engine.compile(TRICKY_QUERY)
        engine.compile(TRICKY_QUERY)
        engine.plan_cache.clear()
        stats = engine.plan_cache.stats
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)


# ---------------------------------------------------------------------------
# session lifecycle
# ---------------------------------------------------------------------------


class TestSessionLifecycle:
    def test_finish_is_idempotent(self):
        engine = GCXEngine()
        session = engine.session(TRICKY_QUERY)
        session.feed(TRICKY_XML)
        first = session.finish()
        assert session.finish() is first

    def test_feed_after_finish_rejected(self):
        engine = GCXEngine()
        session = engine.session(TRICKY_QUERY)
        session.feed(TRICKY_XML)
        session.finish()
        with pytest.raises(SessionStateError):
            session.feed("<more/>")

    def test_malformed_input_surfaces_on_feed_or_finish(self):
        engine = GCXEngine()
        session = engine.session("for $b in /a/b return $b")
        with pytest.raises(XmlSyntaxError, match="mismatched end tag"):
            session.feed("<a><b></c>")
            session.finish()

    def test_error_is_sticky(self):
        engine = GCXEngine()
        session = engine.session("for $b in /a/b return $b")
        with pytest.raises(XmlSyntaxError):
            session.feed("<a><b></c>")
            session.finish()
        with pytest.raises(XmlSyntaxError):
            session.finish()

    def test_truncated_input_fails_at_finish(self):
        engine = GCXEngine()
        session = engine.session("for $b in /a/b return $b")
        session.feed("<a><b>")
        with pytest.raises(XmlSyntaxError, match="unclosed element"):
            session.finish()

    def test_context_manager_finishes(self):
        engine = GCXEngine()
        with engine.session(TRICKY_QUERY) as session:
            session.feed(TRICKY_XML)
        assert session.finished
        assert session.finish().output.startswith("<out>")

    def test_abort_releases_session(self):
        engine = GCXEngine()
        session = engine.session(TRICKY_QUERY)
        session.feed("<a>")
        session.abort()
        assert not session.finished

    def test_incremental_output_stream(self):
        engine = GCXEngine()
        sink = io.StringIO()
        session = engine.session(TRICKY_QUERY, output_stream=sink)
        for chunk in chunked(TRICKY_XML, 5):
            session.feed(chunk)
        result = session.finish()
        assert result.output == ""
        assert sink.getvalue() == engine.query(TRICKY_QUERY, TRICKY_XML).output

    def test_bytes_fed_counter(self):
        engine = GCXEngine()
        session = engine.session(TRICKY_QUERY)
        for chunk in chunked(TRICKY_XML, 10):
            session.feed(chunk)
        assert session.bytes_fed == len(TRICKY_XML)
        session.finish()

    def test_backpressure_bound_still_correct(self):
        engine = GCXEngine()
        plan = engine.compile(TRICKY_QUERY)
        session = engine.session(plan, max_pending_chunks=1)
        for chunk in chunked(TRICKY_XML, 3):
            session.feed(chunk)
        assert session.finish().output == engine.run(plan, TRICKY_XML).output


class TestChunkedPullSources:
    """engine.run itself accepts file-likes and chunk iterables."""

    def test_run_accepts_chunk_iterable(self):
        engine = GCXEngine()
        plan = engine.compile(TRICKY_QUERY)
        baseline = engine.run(plan, TRICKY_XML)
        result = engine.run(plan, iter(chunked(TRICKY_XML, 4)))
        assert result.output == baseline.output
        assert result.stats.series == baseline.stats.series

    def test_run_reads_file_like_in_chunks(self):
        engine = GCXEngine()
        plan = engine.compile(TRICKY_QUERY)
        baseline = engine.run(plan, TRICKY_XML)

        reads = []

        class Tracking(io.StringIO):
            def read(self, size=-1):
                reads.append(size)
                return super().read(size)

        result = engine.run(plan, Tracking(TRICKY_XML), chunk_size=16)
        assert result.output == baseline.output
        assert all(size == 16 for size in reads)
        assert len(reads) > 1


# ---------------------------------------------------------------------------
# incremental result emission (DESIGN.md §10)
# ---------------------------------------------------------------------------


class TestIncrementalEmission:
    """Results must stream out while input is still being fed."""

    def _doc(self, items: int = 40) -> str:
        body = "".join(f"<b>item{i}</b>" for i in range(items))
        return f"<a>{body}</a>"

    def test_first_output_before_final_chunk(self):
        """A slow-feed session yields output before its input ends."""
        engine = GCXEngine()
        doc = self._doc()
        chunks = chunked(doc, 64)
        session = engine.session("for $b in /a/b return $b")
        early = ""
        fed_when_first_output = None
        for index, chunk in enumerate(chunks):
            session.feed(chunk)
            if not early:
                # next_output waits for evaluation to catch up with
                # the fed input (bounded, so this cannot hang long)
                got = session.next_output(timeout=5.0)
                if got:
                    early = got
                    fed_when_first_output = index
        assert early, "no output before the final chunk was fed"
        assert fed_when_first_output < len(chunks) - 1
        result = session.finish()
        expected = engine.query("for $b in /a/b return $b", doc).output
        assert early + result.output == expected

    def test_drain_output_is_cumulative_and_exact(self):
        engine = GCXEngine()
        doc = self._doc()
        session = engine.session("for $b in /a/b return $b")
        drained = []
        for chunk in chunked(doc, 48):
            session.feed(chunk)
            drained.append(session.drain_output())
        result = session.finish()
        expected = engine.query("for $b in /a/b return $b", doc).output
        assert "".join(drained) + result.output == expected
        assert any(drained), "nothing streamed before finish()"

    def test_on_output_callback_delivery(self):
        engine = GCXEngine()
        doc = self._doc()
        parts: list[str] = []
        session = engine.session(
            "for $b in /a/b return $b", on_output=parts.append
        )
        for chunk in chunked(doc, 64):
            session.feed(chunk)
        result = session.finish()
        # callback consumed everything; finish() returns the rest: none
        assert result.output == ""
        expected = engine.query("for $b in /a/b return $b", doc).output
        assert "".join(parts) == expected

    def test_bounded_output_backpressure_still_correct(self):
        """A tiny output bound pauses evaluation until drained, without
        changing the produced bytes.  A bounded channel needs a
        concurrent consumer (the server's RESULT-pump pattern): the
        worker pauses on the bound, which backs the input channel up,
        which would block ``feed()`` forever without the pump."""
        import threading

        engine = GCXEngine()
        doc = self._doc()
        session = engine.session(
            "for $b in /a/b return $b", max_pending_output=16
        )
        collected: list[str] = []

        def pump():
            while True:
                got = session.next_output(max_chars=16)
                if got is None:
                    return
                collected.append(got)

        pumper = threading.Thread(target=pump)
        pumper.start()
        for chunk in chunked(doc, 32):
            session.feed(chunk)
        result = session.finish()
        pumper.join(timeout=10)
        assert not pumper.is_alive()
        expected = engine.query("for $b in /a/b return $b", doc).output
        assert "".join(collected) + result.output == expected
        assert len(collected) > 1  # genuinely incremental, bounded parts

    def test_next_output_signals_end_with_none(self):
        engine = GCXEngine()
        session = engine.session(TRICKY_QUERY)
        session.feed(TRICKY_XML)
        result = session.finish()
        assert result.output  # undrained output still lands in finish()
        assert session.next_output(timeout=1.0) is None

    def test_time_to_first_output_recorded(self):
        engine = GCXEngine()
        doc = self._doc()
        session = engine.session("for $b in /a/b return $b")
        assert session.time_to_first_output is None or (
            session.time_to_first_output >= 0.0
        )
        for chunk in chunked(doc, 64):
            session.feed(chunk)
        session.next_output(timeout=5.0)
        session.finish()
        assert session.time_to_first_output is not None
        assert session.time_to_first_output >= 0.0

    def test_vm_and_interpreter_stream_identically(self):
        doc = self._doc()
        outputs = {}
        for compiled_eval in (True, False):
            engine = GCXEngine(compiled_eval=compiled_eval)
            session = engine.session("for $b in /a/b return $b")
            parts = []
            for chunk in chunked(doc, 48):
                session.feed(chunk)
                parts.append(session.drain_output())
            parts.append(session.finish().output)
            outputs[compiled_eval] = "".join(parts)
        assert outputs[True] == outputs[False]
