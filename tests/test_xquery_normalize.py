"""Unit tests for query normalization (lowering to GCX core form)."""

import pytest

from repro.xquery import ast as q
from repro.xquery.normalize import NormalizationError, normalize_query
from repro.xquery.parser import parse_query


def norm(text):
    return normalize_query(parse_query(text))


def loops(expr):
    """Collect (var, source) pairs of the for-loop spine."""
    found = []

    def walk(e):
        if isinstance(e, q.ForExpr):
            found.append((e.var, str(e.source)))
            walk(e.body)
        elif isinstance(e, q.Sequence):
            for item in e.items:
                walk(item)
        elif isinstance(e, q.IfExpr):
            walk(e.then)
            walk(e.orelse)
        elif isinstance(e, q.ElementConstructor):
            walk(e.body)

    walk(expr)
    return found


class TestSingleStepLowering:
    def test_single_step_source_unchanged(self):
        query = norm("for $x in /a return $x")
        assert loops(query.body) == [("x", "/a")]

    def test_multi_step_absolute_source_split(self):
        query = norm("for $p in /site/people/person return $p")
        chain = loops(query.body)
        assert len(chain) == 3
        assert chain[0][1] == "/site"
        assert chain[-1][0] == "p"
        # intermediate loops bind fresh variables chained together
        assert chain[1][1] == f"${chain[0][0]}/people"
        assert chain[2][1] == f"${chain[1][0]}/person"

    def test_multi_step_relative_source_split(self):
        query = norm("for $s in /site return for $p in $s/people/person return $p")
        chain = loops(query.body)
        assert len(chain) == 3
        assert chain[1][1] == "$s/people"

    def test_descendant_step_stays_single(self):
        query = norm("for $i in /site/descendant::item return $i")
        chain = loops(query.body)
        assert len(chain) == 2
        assert "descendant::item" in chain[1][1]

    def test_where_clause_becomes_if(self):
        query = norm('for $x in /a where $x/b = "1" return $x')
        body = query.body.body
        assert isinstance(body, q.IfExpr)
        assert isinstance(body.condition, q.Comparison)
        assert isinstance(body.orelse, q.Empty)


class TestVariableHygiene:
    def test_shadowing_renamed(self):
        query = norm("for $x in /a return for $x in $x/b return $x")
        chain = loops(query.body)
        assert chain[0][0] != chain[1][0]
        # inner body references the renamed inner variable
        inner_body = query.body.body.body
        assert inner_body.var == chain[1][0]

    def test_sibling_reuse_renamed_apart(self):
        query = norm("(for $p in /a return $p, for $p in /b return $p)")
        chain = loops(query.body)
        assert chain[0][0] != chain[1][0]

    def test_all_binders_unique(self):
        query = norm(
            "(for $p in /site/people/person return $p,"
            " for $p in /site/people/person return $p/name)"
        )
        names = [var for var, _ in loops(query.body)]
        assert len(names) == len(set(names))

    def test_unbound_variable_rejected(self):
        with pytest.raises(NormalizationError, match="unbound variable"):
            norm("for $x in /a return $y")

    def test_unbound_in_condition_rejected(self):
        with pytest.raises(NormalizationError, match="unbound variable"):
            norm("for $x in /a return if (exists $y/b) then $x else ()")

    def test_unbound_for_source_rejected(self):
        with pytest.raises(NormalizationError, match="unbound variable"):
            norm("for $x in $y/a return $x")


class TestRestrictions:
    def test_attribute_iteration_rejected(self):
        with pytest.raises(NormalizationError, match="attributes"):
            norm("for $x in /a/@id return $x")

    def test_bare_variable_source_rejected(self):
        with pytest.raises(NormalizationError, match="non-empty path"):
            norm("for $x in /a return for $y in $x return $y")

    def test_relative_path_without_variable_rejected(self):
        # constructed directly: the parser cannot produce this shape
        bad = q.Query(q.PathExpr(None, parse_query("for $x in /a return $x/b").body.body.path))
        with pytest.raises(NormalizationError, match="without a variable"):
            normalize_query(bad)


class TestStructurePreserved:
    def test_conditions_rewritten_with_scope(self):
        query = norm(
            "for $x in /a return if (exists $x/b and not($x/c = 1)) then $x else ()"
        )
        cond = query.body.body.condition
        assert isinstance(cond, q.And)

    def test_constructor_attributes_kept(self):
        query = norm('<r kind="demo">{ () }</r>')
        assert query.body.attributes == (("kind", "demo"),)

    def test_text_literals_kept(self):
        query = norm('("a", "b")')
        assert query.body.items == (q.TextLiteral("a"), q.TextLiteral("b"))

    def test_normalization_idempotent(self):
        once = norm("for $p in /site/people/person return $p")
        twice = normalize_query(once)
        assert loops(once.body) == loops(twice.body)
