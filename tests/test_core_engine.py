"""End-to-end tests of the GCX engine: evaluation semantics."""

import pytest

from repro.core.engine import GCXEngine


@pytest.fixture
def engine():
    return GCXEngine()


class TestBasicEvaluation:
    def test_identity_copy(self, engine):
        xml = "<a><b>x</b><c></c></a>"
        out = engine.evaluate("for $r in /a return $r", xml)
        assert out == xml

    def test_child_selection(self, engine):
        out = engine.evaluate(
            "for $b in /a/b return $b", "<a><b>1</b><c>skip</c><b>2</b></a>"
        )
        assert out == "<b>1</b><b>2</b>"

    def test_constructor_wrapping(self, engine):
        out = engine.evaluate(
            "<list>{ for $b in /a/b return <item>{ $b }</item> }</list>",
            "<a><b>1</b><b>2</b></a>",
        )
        assert out == "<list><item><b>1</b></item><item><b>2</b></item></list>"

    def test_constructor_with_attributes(self, engine):
        out = engine.evaluate('<r kind="x">{ () }</r>', "<a></a>")
        assert out == '<r kind="x"></r>'

    def test_sequence_order(self, engine):
        out = engine.evaluate('("first", for $b in /a/b return $b, "last")',
                              "<a><b></b></a>")
        assert out == "first<b></b>last"

    def test_text_output(self, engine):
        out = engine.evaluate(
            "for $b in /a/b return $b/text()", "<a><b>hello</b><b>world</b></a>"
        )
        assert out == "helloworld"

    def test_nested_loops(self, engine):
        out = engine.evaluate(
            "for $b in /a/b return for $c in $b/c return $c",
            "<a><b><c>1</c><c>2</c></b><b><c>3</c></b></a>",
        )
        assert out == "<c>1</c><c>2</c><c>3</c>"

    def test_multi_step_for_source(self, engine):
        out = engine.evaluate(
            "for $c in /a/b/c return $c", "<a><b><c>x</c></b><b><c>y</c></b></a>"
        )
        assert out == "<c>x</c><c>y</c>"

    def test_wildcard_iteration(self, engine):
        out = engine.evaluate("for $x in /a/* return $x", "<a><p>1</p><q>2</q></a>")
        assert out == "<p>1</p><q>2</q>"

    def test_empty_result(self, engine):
        assert engine.evaluate("for $x in /a/zzz return $x", "<a><b></b></a>") == ""

    def test_output_preserves_attributes(self, engine):
        out = engine.evaluate(
            "for $b in /a/b return $b", '<a><b id="1" x="y">t</b></a>'
        )
        assert out == '<b id="1" x="y">t</b>'

    def test_output_escapes_text(self, engine):
        out = engine.evaluate(
            "for $b in /a/b return $b/text()", "<a><b>&lt;raw&gt;</b></a>"
        )
        assert out == "&lt;raw&gt;"


class TestDescendantAxes:
    def test_descendant_iteration(self, engine):
        out = engine.evaluate(
            "for $i in /a/descendant::i return $i",
            "<a><x><i>1</i></x><i>2</i><y><z><i>3</i></z></y></a>",
        )
        assert out == "<i>1</i><i>2</i><i>3</i>"

    def test_double_slash_shorthand(self, engine):
        out = engine.evaluate(
            "for $i in /a//i return $i", "<a><x><i>1</i></x><i>2</i></a>"
        )
        assert out == "<i>1</i><i>2</i>"

    def test_descendant_output_path(self, engine):
        out = engine.evaluate(
            "for $x in /a/x return $x/descendant::i",
            "<a><x><m><i>1</i></m><i>2</i></x></a>",
        )
        assert out == "<i>1</i><i>2</i>"

    def test_descendant_document_order(self, engine):
        out = engine.evaluate(
            "for $i in /a/descendant::i return $i/text()",
            "<a><i>1<i>2</i></i><i>3</i></a>",
        )
        assert out == "123"


class TestConditions:
    DOC = (
        "<bib>"
        "<book><title>priced</title><price>5</price></book>"
        "<book><title>free</title></book>"
        "</bib>"
    )

    def test_exists(self, engine):
        out = engine.evaluate(
            "for $b in /bib/book return "
            "if (exists $b/price) then $b/title/text() else ()",
            self.DOC,
        )
        assert out == "priced"

    def test_not_exists(self, engine):
        out = engine.evaluate(
            "for $b in /bib/book return "
            "if (not(exists $b/price)) then $b/title/text() else ()",
            self.DOC,
        )
        assert out == "free"

    def test_else_branch(self, engine):
        out = engine.evaluate(
            "for $b in /bib/book return "
            'if (exists $b/price) then "P" else "F"',
            self.DOC,
        )
        assert out == "PF"

    def test_and_or(self, engine):
        out = engine.evaluate(
            "for $b in /bib/book return "
            "if (exists $b/price and exists $b/title) then \"both\" else ()",
            self.DOC,
        )
        assert out == "both"
        out = engine.evaluate(
            "for $b in /bib/book return "
            "if (exists $b/price or exists $b/title) then \"any\" else ()",
            self.DOC,
        )
        assert out == "anyany"

    def test_string_comparison(self, engine):
        out = engine.evaluate(
            "for $b in /bib/book return "
            'if ($b/title = "free") then "yes" else "no"',
            self.DOC,
        )
        assert out == "noyes"

    def test_numeric_comparison(self, engine):
        out = engine.evaluate(
            "for $b in /bib/book return "
            "if ($b/price >= 5) then $b/title/text() else ()",
            self.DOC,
        )
        assert out == "priced"

    def test_numeric_comparison_of_numeric_strings(self, engine):
        # "10" > "5" numerically though not lexicographically
        out = engine.evaluate(
            "for $b in /a/b return if ($b/v > 5) then $b/v/text() else ()",
            "<a><b><v>10</v></b><b><v>4</v></b></a>",
        )
        assert out == "10"

    def test_attribute_comparison(self, engine):
        out = engine.evaluate(
            'for $b in /a/b return if ($b/@id = "two") then $b else ()',
            '<a><b id="one">1</b><b id="two">2</b></a>',
        )
        assert out == '<b id="two">2</b>'

    def test_attribute_exists(self, engine):
        out = engine.evaluate(
            "for $b in /a/b return if (exists $b/@id) then $b/text() else ()",
            '<a><b id="x">1</b><b>2</b></a>',
        )
        assert out == "1"

    def test_existential_comparison_multiple_values(self, engine):
        out = engine.evaluate(
            'for $b in /a/b return if ($b/k = "hit") then $b/@n else ()',
            '<a><b n="1"><k>miss</k><k>hit</k></b><b n="2"><k>miss</k></b></a>',
        )
        assert out == "1"

    def test_comparison_empty_operand_is_false(self, engine):
        out = engine.evaluate(
            'for $b in /a/b return if ($b/zzz = "x") then "y" else "n"',
            "<a><b></b></a>",
        )
        assert out == "n"


class TestAttributeOutput:
    def test_attribute_value_output(self, engine):
        out = engine.evaluate(
            "for $b in /a/b return $b/@id", '<a><b id="x1"></b><b id="x2"></b></a>'
        )
        assert out == "x1x2"

    def test_missing_attribute_output_empty(self, engine):
        assert (
            engine.evaluate("for $b in /a/b return $b/@zz", '<a><b id="x"></b></a>')
            == ""
        )


class TestJoin:
    XML = (
        "<db>"
        "<people><p id='1'>Ann</p><p id='2'>Bob</p><p id='3'>Cee</p></people>"
        "<orders>"
        "<o buyer='2'>socks</o><o buyer='1'>hat</o><o buyer='2'>shoe</o>"
        "</orders>"
        "</db>"
    )

    def test_value_join(self, engine):
        out = engine.evaluate(
            """
            for $db in /db return
              for $os in $db/orders return
                for $ps in $db/people return
                  for $p in $ps/p return
                    <row>{ $p/text(),
                      for $o in $os/o return
                        if ($o/@buyer = $p/@id) then <b>{ $o/text() }</b> else ()
                    }</row>
            """,
            self.XML,
        )
        assert out == (
            "<row>Ann<b>hat</b></row>"
            "<row>Bob<b>socks</b><b>shoe</b></row>"
            "<row>Cee</row>"
        )

    def test_join_buffer_is_linear_but_cleared(self, engine):
        result = engine.query(
            """
            for $db in /db return
              for $os in $db/orders return
                for $ps in $db/people return
                  for $p in $ps/p return
                    for $o in $os/o return
                      if ($o/@buyer = $p/@id) then $o else ()
            """,
            self.XML,
        )
        assert result.stats.final_buffered == 0
        assert result.stats.watermark >= 3  # all orders held for the join


class TestStatsInvariants:
    def test_buffer_empty_after_run(self, engine):
        result = engine.query(
            "for $b in /a/b return $b", "<a><b>1</b><c>z</c><b>2</b></a>"
        )
        assert result.stats.final_buffered == 0

    def test_roles_balance_up_to_root(self, engine):
        result = engine.query(
            "for $b in /a/b return $b", "<a><b>1</b><b>2</b></a>"
        )
        # every assigned instance except the root role is removed
        assert result.stats.roles_assigned == result.stats.roles_removed + 1

    def test_purged_equals_buffered_after_run(self, engine):
        result = engine.query("for $b in /a/b return $b", "<a><b>1</b></a>")
        assert result.stats.nodes_purged == result.stats.nodes_buffered

    def test_series_length_equals_tokens(self, engine):
        result = engine.query("for $b in /a/b return $b", "<a><b>1</b></a>")
        assert len(result.stats.series) == result.stats.tokens

    def test_record_series_can_be_disabled(self):
        engine = GCXEngine(record_series=False)
        result = engine.query("for $b in /a/b return $b", "<a><b>1</b></a>")
        assert result.stats.series == []
        assert result.stats.watermark > 0


class TestAblationSwitches:
    def test_gc_disabled_keeps_projection(self):
        gc_on = GCXEngine().query("for $b in /a/b return $b", "<a><b>1</b><b>2</b></a>")
        gc_off = GCXEngine(gc_enabled=False).query(
            "for $b in /a/b return $b", "<a><b>1</b><b>2</b></a>"
        )
        assert gc_on.output == gc_off.output
        assert gc_off.stats.final_buffered > 0
        assert gc_off.stats.watermark >= gc_on.stats.watermark

    def test_first_witness_reduces_buffering(self):
        xml = "<a><b>" + "<p>x</p>" * 20 + "</b></a>"
        query = "for $b in /a/b return if (exists $b/p) then \"y\" else ()"
        with_fw = GCXEngine().query(query, xml)
        without_fw = GCXEngine(first_witness=False).query(query, xml)
        assert with_fw.output == without_fw.output == "y"
        assert with_fw.stats.watermark < without_fw.stats.watermark


class TestCompiledQueryReuse:
    def test_one_compile_many_runs(self, engine):
        compiled = engine.compile("for $b in /a/b return $b")
        out1 = engine.run(compiled, "<a><b>1</b></a>").output
        out2 = engine.run(compiled, "<a><b>2</b><b>3</b></a>").output
        assert out1 == "<b>1</b>"
        assert out2 == "<b>2</b><b>3</b>"

    def test_describe_mentions_roles(self, engine):
        compiled = engine.compile("for $b in /a/b return $b")
        text = compiled.describe()
        assert "roles:" in text
        assert "signOff" in text
