"""Unit tests for the statistics container and the pretty printer."""

from repro.core.stats import BufferStats, DEFAULT_NODE_BYTES
from repro.xquery.normalize import normalize_query
from repro.xquery.parser import parse_query
from repro.xquery.pretty import pretty_print


class TestBufferStats:
    def test_record_token_tracks_watermark(self):
        stats = BufferStats()
        for count in (1, 5, 3, 7, 2):
            stats.record_token(count)
        assert stats.tokens == 5
        assert stats.watermark == 7
        assert stats.series == [1, 5, 3, 7, 2]

    def test_series_disabled(self):
        stats = BufferStats(record_series=False)
        stats.record_token(9)
        assert stats.series == []
        assert stats.watermark == 9
        assert stats.tokens == 1

    def test_estimated_bytes(self):
        stats = BufferStats()
        stats.record_token(100)
        assert stats.estimated_buffer_bytes() == 100 * DEFAULT_NODE_BYTES
        assert stats.estimated_buffer_bytes(node_bytes=10) == 1000

    def test_summary_mentions_key_counters(self):
        stats = BufferStats()
        stats.record_token(4)
        stats.nodes_buffered = 9
        summary = stats.summary()
        assert "watermark=4" in summary
        assert "buffered=9" in summary


class TestPrettyPrinter:
    def test_for_loop_indentation(self):
        query = parse_query("for $x in /a return for $y in $x/b return $y")
        text = pretty_print(query)
        lines = text.splitlines()
        assert lines[0] == "for $x in /a return"
        assert lines[1].startswith("  for $y in")
        assert lines[2].startswith("    $y")

    def test_if_else_structure(self):
        query = parse_query("if (exists /a) then <y/> else ()")
        text = pretty_print(query)
        assert "if (exists /a) then" in text
        assert "else" in text

    def test_sequence_parenthesised(self):
        query = parse_query('("a", "b")')
        text = pretty_print(query)
        assert text.startswith("(")
        assert text.rstrip().endswith(")")

    def test_constructor_with_empty_body_self_closes(self):
        query = parse_query("<r/>")
        assert pretty_print(query) == "<r/>"

    def test_let_clause_rendered(self):
        query = parse_query("let $n := count(/a/b) return $n")
        text = pretty_print(query)
        assert text.splitlines()[0] == "let $n := count(/a/b) return"

    def test_signoffs_visible_in_rewritten_query(self):
        from repro.core.analysis import analyze_query
        from repro.core.signoff import insert_signoffs

        normalized = normalize_query(parse_query("for $x in /a/b return $x"))
        rewritten = insert_signoffs(normalized, analyze_query(normalized))
        text = pretty_print(rewritten)
        assert "signOff($x, r3)" in text
        assert "signOff($x/descendant-or-self::node(), r4)" in text
