"""Differential tests: the streaming GCX engine against the DOM oracle.

The two engines share no runtime code (different tree representation,
different path evaluation, different control flow), so agreement over a
battery of queries × randomized documents is strong evidence that the
streaming evaluation with active garbage collection does not corrupt
results — the paper's "these commands must not be issued too early, as
this could corrupt the query result".
"""

import random

import pytest

from repro.baselines import FullDomEngine, ProjectionOnlyEngine
from repro.core.engine import GCXEngine

QUERIES = [
    "for $x in /r/a return $x",
    "for $x in /r/* return $x",
    "for $x in /r/a return $x/b",
    "for $x in /r/a/b return $x/text()",
    "for $x in /r/descendant::b return $x",
    "for $x in /r//b return $x/@k",
    "for $x in /r/a return if (exists $x/b) then $x else ()",
    "for $x in /r/a return if (not(exists $x/b)) then $x else ()",
    'for $x in /r/a return if ($x/@k = "v1") then $x else ()',
    'for $x in /r/a return if ($x/b = "t1") then "hit" else "miss"',
    "for $x in /r/a return if ($x/b/@k != $x/@k) then $x/b else ()",
    "for $x in /r/a return for $y in $x/b return ($y, $y/text())",
    "<out>{ for $x in /r/a return <w>{ $x/b }</w> }</out>",
    "(for $x in /r/a return $x/b[1], for $y in /r/a return $y/@k)",
    "for $x in /r/a return if (exists $x/b and exists $x/c) then $x else ()",
    "for $x in /r/a return if (exists $x/b or exists $x/c) then $x else ()",
    "for $x in /r/a where $x/@k >= \"v1\" return $x/b",
    "for $x in /r/descendant-or-self::a return $x/@k",
    "for $b in /r/a/b return for $x in /r/a return "
    "if ($x/@k = $b/@k) then <m>{ $x/@k }</m> else ()",
    # extension features: aggregation and attribute value templates
    "for $x in /r/a return <n>{ count($x/b) }</n>",
    "<t>{ count(/r/descendant::c) }</t>",
    "for $x in /r/a return if (count($x/b) >= 2) then $x/b else ()",
    'for $x in /r/a return <w n="{count($x/b)}" k="{$x/@k}"/>',
    "for $x in /r/a return if (sum($x/b/@k) = 0) then \"zero\" else \"some\"",
]


def random_document(rng: random.Random) -> str:
    """A small random tree over tags r/a/b/c with text and attributes."""

    def element(depth: int) -> str:
        tag = rng.choice("abc")
        attrs = ""
        if rng.random() < 0.5:
            attrs = f' k="v{rng.randint(1, 3)}"'
        if depth >= 3 or rng.random() < 0.3:
            if rng.random() < 0.5:
                return f"<{tag}{attrs}>t{rng.randint(1, 3)}</{tag}>"
            return f"<{tag}{attrs}></{tag}>"
        children = "".join(
            element(depth + 1) for _ in range(rng.randint(0, 3))
        )
        return f"<{tag}{attrs}>{children}</{tag}>"

    body = "".join(element(1) for _ in range(rng.randint(1, 5)))
    return f"<r>{body}</r>"


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("query", QUERIES)
def test_gcx_matches_dom_oracle(query, seed):
    xml = random_document(random.Random(seed * 1000 + 17))
    gcx = GCXEngine().query(query, xml)
    dom = FullDomEngine().query(query, xml)
    assert gcx.output == dom.output, f"query={query!r}\nxml={xml}"
    # the streaming run must end with an empty buffer on join-free
    # queries whose loops are unconditional — all queries above qualify
    assert gcx.stats.final_buffered == 0


@pytest.mark.parametrize("seed", range(6))
def test_projection_only_matches_oracle(seed):
    xml = random_document(random.Random(seed + 99))
    for query in QUERIES[:8]:
        proj = ProjectionOnlyEngine().query(query, xml)
        dom = FullDomEngine().query(query, xml)
        assert proj.output == dom.output


@pytest.mark.parametrize("seed", range(6))
def test_gc_never_changes_results(seed):
    """Ablation: enabling/disabling GC must be output-invariant."""
    xml = random_document(random.Random(seed + 7))
    for query in QUERIES:
        with_gc = GCXEngine(gc_enabled=True).query(query, xml)
        without_gc = GCXEngine(gc_enabled=False).query(query, xml)
        assert with_gc.output == without_gc.output
        assert with_gc.stats.watermark <= without_gc.stats.watermark


@pytest.mark.parametrize("seed", range(6))
def test_first_witness_never_changes_results(seed):
    xml = random_document(random.Random(seed + 55))
    for query in QUERIES:
        fast = GCXEngine(first_witness=True).query(query, xml)
        slow = GCXEngine(first_witness=False).query(query, xml)
        assert fast.output == slow.output
        assert fast.stats.watermark <= slow.stats.watermark
