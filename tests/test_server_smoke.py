"""CI smoke test: a real server, 8 concurrent clients, XMark Q1.

Deliberately small and self-contained — the CI workflow runs exactly
this module under a hard timeout to prove the service stack (framing,
admission, backpressure, shutdown) works end to end on a fresh
checkout.  Byte-identity against a one-shot ``GCXEngine.run`` is the
acceptance bar: serving must never change a result.
"""

from __future__ import annotations

import threading

from repro.core.engine import GCXEngine
from repro.server.client import GCXClient
from repro.server.service import ServerThread
from repro.xmark.queries import ADAPTED_QUERIES

CLIENTS = 8


def test_eight_concurrent_clients_byte_identical(xmark_small):
    query = ADAPTED_QUERIES["q1"].text
    expected = GCXEngine(record_series=False).query(query, xmark_small).output

    barrier = threading.Barrier(CLIENTS)
    outputs: list[str | None] = [None] * CLIENTS
    errors: list[BaseException] = []

    def drive(index: int, host: str, port: int) -> None:
        try:
            with GCXClient(host, port, chunk_size=8192) as client:
                barrier.wait(timeout=30)
                outputs[index] = client.run_query(query, xmark_small).output
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    with ServerThread(max_sessions=CLIENTS) as handle:
        threads = [
            threading.Thread(target=drive, args=(i, handle.host, handle.port))
            for i in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        snapshot = handle.server.scheduler.snapshot()

    assert not errors
    assert all(output == expected for output in outputs)
    assert snapshot["sessions"]["completed"] == CLIENTS
    assert snapshot["plan_cache"]["misses"] == 1
