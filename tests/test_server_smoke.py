"""CI smoke test: a real server, 8 concurrent clients, XMark Q1 —
plus the shared-stream leg: 8 distinct queries over one multiplexed
publish.

Deliberately small and self-contained — the CI workflow runs exactly
this module under a hard timeout to prove the service stack (framing,
admission, backpressure, shutdown, SUBSCRIBE/PUBLISH fan-out) works
end to end on a fresh checkout.  Byte-identity against a one-shot
``GCXEngine.run`` is the acceptance bar: serving must never change a
result.
"""

from __future__ import annotations

import threading

from repro.core.engine import GCXEngine
from repro.server.client import GCXClient
from repro.server.service import ServerThread
from repro.xmark.queries import ADAPTED_QUERIES, MULTIPLEX_QUERIES

CLIENTS = 8


def test_eight_concurrent_clients_byte_identical(xmark_small):
    query = ADAPTED_QUERIES["q1"].text
    expected = GCXEngine(record_series=False).query(query, xmark_small).output

    barrier = threading.Barrier(CLIENTS)
    outputs: list[str | None] = [None] * CLIENTS
    errors: list[BaseException] = []

    def drive(index: int, host: str, port: int) -> None:
        try:
            with GCXClient(host, port, chunk_size=8192) as client:
                barrier.wait(timeout=30)
                outputs[index] = client.run_query(query, xmark_small).output
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    with ServerThread(max_sessions=CLIENTS) as handle:
        threads = [
            threading.Thread(target=drive, args=(i, handle.host, handle.port))
            for i in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        snapshot = handle.server.scheduler.snapshot()

    assert not errors
    assert all(output == expected for output in outputs)
    assert snapshot["sessions"]["completed"] == CLIENTS
    assert snapshot["plan_cache"]["misses"] == 1


def test_eight_queries_one_shared_stream_byte_identical(xmark_small):
    """Shared-stream leg: 8 subscriber connections, 8 *distinct*
    queries, one published document — one lex+project pass serves them
    all, and every output matches its independent engine run."""
    engine = GCXEngine(record_series=False)
    expected = [engine.query(q, xmark_small).output for q in MULTIPLEX_QUERIES]

    outcomes: list = [None] * CLIENTS
    errors: list[BaseException] = []

    def collect(index: int, client: GCXClient) -> None:
        try:
            outcomes[index] = client.collect()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    with ServerThread(max_sessions=CLIENTS, max_streams=2) as handle:
        subscribers = [
            GCXClient(handle.host, handle.port) for _ in MULTIPLEX_QUERIES
        ]
        try:
            for client, query in zip(subscribers, MULTIPLEX_QUERIES):
                client.subscribe("smoke", query)
            readers = [
                threading.Thread(target=collect, args=(index, client))
                for index, client in enumerate(subscribers)
            ]
            for reader in readers:
                reader.start()
            with GCXClient(handle.host, handle.port, chunk_size=8192) as pub:
                summary = pub.publish_document(
                    "smoke", xmark_small.encode("utf-8")
                )
            for reader in readers:
                reader.join(timeout=60)
        finally:
            for client in subscribers:
                client.close()
        snapshot = handle.server.scheduler.snapshot()

    assert not errors
    assert [outcome.output for outcome in outcomes] == expected
    assert summary["subscribers"] == CLIENTS
    assert summary["bytes_in"] == len(xmark_small.encode("utf-8"))
    assert snapshot["multiplex"]["streams"]["completed"] == 1
    assert snapshot["multiplex"]["subscribers"]["completed"] == CLIENTS
    assert snapshot["multiplex"]["peak_fanout"] == CLIENTS
