"""Unit tests for the DOM substrate."""

from repro.xmlio.dom import parse_dom
from repro.xmlio.writer import serialize_dom


class TestParseDom:
    def test_document_wraps_root(self):
        doc = parse_dom("<a></a>")
        assert doc.is_document
        assert len(doc.children) == 1
        assert doc.children[0].tag == "a"

    def test_parent_links(self):
        doc = parse_dom("<a><b><c></c></b></a>")
        c = doc.children[0].children[0].children[0]
        assert c.tag == "c"
        assert c.parent.tag == "b"
        assert list(c.ancestors())[-1] is doc

    def test_attributes(self):
        doc = parse_dom('<a x="1" y="2"></a>')
        assert doc.children[0].attributes == {"x": "1", "y": "2"}

    def test_text_nodes(self):
        doc = parse_dom("<a>one<b>two</b>three</a>")
        a = doc.children[0]
        assert [child.is_text for child in a.children] == [True, False, True]

    def test_document_order_is_preorder(self):
        doc = parse_dom("<a><b><c></c></b><d></d></a>")
        orders = [n.order for n in doc.iter_descendants()]
        assert orders == sorted(orders)

    def test_whitespace_dropped_by_default(self):
        doc = parse_dom("<a>\n  <b></b>\n</a>")
        assert all(not c.is_text for c in doc.children[0].children)

    def test_whitespace_kept_on_request(self):
        doc = parse_dom("<a> <b></b></a>", keep_whitespace=True)
        assert doc.children[0].children[0].is_text


class TestNodeQueries:
    def test_string_value_concatenates_subtree(self):
        doc = parse_dom("<a>one<b>two</b>three</a>")
        assert doc.children[0].string_value() == "onetwothree"

    def test_string_value_of_text_node(self):
        doc = parse_dom("<a>x</a>")
        assert doc.children[0].children[0].string_value() == "x"

    def test_string_value_empty_element(self):
        doc = parse_dom("<a></a>")
        assert doc.children[0].string_value() == ""

    def test_count_nodes(self):
        doc = parse_dom("<a><b>t</b><c></c></a>")
        # a, b, text, c
        assert doc.children[0].count_nodes() == 4

    def test_iter_descendants_include_self(self):
        doc = parse_dom("<a><b></b></a>")
        a = doc.children[0]
        assert [n.tag for n in a.iter_descendants(include_self=True)] == ["a", "b"]

    def test_classification_properties(self):
        doc = parse_dom("<a>t</a>")
        a = doc.children[0]
        text = a.children[0]
        assert doc.is_document and not doc.is_element and not doc.is_text
        assert a.is_element and not a.is_document
        assert text.is_text and not text.is_element


class TestSerializeDom:
    def test_roundtrip_simple(self):
        xml = "<a><b>text</b><c></c></a>"
        assert serialize_dom(parse_dom(xml)) == xml

    def test_attributes_sorted_and_escaped(self):
        doc = parse_dom('<a b="x&amp;y"></a>')
        assert serialize_dom(doc) == '<a b="x&amp;y"></a>'

    def test_text_escaped(self):
        doc = parse_dom("<a>&lt;tag&gt;</a>")
        assert serialize_dom(doc) == "<a>&lt;tag&gt;</a>"

    def test_serialize_subtree_only(self):
        doc = parse_dom("<a><b>inner</b></a>")
        b = doc.children[0].children[0]
        assert serialize_dom(b) == "<b>inner</b>"
