"""Per-plan generated-code kernels (DESIGN.md §12).

The generated kernels are an *optimisation tier*, never a semantic
one: the table-driven kernels (lazy-DFA projector, operator-program
VM) stay in the tree as byte-identical oracles, and everything here is
differential against them — same output, same per-token series, same
watermark, same role/GC counters, at every byte chunking, in both
pull-run and push-session modes.  The fallback ladder
codegen → tables → interpreter is exercised explicitly: plans without
kernels, engines with ``codegen=False``, and op streams the
decompiler rejects must all run (and agree) through the lower tiers.
"""

import dataclasses
import pathlib
import random
import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codegen import (
    CodegenError,
    CodegenEvaluator,
    GeneratedStreamProjector,
    _certify_live_alphabet,
    generate_evaluator_kernel,
    generate_lexer_kernel,
    generate_plan_kernels,
    generate_projector_kernel,
)
from repro.core.engine import GCXEngine
from repro.core.matcher import PathDFA, PathMatcher
from repro.core.program import OP_FOR_INIT, OP_JUMP
from repro.xmark import ADAPTED_QUERIES
from repro.xpath.parser import parse_path

from test_differential import QUERIES, random_document

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _fingerprint(result):
    """Everything observable about one run, for byte-identity checks."""
    s = result.stats
    return {
        "output": result.output,
        "tokens": s.tokens,
        "watermark": s.watermark,
        "series": tuple(s.series),
        "subtrees_skipped": s.subtrees_skipped,
        "roles_assigned": s.roles_assigned,
        "roles_removed": s.roles_removed,
        "nodes_buffered": s.nodes_buffered,
        "nodes_purged": s.nodes_purged,
        "final_buffered": s.final_buffered,
    }


def _chunk(data: bytes, offsets) -> list[bytes]:
    """Split *data* at the given sorted offsets."""
    cuts = [0, *offsets, len(data)]
    return [data[a:b] for a, b in zip(cuts, cuts[1:])]


def _run_session(engine, plan, chunks):
    session = engine.session(plan)
    for chunk in chunks:
        session.feed(chunk)
    return session.finish()


# ---------------------------------------------------------------------------
# kernel generation
# ---------------------------------------------------------------------------


class TestKernelGeneration:
    def test_xmark_plans_get_both_kernels(self):
        engine = GCXEngine()
        for adapted in ADAPTED_QUERIES.values():
            plan = engine.compile(adapted.text)
            assert plan.kernels is not None, adapted.key
            assert plan.kernels.projector is not None, adapted.key
            assert plan.kernels.evaluator is not None, adapted.key
            # every adapted XMark plan also admits the fused lexer
            # front-end (Kernel C): a named tag alphabet with a
            # fusible root state
            assert plan.kernels.lexer is not None, adapted.key
            assert plan.kernels.kernel_count == 3
            assert plan.kernels.source_chars == (
                len(plan.kernels.projector.source)
                + len(plan.kernels.evaluator.source)
                + len(plan.kernels.lexer.source)
            )

    def test_differential_query_pool_generates(self):
        engine = GCXEngine()
        generated = 0
        for query in QUERIES:
            plan = engine.compile(query)
            if plan.kernels is not None:
                generated += plan.kernels.kernel_count
        # the pool is the compiled fragment; codegen must cover it
        assert generated >= 2 * len(QUERIES) - 2

    def test_projector_kernel_requires_dfa(self):
        with pytest.raises(CodegenError):
            generate_projector_kernel(None, None)

    def test_evaluator_kernel_requires_program(self):
        with pytest.raises(CodegenError):
            generate_evaluator_kernel(None)

    def test_unstructured_op_stream_falls_back(self):
        plan = GCXEngine().compile(QUERIES[0])
        # a bare jump outside any for/if shape is unparseable
        broken = dataclasses.replace(plan.program, ops=((OP_JUMP, 0),))
        with pytest.raises(CodegenError):
            generate_evaluator_kernel(broken)
        assert generate_plan_kernels(None, None, broken) is None

    def test_dangling_for_init_falls_back(self):
        plan = GCXEngine().compile(QUERIES[0])
        broken = dataclasses.replace(plan.program, ops=((OP_FOR_INIT, None),))
        with pytest.raises(CodegenError):
            generate_evaluator_kernel(broken)

    def test_generated_source_is_python(self):
        plan = GCXEngine().compile(ADAPTED_QUERIES["q1"].text)
        compile(plan.kernels.projector.source, "<proj>", "exec")
        compile(plan.kernels.evaluator.source, "<eval>", "exec")

    def test_kernel_rejects_foreign_dfa(self):
        engine = GCXEngine()
        p1 = engine.compile(ADAPTED_QUERIES["q1"].text)
        p2 = engine.compile(ADAPTED_QUERIES["q6"].text)
        from repro.core.buffer import Buffer
        from repro.xmlio.lexer import make_lexer

        with pytest.raises(CodegenError):
            GeneratedStreamProjector(
                p1.kernels.projector, make_lexer(b"<site/>"), p2.dfa, Buffer()
            )

    def test_kernel_rejects_foreign_program(self):
        engine = GCXEngine()
        p1 = engine.compile(ADAPTED_QUERIES["q1"].text)
        p2 = engine.compile(ADAPTED_QUERIES["q6"].text)
        with pytest.raises(CodegenError):
            CodegenEvaluator(
                p1.kernels.evaluator, p2.program, None, None, None
            )


class TestLexerKernel:
    """Kernel C (DESIGN.md §15): the fused batch-scan lexer front-end."""

    def test_q1_is_certified_with_a_closed_alphabet(self):
        plan = GCXEngine().compile(ADAPTED_QUERIES["q1"].text)
        kernel = plan.kernels.lexer
        assert kernel is not None
        # fully named child-axis plan: the probe proves every reachable
        # state treats unknown tags as dead
        assert kernel.certified
        assert kernel.live_tags == ("name", "people", "person", "site")
        assert kernel.probed_states >= 2
        compile(kernel.source, "<lexer>", "exec")

    def test_subtree_copy_plans_fuse_uncertified(self):
        """A trailing ``descendant-or-self::node()`` copy role keeps
        unknown tags live *inside* the copied subtree, so the baked
        fast-tail skip is unsound there.  The kernel is still
        generated — every out-of-alphabet start simply dispatches
        through the shared DFA, which decides dead vs live per state.
        """
        for key in ("q8", "q13", "q20"):
            plan = GCXEngine().compile(ADAPTED_QUERIES[key].text)
            kernel = plan.kernels.lexer
            assert kernel is not None, key
            assert not kernel.certified, key
            # the baked fast-tail branch must not appear uncertified
            assert "tail_dead and qi == qlen" not in kernel.source, key
        certified = GCXEngine().compile(ADAPTED_QUERIES["q1"].text)
        assert "tail_dead and qi == qlen" in certified.kernels.lexer.source

    def test_descendant_at_root_declines(self):
        """When unknown tags stay live in the start state the fused
        scan could never skip anything — generation declines and the
        plan keeps the per-event Kernel A front-end."""
        dfa = PathDFA(
            PathMatcher([("r1", parse_path("/descendant-or-self::node()/b"))])
        )
        with pytest.raises(CodegenError, match="root"):
            _certify_live_alphabet(dfa, ["b"])

    def test_lexer_kernel_requires_dfa(self):
        with pytest.raises(CodegenError):
            generate_lexer_kernel(None, None)

    def test_fused_tier_falls_back_without_lexer_kernel(self):
        """Stripping only the lexer kernel drops the plan to the
        per-event generated tier with identical results."""
        engine = GCXEngine()
        plan = engine.compile(ADAPTED_QUERIES["q1"].text)
        no_lexer = dataclasses.replace(
            plan, kernels=dataclasses.replace(plan.kernels, lexer=None)
        )
        data = (
            b"<site><people><person id='p0'><name>n0</name></person>"
            b"<dead><deep><deeper/></deep></dead></people></site>"
        )
        assert _fingerprint(engine.run(no_lexer, data)) == _fingerprint(
            engine.run(plan, data)
        )

    def test_no_fused_lexer_engine_toggle(self):
        """``fused_lexer=False`` disables the tier engine-wide; the
        output is unchanged."""
        plain = GCXEngine(fused_lexer=False)
        fused = GCXEngine()
        data = (
            b"<site><people><person id='p0'><name>n0</name></person>"
            b"</people><junk>skipped</junk></site>"
        )
        a = _fingerprint(plain.run(plain.compile(ADAPTED_QUERIES["q1"].text), data))
        b = _fingerprint(fused.run(fused.compile(ADAPTED_QUERIES["q1"].text), data))
        assert a == b


# ---------------------------------------------------------------------------
# differential: codegen vs the table oracles
# ---------------------------------------------------------------------------


class TestDifferentialPull:
    @pytest.mark.parametrize("seed", range(6))
    def test_query_pool_byte_identical(self, seed):
        xml = random_document(random.Random(seed * 31 + 5))
        fast = GCXEngine(codegen=True)
        oracle = GCXEngine(codegen=False)
        for query in QUERIES:
            a = _fingerprint(fast.query(query, xml))
            b = _fingerprint(oracle.query(query, xml))
            assert a == b, f"query={query!r}\nxml={xml}"

    def test_xmark_queries_byte_identical(self, xmark_small):
        data = xmark_small.encode()
        fast = GCXEngine(codegen=True)
        oracle = GCXEngine(codegen=False)
        for adapted in ADAPTED_QUERIES.values():
            a = _fingerprint(fast.query(adapted.text, data))
            b = _fingerprint(oracle.query(adapted.text, data))
            assert a == b, adapted.key

    def test_surprise_tags_discovered_at_runtime(self):
        """Tags absent from the projection paths are not baked; the
        generated kernel must take the shared-memo fall-through (and
        grow the memo) exactly like the table kernel."""
        query = "for $x in /r/descendant::b return $x"
        xml = (
            "<r><z1><z2><b>hit</b></z2></z1><q7/>"
            "<b><deep><b>nested</b></deep></b></r>"
        )
        a = _fingerprint(GCXEngine(codegen=True).query(query, xml))
        b = _fingerprint(GCXEngine(codegen=False).query(query, xml))
        assert a == b

    def test_memo_growth_keeps_generated_code_valid(self):
        """One plan, two documents with disjoint tag alphabets: the
        second run sees a memo grown by the first, and both agree with
        the oracle throughout."""
        engine = GCXEngine(codegen=True)
        oracle = GCXEngine(codegen=False)
        plan = engine.compile("for $x in /r/a return $x/b")
        oplan = oracle.compile("for $x in /r/a return $x/b")
        for xml in (
            "<r><a><b>1</b></a></r>",
            "<r><u><v/></u><a><w/><b>2</b></a></r>",
            "<r><p><q><s/></q></p><a><b>3</b><t/></a></r>",
        ):
            a = _fingerprint(engine.run(plan, xml))
            b = _fingerprint(oracle.run(oplan, xml))
            assert a == b

    def test_interpreted_engine_bypasses_codegen(self):
        engine = GCXEngine(compiled=False, compiled_eval=False, codegen=True)
        xml = "<r><a><b>x</b></a></r>"
        result = engine.query("for $x in /r/a return $x/b", xml)
        assert result.output == "<b>x</b>"

    def test_plan_without_kernels_falls_back(self):
        engine = GCXEngine(codegen=True)
        plan = engine.compile("for $x in /r/a return $x")
        stripped = dataclasses.replace(plan, kernels=None)
        xml = "<r><a>1</a><b/></r>"
        assert _fingerprint(engine.run(stripped, xml)) == _fingerprint(
            engine.run(plan, xml)
        )

    def test_partial_kernels_mix_tiers(self):
        """A plan with only one generated kernel runs that side
        generated and the other through the table kernel."""
        engine = GCXEngine(codegen=True)
        plan = engine.compile("for $x in /r/a return $x")
        only_proj = dataclasses.replace(
            plan,
            kernels=dataclasses.replace(plan.kernels, evaluator=None),
        )
        only_eval = dataclasses.replace(
            plan,
            kernels=dataclasses.replace(plan.kernels, projector=None),
        )
        xml = "<r><a>1</a><c/><a>2</a></r>"
        want = _fingerprint(engine.run(plan, xml))
        assert _fingerprint(engine.run(only_proj, xml)) == want
        assert _fingerprint(engine.run(only_eval, xml)) == want


class TestDifferentialSession:
    @pytest.mark.parametrize("seed", range(4))
    def test_session_chunked_byte_identical(self, seed):
        rng = random.Random(seed * 77 + 3)
        xml = random_document(rng)
        data = xml.encode()
        offsets = sorted(
            rng.randrange(1, max(2, len(data)))
            for _ in range(rng.randint(0, 6))
        )
        chunks = _chunk(data, offsets)
        fast = GCXEngine(codegen=True)
        oracle = GCXEngine(codegen=False)
        for query in QUERIES[::3]:
            a = _fingerprint(_run_session(fast, fast.compile(query), chunks))
            b = _fingerprint(_run_session(oracle, oracle.compile(query), chunks))
            assert a == b, f"query={query!r}\nxml={xml}\nchunks={offsets}"


# ---------------------------------------------------------------------------
# hypothesis: random queries × random chunkings × both modes
# ---------------------------------------------------------------------------


@given(
    seed=st.integers(0, 10_000),
    query=st.sampled_from(QUERIES),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_codegen_byte_identical_at_every_chunking(seed, query, data):
    xml = random_document(random.Random(seed))
    raw = xml.encode()
    n_cuts = data.draw(st.integers(0, 5), label="n_cuts")
    offsets = sorted(
        data.draw(st.integers(1, max(1, len(raw) - 1)), label=f"cut{i}")
        for i in range(n_cuts)
    )
    chunks = _chunk(raw, offsets)
    pull_mode = data.draw(st.booleans(), label="pull_mode")
    fast = GCXEngine(codegen=True)
    oracle = GCXEngine(codegen=False)
    if pull_mode:
        a = _fingerprint(fast.run(fast.compile(query), iter(chunks)))
        b = _fingerprint(oracle.run(oracle.compile(query), iter(chunks)))
    else:
        a = _fingerprint(_run_session(fast, fast.compile(query), chunks))
        b = _fingerprint(_run_session(oracle, oracle.compile(query), chunks))
    assert a == b


# ---------------------------------------------------------------------------
# observability: cache stats and the server STATS frame
# ---------------------------------------------------------------------------


class TestCodegenStats:
    def test_codegen_stats_counts_kernels_and_source(self):
        engine = GCXEngine()
        engine.compile(ADAPTED_QUERIES["q1"].text)
        engine.compile(ADAPTED_QUERIES["q6"].text)
        snap = engine.plan_cache.codegen_stats()
        assert snap["plans"] == 2
        assert snap["projector_kernels"] == 2
        assert snap["evaluator_kernels"] == 2
        assert snap["lexer_kernels"] == 2
        assert snap["source_chars"] > 0
        assert snap["fallbacks"] == 0

    def test_codegen_stats_counts_fallbacks(self):
        engine = GCXEngine()
        plan = engine.compile("for $x in /r/a return $x")
        plan.kernels = None  # simulate a plan whose generation declined
        snap = engine.plan_cache.codegen_stats()
        assert snap["fallbacks"] == 1
        assert snap["plans"] == 0

    def test_metrics_snapshot_reports_codegen(self):
        from repro.server.metrics import ServerMetrics

        engine = GCXEngine()
        engine.compile(ADAPTED_QUERIES["q1"].text)
        snap = ServerMetrics().snapshot(
            codegen=engine.plan_cache.codegen_stats()
        )
        assert snap["codegen"]["projector_kernels"] == 1
        assert snap["codegen"]["source_chars"] > 0


# ---------------------------------------------------------------------------
# confinement: exec/compile stay in core/codegen.py
# ---------------------------------------------------------------------------


def test_exec_compile_confined_to_codegen_module():
    """The lint rule (ruff S102) runs in CI; this is its in-tree twin
    so the confinement also holds where ruff is unavailable."""
    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    # bare builtin calls only: `engine.compile(...)`, `re.compile(...)`
    # and `compile_program(...)` are fine, `exec(`/`compile(` are not
    builtin_call = re.compile(r"(?<!def )(?<![\w.])(?:exec|compile)\(")
    offenders = []
    for path in sorted(src.rglob("*.py")):
        if path.name == "codegen.py" and path.parent.name == "core":
            continue
        text = path.read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), 1):
            if builtin_call.search(line.split("#", 1)[0]):
                offenders.append(f"{path.relative_to(src)}:{lineno}")
    assert not offenders, (
        "exec()/compile() must only appear in repro/core/codegen.py: "
        + ", ".join(offenders)
    )
