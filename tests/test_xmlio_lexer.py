"""Unit tests for the streaming XML lexer."""

import pytest

from repro.xmlio.errors import XmlSyntaxError
from repro.xmlio.lexer import make_lexer, tokenize
from repro.xmlio.tokens import EndTag, StartTag, Text, TokenKind


def kinds(xml, **kw):
    return [t.kind for t in tokenize(xml, **kw)]


class TestBasicTokens:
    def test_single_element(self):
        tokens = list(tokenize("<a></a>"))
        assert tokens == [StartTag("a", (), 0), EndTag("a", 3)]

    def test_text_content(self):
        tokens = list(tokenize("<a>hello</a>"))
        assert tokens[1] == Text("hello", 3)

    def test_nested_elements(self):
        tags = [t.name for t in tokenize("<a><b><c></c></b></a>")
                if t.kind is not TokenKind.TEXT]
        assert tags == ["a", "b", "c", "c", "b", "a"]

    def test_self_closing_expands_to_start_end(self):
        tokens = list(tokenize("<a><b/></a>"))
        assert [t.kind for t in tokens] == [
            TokenKind.START,
            TokenKind.START,
            TokenKind.END,
            TokenKind.END,
        ]
        assert tokens[1].self_closing is True
        assert tokens[2].name == "b"

    def test_self_closing_root(self):
        tokens = list(tokenize("<r/>"))
        assert len(tokens) == 2
        assert tokens[0].name == tokens[1].name == "r"

    def test_mixed_content_order(self):
        tokens = list(tokenize("<a>x<b>y</b>z</a>"))
        flat = [str(t) for t in tokens]
        assert flat == ["<a>", "x", "<b>", "y", "</b>", "z", "</a>"]


class TestAttributes:
    def test_double_quoted(self):
        (start, _end) = tokenize('<a x="1" y="two"></a>')
        assert start.attribute("x") == "1"
        assert start.attribute("y") == "two"

    def test_single_quoted(self):
        (start, _end) = tokenize("<a x='1'></a>")
        assert start.attribute("x") == "1"

    def test_missing_attribute_is_none(self):
        (start, _end) = tokenize("<a></a>")
        assert start.attribute("nope") is None

    def test_entity_in_attribute_value(self):
        (start, _end) = tokenize('<a x="a&amp;b&lt;c"></a>')
        assert start.attribute("x") == "a&b<c"

    def test_whitespace_around_equals(self):
        (start, _end) = tokenize('<a x = "1"></a>')
        assert start.attribute("x") == "1"

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XmlSyntaxError, match="duplicate attribute"):
            list(tokenize('<a x="1" x="2"></a>'))

    def test_attribute_on_self_closing(self):
        tokens = list(tokenize('<a k="v"/>'))
        assert tokens[0].attribute("k") == "v"


class TestEntitiesAndCdata:
    def test_predefined_entities(self):
        tokens = list(tokenize("<a>&lt;&gt;&amp;&apos;&quot;</a>"))
        assert tokens[1].content == "<>&'\""

    def test_decimal_character_reference(self):
        tokens = list(tokenize("<a>&#65;</a>"))
        assert tokens[1].content == "A"

    def test_hex_character_reference(self):
        tokens = list(tokenize("<a>&#x41;&#x42;</a>"))
        assert tokens[1].content == "AB"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlSyntaxError, match="unknown entity"):
            list(tokenize("<a>&nope;</a>"))

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XmlSyntaxError, match="unterminated entity"):
            list(tokenize("<a>&amp</a>"))

    def test_cdata_passes_markup_verbatim(self):
        tokens = list(tokenize("<a><![CDATA[<not> & markup]]></a>"))
        assert tokens[1].content == "<not> & markup"


class TestSkippedMarkup:
    def test_comment_skipped(self):
        assert kinds("<a><!-- comment --></a>") == [TokenKind.START, TokenKind.END]

    def test_comment_between_elements(self):
        tags = [t.name for t in tokenize("<a><!--x--><b></b></a>")
                if t.kind is TokenKind.START]
        assert tags == ["a", "b"]

    def test_processing_instruction_skipped(self):
        assert kinds("<?xml version='1.0'?><a></a>") == [
            TokenKind.START,
            TokenKind.END,
        ]

    def test_doctype_skipped(self):
        assert kinds("<!DOCTYPE a><a></a>") == [TokenKind.START, TokenKind.END]

    def test_internal_subset_preserved(self):
        lexer = make_lexer("<!DOCTYPE a [<!ELEMENT a (b)>]><a><b/></a>")
        list(lexer)
        assert "<!ELEMENT a (b)>" in lexer.internal_subset

    def test_unterminated_comment_rejected(self):
        with pytest.raises(XmlSyntaxError, match="unterminated comment"):
            list(tokenize("<a><!-- oops</a>"))


class TestWhitespace:
    def test_whitespace_dropped_by_default(self):
        assert kinds("<a>  <b></b>  </a>") == [
            TokenKind.START,
            TokenKind.START,
            TokenKind.END,
            TokenKind.END,
        ]

    def test_whitespace_kept_on_request(self):
        tokens = list(tokenize("<a> <b></b></a>", keep_whitespace=True))
        assert tokens[1].kind is TokenKind.TEXT
        assert tokens[1].content == " "

    def test_leading_and_trailing_document_whitespace(self):
        assert kinds("\n  <a></a>\n") == [TokenKind.START, TokenKind.END]


class TestWellFormedness:
    def test_mismatched_end_tag(self):
        with pytest.raises(XmlSyntaxError, match="mismatched end tag"):
            list(tokenize("<a><b></a></b>"))

    def test_unclosed_element(self):
        with pytest.raises(XmlSyntaxError, match="unclosed element"):
            list(tokenize("<a><b>"))

    def test_stray_end_tag(self):
        with pytest.raises(XmlSyntaxError, match="no open element"):
            list(tokenize("<a></a></b>"))

    def test_multiple_roots_rejected(self):
        with pytest.raises(XmlSyntaxError, match="multiple root"):
            list(tokenize("<a></a><b></b>"))

    def test_text_outside_root_rejected(self):
        with pytest.raises(XmlSyntaxError, match="outside the root"):
            list(tokenize("hello<a></a>"))

    def test_malformed_start_tag(self):
        with pytest.raises(XmlSyntaxError):
            list(tokenize("<1a></1a>"))

    def test_attribute_without_value(self):
        with pytest.raises(XmlSyntaxError, match="without value"):
            list(tokenize("<a checked></a>"))

    def test_unquoted_attribute_value(self):
        with pytest.raises(XmlSyntaxError, match="unquoted value"):
            list(tokenize("<a x=1></a>"))


class TestPullInterface:
    def test_next_token_returns_none_at_eof(self):
        lexer = make_lexer("<a></a>")
        assert lexer.next_token().kind is TokenKind.START
        assert lexer.next_token().kind is TokenKind.END
        assert lexer.next_token() is None
        assert lexer.next_token() is None

    def test_depth_tracking(self):
        lexer = make_lexer("<a><b></b></a>")
        lexer.next_token()
        assert lexer.depth == 1
        lexer.next_token()
        assert lexer.depth == 2
        lexer.next_token()
        assert lexer.depth == 1

    def test_tokenize_accepts_chunks(self):
        tokens = list(tokenize(["<a>", "<b></b>", "</a>"]))
        assert len(tokens) == 4

    def test_offsets_are_monotonic(self):
        offsets = [t.offset for t in tokenize("<a><b>x</b><c></c></a>")]
        assert offsets == sorted(offsets)


class TestIncremental:
    """Push-mode lexing: feed()/close() with arbitrary chunk splits."""

    DOC = (
        '<!DOCTYPE a [<!ELEMENT a (b)>]>'
        '<a x="1&amp;2"><!-- c --><b><![CDATA[<x>&]]></b>t&#65;x<c/></a>'
    )

    @staticmethod
    def drain(lexer):
        from repro.xmlio.errors import XmlStarvedError

        tokens = []
        while True:
            try:
                token = lexer.next_token()
            except XmlStarvedError:
                return tokens, False
            if token is None:
                return tokens, True
            tokens.append(token)

    def test_every_split_offset_token_identical(self):
        from repro.xmlio.lexer import XmlLexer

        whole = list(tokenize(self.DOC))
        for offset in range(len(self.DOC) + 1):
            lexer = XmlLexer(None)
            tokens = []
            for part in (self.DOC[:offset], self.DOC[offset:]):
                lexer.feed(part)
                got, _done = self.drain(lexer)
                tokens.extend(got)
            lexer.close()
            got, done = self.drain(lexer)
            tokens.extend(got)
            assert done
            assert tokens == whole, offset

    def test_starved_pull_raises_until_closed(self):
        from repro.xmlio.errors import XmlStarvedError
        from repro.xmlio.lexer import XmlLexer

        lexer = XmlLexer(None)
        lexer.feed("<a>text-without-markup")
        assert lexer.next_token().name == "a"
        with pytest.raises(XmlStarvedError):
            lexer.next_token()  # the text run may continue
        lexer.feed("-more</a>")
        assert lexer.next_token().content == "text-without-markup-more"

    def test_feed_after_close_rejected(self):
        from repro.xmlio.lexer import XmlLexer

        lexer = XmlLexer(None)
        lexer.close()
        with pytest.raises(ValueError, match="closed"):
            lexer.feed("<a/>")

    def test_offsets_survive_compaction(self):
        whole = [t.offset for t in tokenize(self.DOC)]
        one_byte = [t.offset for t in tokenize(iter(self.DOC))]
        assert one_byte == whole

    def test_internal_subset_split_across_chunks(self):
        from repro.xmlio.lexer import XmlLexer

        doc = "<!DOCTYPE a [<!ELEMENT a (b)>]><a><b/></a>"
        lexer = XmlLexer(iter([doc[:20], doc[20:]]))
        list(lexer)
        assert "<!ELEMENT a (b)>" in lexer.internal_subset

    def test_entity_split_across_chunks(self):
        tokens = list(tokenize(["<a>x&am", "p;y</a>"]))
        assert tokens[1].content == "x&y"

    def test_empty_chunks_are_not_end_of_input(self):
        tokens = list(tokenize(["", "<a>", "", "", "x</a>", ""]))
        assert [str(t) for t in tokens] == ["<a>", "x", "</a>"]

    def test_refill_callable_source(self):
        chunks = ["<a><b>1</b>", "<b>2</b></a>"]
        lexer = make_lexer(None, refill=lambda: chunks.pop(0) if chunks else None)
        assert len(list(lexer)) == 8

    def test_unicode_names_fall_back_to_exact_scanner(self):
        (start, _end) = tokenize("<élan å='1'></élan>")
        assert start.name == "élan"
        assert start.attribute("å") == "1"

    def test_tag_names_are_interned(self):
        tokens = [t for t in tokenize(["<a><b/>", "<b/></a>"])
                  if t.kind is TokenKind.START]
        assert tokens[1].name is tokens[2].name


class TestIterableDomainSniffing:
    """make_lexer picks the scanning domain from the first chunk of an
    iterable source — including when that chunk is empty (the empty
    chunk is skipped, but its *type* still decides)."""

    def test_leading_empty_bytes_chunk_picks_bytes_domain(self):
        from repro.xmlio.lexer_bytes import ByteXmlLexer

        lexer = make_lexer([b"", b"<a>x</a>"])
        assert isinstance(lexer, ByteXmlLexer)
        assert [str(t) for t in lexer] == ["<a>", "x", "</a>"]

    def test_leading_empty_str_chunk_picks_str_domain(self):
        from repro.xmlio.lexer import XmlLexer

        lexer = make_lexer(["", "<a>x</a>"])
        assert isinstance(lexer, XmlLexer)
        assert [str(t) for t in lexer] == ["<a>", "x", "</a>"]

    def test_all_empty_bytes_iterable_gets_bytes_lexer(self):
        from repro.xmlio.lexer_bytes import ByteXmlLexer

        assert isinstance(make_lexer([b"", b""]), ByteXmlLexer)
        assert isinstance(make_lexer([b""]), ByteXmlLexer)

    def test_all_empty_str_iterable_gets_str_lexer(self):
        from repro.xmlio.lexer import XmlLexer

        assert isinstance(make_lexer([""]), XmlLexer)
        assert isinstance(make_lexer([]), XmlLexer)

    def test_tokenize_skips_leading_empty_chunks_bytes(self):
        tokens = list(tokenize([b"", b"", b"<a>", b"", b"x</a>"]))
        assert [str(t) for t in tokens] == ["<a>", "x", "</a>"]

    def test_tokenize_skips_leading_empty_chunks_str(self):
        tokens = list(tokenize(["", "", "<a>", "", "x</a>"]))
        assert [str(t) for t in tokens] == ["<a>", "x", "</a>"]
