"""Reproduction of the GCX streaming XQuery engine (VLDB 2007).

GCX evaluates a practical fragment of XQuery over XML streams while
keeping main-memory buffers minimal through *active garbage
collection*: static analysis derives projection paths and roles,
signOff statements inserted at compile time remove roles as evaluation
progresses, and nodes whose roles are gone are purged immediately.

Public API::

    from repro import GCXEngine

    engine = GCXEngine()
    result = engine.query("<r>{ for $x in /doc/item return $x }</r>", xml)
    result.output           # serialized query result
    result.stats.watermark  # peak number of buffered nodes
    result.stats.series     # buffered nodes after every input token

Baselines for the paper's comparative experiments live in
:mod:`repro.baselines`, the XMark-style workload generator in
:mod:`repro.xmark`, and the benchmark harness in :mod:`repro.bench`.
"""

from repro.core.engine import CompiledQuery, GCXEngine, RunResult
from repro.core.stats import BufferStats
from repro.xquery.parser import XQueryParseError, parse_query
from repro.xquery.normalize import NormalizationError, normalize_query
from repro.xmlio.errors import XmlSyntaxError

__version__ = "0.1.0"

__all__ = [
    "BufferStats",
    "CompiledQuery",
    "GCXEngine",
    "NormalizationError",
    "RunResult",
    "XQueryParseError",
    "XmlSyntaxError",
    "__version__",
    "normalize_query",
    "parse_query",
]
