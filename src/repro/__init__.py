"""Reproduction of the GCX streaming XQuery engine (VLDB 2007).

GCX evaluates a practical fragment of XQuery over XML streams while
keeping main-memory buffers minimal through *active garbage
collection*: static analysis derives projection paths and roles,
signOff statements inserted at compile time remove roles as evaluation
progresses, and nodes whose roles are gone are purged immediately.

Public API::

    from repro import GCXEngine

    engine = GCXEngine()
    result = engine.query("<r>{ for $x in /doc/item return $x }</r>", xml)
    result.output           # serialized query result
    result.stats.watermark  # peak number of buffered nodes
    result.stats.series     # buffered nodes after every input token

Compile once, stream many (the session architecture, DESIGN.md §1)::

    plan = engine.compile(query_text)      # cached; analysis runs once
    session = engine.session(plan)         # one per concurrent stream
    for chunk in chunks:
        session.feed(chunk)                # arbitrary chunk boundaries
    result = session.finish()

Baselines for the paper's comparative experiments live in
:mod:`repro.baselines`, the XMark-style workload generator in
:mod:`repro.xmark`, and the benchmark harness in :mod:`repro.bench`.
The concurrent query service — an asyncio TCP server multiplexing
many sessions over one shared plan cache, with admission control and
live metrics (DESIGN.md §8) — lives in :mod:`repro.server`.
"""

from repro.core.engine import CompiledQuery, GCXEngine, QueryPlan, RunResult
from repro.core.plan import PlanCache, PlanCacheStats
from repro.core.session import SessionStateError, StreamSession
from repro.core.stats import BufferStats
from repro.multiplex import (
    MultiplexError,
    MultiplexPlan,
    SharedStreamSession,
    StreamSubscriber,
)
from repro.xquery.parser import XQueryParseError, parse_query
from repro.xquery.normalize import NormalizationError, normalize_query
from repro.xmlio.errors import XmlStarvedError, XmlSyntaxError

__version__ = "0.3.0"

__all__ = [
    "BufferStats",
    "CompiledQuery",
    "GCXEngine",
    "MultiplexError",
    "MultiplexPlan",
    "NormalizationError",
    "PlanCache",
    "PlanCacheStats",
    "QueryPlan",
    "RunResult",
    "SessionStateError",
    "SharedStreamSession",
    "StreamSession",
    "StreamSubscriber",
    "XQueryParseError",
    "XmlStarvedError",
    "XmlSyntaxError",
    "__version__",
    "normalize_query",
    "parse_query",
]
