"""Static-projection-only baseline.

Projects the input stream with the very same projection paths GCX
derives, but never executes a ``signOff``: the buffer holds the full
projected document until the end of the run.  This is the strategy of
Marian & Siméon's "Projecting XML Documents" [12] and the projection
half of the systems the paper's Section 1 surveys — "the decisions
regarding what to buffer and when to delete from buffers are made at
compile-time only".

The engine deliberately reuses the whole GCX runtime with garbage
collection switched off, so the measured difference against GCX
isolates exactly the paper's contribution: the *dynamic* half of the
buffer minimization.
"""

from __future__ import annotations

from repro.core.engine import GCXEngine


class ProjectionOnlyEngine(GCXEngine):
    """GCX's projector without GCX's garbage collector."""

    name = "projection-only"

    def __init__(
        self,
        first_witness: bool = True,
        record_series: bool = True,
        drain: bool = True,
        compiled: bool = True,
        compiled_eval: bool = True,
        codegen: bool = True,
        fused_lexer: bool = True,
    ):
        super().__init__(
            gc_enabled=False,
            first_witness=first_witness,
            record_series=record_series,
            drain=drain,
            compiled=compiled,
            compiled_eval=compiled_eval,
            codegen=codegen,
            fused_lexer=fused_lexer,
        )
