"""Full in-memory baseline engine (and semantics oracle).

Parses the complete document into a DOM, then evaluates the normalized
query by direct interpretation with the reference XPath evaluator.
This is the evaluation strategy of the full-XQuery engines in the
paper's Figure 5 (Galax, Saxon, QizX): no projection, no streaming —
memory is linear in the document size regardless of the query.

Because this engine shares no runtime code with the streaming GCX
engine (different tree, different path evaluator, different control
flow), agreement between the two on randomized inputs is strong
evidence for the streaming engine's correctness; the differential test
suite relies on that.
"""

from __future__ import annotations

import time

from repro.core.engine import DEFAULT_CHUNK_SIZE, RunResult, _file_chunks
from repro.core.stats import BufferStats
from repro.xmlio.dom import DomNode, build_dom
from repro.xmlio.lexer import tokenize
from repro.xmlio.tokens import TokenKind
from repro.xmlio.writer import XmlWriter, serialize_dom
from repro.xpath.evaluator import AttributeRef, evaluate_path, item_string_value
from repro.xquery import ast as q
from repro.xquery.normalize import normalize_query
from repro.xquery.parser import parse_query
from repro.core.evaluator import (
    EvaluationError,
    _compare,
    compute_aggregate,
    format_number,
)


class _DomEvaluator:
    """Direct interpretation of a normalized query over a DOM."""

    def __init__(self, document: DomNode, writer: XmlWriter):
        self._document = document
        self._writer = writer
        self._env: dict[str, DomNode] = {}
        self._scalars: dict[str, float | int | str] = {}

    def run(self, query: q.Query) -> None:
        self._eval(query.body)

    # ------------------------------------------------------------------

    def _context(self, var: str | None) -> DomNode:
        if var is None:
            return self._document
        try:
            return self._env[var]
        except KeyError:
            raise EvaluationError(f"unbound variable ${var}") from None

    def _eval(self, expr: q.Expr) -> None:
        if isinstance(expr, q.Sequence):
            for item in expr.items:
                self._eval(item)
        elif isinstance(expr, q.ForExpr):
            context = self._context(expr.source.var)
            bindings = evaluate_path(expr.source.path, context)
            for node in bindings:
                if isinstance(node, AttributeRef):
                    raise EvaluationError("cannot iterate over attributes")
                self._env[expr.var] = node
                self._eval(expr.body)
            self._env.pop(expr.var, None)
        elif isinstance(expr, q.LetExpr):
            if isinstance(expr.value, q.Aggregate):
                self._scalars[expr.var] = self._aggregate(expr.value)
            else:
                self._scalars[expr.var] = expr.value.value
            self._eval(expr.body)
            self._scalars.pop(expr.var, None)
        elif isinstance(expr, q.IfExpr):
            if self._condition(expr.condition):
                self._eval(expr.then)
            else:
                self._eval(expr.orelse)
        elif isinstance(expr, q.ElementConstructor):
            self._writer.start_element(expr.tag, self._resolve_attributes(expr))
            self._eval(expr.body)
            self._writer.end_element(expr.tag)
        elif isinstance(expr, q.PathExpr):
            if expr.var in self._scalars:
                value = self._scalars[expr.var]
                self._writer.text(
                    value if isinstance(value, str) else format_number(value)
                )
                return
            context = self._context(expr.var)
            for item in evaluate_path(expr.path, context):
                if isinstance(item, AttributeRef):
                    self._writer.text(item.value)
                else:
                    serialize_dom(item, self._writer)
        elif isinstance(expr, q.AggregateExpr):
            self._writer.text(format_number(self._aggregate(expr.aggregate)))
        elif isinstance(expr, q.TextLiteral):
            self._writer.text(expr.value)
        elif isinstance(expr, (q.Empty, q.SignOff)):
            pass
        else:  # pragma: no cover - exhaustive over the AST
            raise EvaluationError(f"unsupported expression {expr!r}")

    def _condition(self, condition: q.Condition) -> bool:
        if isinstance(condition, q.Exists):
            if condition.operand.var in self._scalars:
                return True
            context = self._context(condition.operand.var)
            return bool(evaluate_path(condition.operand.path, context))
        if isinstance(condition, q.Not):
            return not self._condition(condition.operand)
        if isinstance(condition, q.And):
            return self._condition(condition.left) and self._condition(
                condition.right
            )
        if isinstance(condition, q.Or):
            return self._condition(condition.left) or self._condition(
                condition.right
            )
        if isinstance(condition, q.Comparison):
            left = self._operand_values(condition.left)
            right = self._operand_values(condition.right)
            return any(
                _compare(condition.op, lv, rv) for lv in left for rv in right
            )
        raise EvaluationError(f"unsupported condition {condition!r}")

    def _operand_values(self, operand) -> list:
        if isinstance(operand, q.Literal):
            return [operand.value]
        if isinstance(operand, q.Aggregate):
            return [self._aggregate(operand)]
        if operand.var in self._scalars:
            return [self._scalars[operand.var]]
        context = self._context(operand.var)
        return [
            item_string_value(item)
            for item in evaluate_path(operand.path, context)
        ]

    def _resolve_attributes(self, expr: q.ElementConstructor):
        resolved = []
        for name, value in expr.attributes:
            if isinstance(value, q.Aggregate):
                value = format_number(self._aggregate(value))
            elif isinstance(value, q.PathOperand):
                value = " ".join(str(v) for v in self._operand_values(value))
            resolved.append((name, value))
        return resolved

    def _aggregate(self, aggregate: q.Aggregate) -> float | int:
        context = self._context(aggregate.operand.var)
        items = evaluate_path(aggregate.operand.path, context)
        if aggregate.func == "count":
            return len(items)
        return compute_aggregate(
            aggregate.func, [item_string_value(item) for item in items]
        )


class FullDomEngine:
    """Parse everything, then evaluate — the non-streaming baseline."""

    name = "full-dom"

    def __init__(self, record_series: bool = True):
        self.record_series = record_series

    def compile(self, query_text: str) -> q.Query:
        """Parse and normalize; no static buffer analysis exists here."""
        return normalize_query(parse_query(query_text))

    def run(
        self, compiled: q.Query, xml_source, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> RunResult:
        """Evaluate over *xml_source* — a ``str`` or UTF-8 ``bytes``
        document, a file-like object (text or binary; binary reads
        take the bytes-domain lexer), or an iterable of chunks (all
        tokens are retained regardless: this baseline is deliberately
        non-streaming)."""
        if hasattr(xml_source, "read"):
            xml_source = _file_chunks(xml_source, chunk_size)
        stats = BufferStats(record_series=self.record_series)
        started = time.perf_counter()
        live = 0
        tokens = []
        for token in tokenize(xml_source):
            tokens.append(token)
            if token.kind in (TokenKind.START, TokenKind.TEXT):
                live += 1
            stats.record_token(live)
        stats.nodes_buffered = live
        document = build_dom(tokens)
        writer = XmlWriter()
        _DomEvaluator(document, writer).run(compiled)
        stats.elapsed = time.perf_counter() - started
        stats.final_buffered = live  # nothing is ever purged
        output = writer.getvalue()
        stats.output_chars = len(output)
        return RunResult(output, stats, compiled)

    def query(self, query_text: str, xml_text: str) -> RunResult:
        """Compile and run in one call."""
        return self.run(self.compile(query_text), xml_text)

    def evaluate(self, query_text: str, xml_text: str) -> str:
        """Convenience: return just the serialized output."""
        return self.query(query_text, xml_text).output
