"""FluX-like baseline: schema-aware streaming with scope-based purging.

FluXQuery [10] — the paper's closest competitor — schedules event
handlers from the query *and a DTD*: with schema knowledge it can emit
and discard data once the schema proves a scope is complete, but its
buffer decisions are fixed at compile time per *scope*, not per node.
Two observable consequences in the paper's Figure 5:

* FluXQuery's buffering sits between GCX and the full in-memory
  engines (it releases buffers at scope boundaries, not at GCX's
  per-node preemption points);
* it cannot handle descendant-axis queries — Q6 is reported "n/a".

This baseline models both behaviours on top of the GCX runtime:

* signOff statements are *coarsened by one loop scope*: every role is
  signed off at the end of the loop enclosing its GCX preemption
  point, re-rooted accordingly.  Moving a signOff later is always
  sound (roles are held longer, never released early), so results are
  identical — only buffer behaviour changes.
* queries using the descendant or descendant-or-self axis raise
  :class:`UnsupportedQueryError` (the Figure 5 "n/a").
* without a DTD the engine falls back to projection-only buffering
  (no schema knowledge — no early release), mirroring FluX's
  dependence on schema information.
"""

from __future__ import annotations

from repro.core.codegen import generate_plan_kernels
from repro.core.engine import CompiledQuery, GCXEngine, _try_compile_program
from repro.core.matcher import PathDFA, PathMatcher
from repro.core.signoff import insert_signoffs
from repro.core.analysis import analyze_query
from repro.xmlio.dtd import Dtd
from repro.xpath.ast import Axis, Path
from repro.xquery import ast as q
from repro.xquery.normalize import normalize_query
from repro.xquery.parser import parse_query


class UnsupportedQueryError(ValueError):
    """The engine cannot evaluate this query (reported n/a)."""


def _check_no_descendant_axes(query: q.Query) -> None:
    """Reject user queries with descendant axes, like FluXQuery."""

    def check_path(path: Path, where: str) -> None:
        for step in path.steps:
            if step.axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
                raise UnsupportedQueryError(
                    f"descendant axes are not supported ({where}: {path})"
                )

    def walk(expr: q.Expr) -> None:
        if isinstance(expr, q.Sequence):
            for item in expr.items:
                walk(item)
        elif isinstance(expr, q.ForExpr):
            check_path(expr.source.path, f"for ${expr.var}")
            walk(expr.body)
        elif isinstance(expr, q.LetExpr):
            if isinstance(expr.value, q.Aggregate):
                check_path(expr.value.operand.path, f"let ${expr.var}")
            walk(expr.body)
        elif isinstance(expr, q.IfExpr):
            for operand in q.condition_operands(expr.condition):
                check_path(operand.path, "condition")
            walk(expr.then)
            walk(expr.orelse)
        elif isinstance(expr, q.ElementConstructor):
            for _name, value in expr.attributes:
                if isinstance(value, q.PathOperand):
                    check_path(value.path, "attribute template")
                elif isinstance(value, q.Aggregate):
                    check_path(value.operand.path, "attribute template")
            walk(expr.body)
        elif isinstance(expr, q.PathExpr):
            check_path(expr.path, "output")
        elif isinstance(expr, q.AggregateExpr):
            check_path(expr.aggregate.operand.path, expr.aggregate.func)

    walk(query.body)


class FluxLikeEngine(GCXEngine):
    """Scope-granular buffer release driven by schema knowledge."""

    name = "flux-like"

    # Flux plans have coarsened signOff placements; they must never be
    # shared with plain GCX plans in a common cache.
    plan_namespace = "flux"

    def __init__(
        self,
        dtd: Dtd | None = None,
        record_series: bool = True,
        drain: bool = True,
        compiled: bool = True,
        compiled_eval: bool = True,
        codegen: bool = True,
        fused_lexer: bool = True,
    ):
        # Schema knowledge enables the scope-based release; without a
        # DTD the engine cannot prove any scope complete and keeps the
        # whole projection (gc_enabled=False path below).
        super().__init__(
            gc_enabled=dtd is not None,
            first_witness=True,
            record_series=record_series,
            drain=drain,
            compiled=compiled,
            compiled_eval=compiled_eval,
            codegen=codegen,
            fused_lexer=fused_lexer,
        )
        self.dtd = dtd

    def _cache_namespace(self) -> str:
        # Scope coarsening only happens with schema knowledge, so a
        # DTD-less engine compiles different plans than a schema-aware
        # one and the two must not share cache entries.
        return (
            f"{self.plan_namespace}:fw={int(self.first_witness)}"
            f":dtd={int(self.dtd is not None)}"
        )

    def _compile(self, query_text: str, context=None) -> CompiledQuery:
        if context is None:
            parsed = parse_query(query_text)
            normalized = normalize_query(parsed)
        else:
            parsed, normalized = context
        _check_no_descendant_axes(normalized)
        analysis = analyze_query(normalized, first_witness=self.first_witness)
        if self.dtd is not None:
            self._coarsen_placements(analysis)
        rewritten = insert_signoffs(normalized, analysis)
        matcher = PathMatcher([(role.name, role.path) for role in analysis.roles])
        dfa = PathDFA(matcher)
        program = _try_compile_program(rewritten)
        return CompiledQuery(
            query_text,
            parsed,
            normalized,
            analysis,
            rewritten,
            matcher,
            dfa=dfa,
            program=program,
            kernels=generate_plan_kernels(dfa, analysis, program),
        )

    @staticmethod
    def _coarsen_placements(analysis) -> None:
        """Move every signOff one loop scope outward (re-rooted).

        The end of the enclosing loop's body is the closest moment a
        scope-granular scheduler can prove, from the schema, that the
        inner scope's data is dead.  Hoisted (join) placements are
        already coarse and placements at query end cannot move.
        """
        new_placements: dict = {}
        for var, roles in analysis.placements.items():
            for role in roles:
                if var is None:
                    target = None
                else:
                    target = analysis.binding_parents.get(var)
                if target is None:
                    role.signoff_var = None
                    if var is None:
                        new_path = role.signoff_path
                    else:
                        new_path = analysis.variable_paths[var].concat(
                            role.signoff_path
                        )
                    role.signoff_path = new_path
                else:
                    prefix = analysis.variable_paths[var].suffix_after(
                        analysis.variable_paths[target]
                    )
                    role.signoff_var = target
                    role.signoff_path = prefix.concat(role.signoff_path)
                role.placement_var = target
                new_placements.setdefault(target, []).append(role)
        analysis.placements = new_placements
