"""Baseline engines for the paper's comparative evaluation (Figure 5).

The paper compares GCX against full in-memory XQuery engines (Galax,
Saxon, QizX), the schema-based streaming engine FluXQuery, and the
disk-based MonetDB/XQuery.  We rebuild the two *classes* of main-memory
competitor the buffering claim is about (DESIGN.md §4):

* :class:`FullDomEngine` — parses the entire document into a DOM and
  evaluates the query over it.  Stand-in for Galax / Saxon / QizX:
  memory linear in the document, no projection, no GC.  Also the
  semantics oracle for differential testing.
* :class:`ProjectionOnlyEngine` — static projection of the input
  (Marian & Siméon style): buffers exactly the projected document and
  never purges.  Realised as GCX with garbage collection disabled —
  identical code path, which makes the ablation exact.
* :class:`FluxLikeEngine` — schema-aware streaming with scope-based
  buffer release: purges at the *enclosing* scope boundary instead of
  GCX's per-node preemption points, and (like the real FluXQuery in
  the paper's Figure 5) rejects descendant-axis queries as ``n/a``.

All engines expose the same ``query(query_text, xml_text) -> RunResult``
interface as :class:`repro.GCXEngine`.
"""

from repro.baselines.dom_engine import FullDomEngine
from repro.baselines.projection_engine import ProjectionOnlyEngine
from repro.baselines.flux_engine import FluxLikeEngine, UnsupportedQueryError

__all__ = [
    "FluxLikeEngine",
    "FullDomEngine",
    "ProjectionOnlyEngine",
    "UnsupportedQueryError",
]
