"""Reference XPath evaluation over the DOM.

This evaluator defines the semantics that the streaming engine must
agree with; the test suite uses it both directly (unit tests on paths)
and indirectly (the full-DOM baseline engine evaluates queries with it,
and differential tests compare GCX output against that oracle).

Two result modes exist:

* **node-set mode** (default): duplicates removed, document order —
  standard XPath semantics.
* **derivation mode** (``count_derivations=True``): one result entry
  per *match derivation*.  A node reachable from the context via two
  different instantiations of a descendant step appears twice.  This is
  exactly the multiplicity with which GCX assigns roles ("a role can be
  assigned to a node multiple times when queries involve the XPath
  descendant axis"), so the oracle can check the buffer's role counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmlio.dom import DomNode
from repro.xpath.ast import Axis, Path, Step


@dataclass(frozen=True)
class AttributeRef:
    """An attribute selected by the ``attribute`` axis.

    Our data model stores attributes inline on their owner element (as
    GCX copies them with the start-tag token), so the attribute axis
    yields lightweight references rather than tree nodes.
    """

    owner: DomNode
    name: str
    value: str

    @property
    def order(self) -> tuple:
        return (self.owner.order, self.name)


def item_string_value(item) -> str:
    """XPath string value of a node or attribute reference."""
    if isinstance(item, AttributeRef):
        return item.value
    return item.string_value()


def _axis_candidates(item, axis: Axis):
    """Yield candidate items along *axis* from *item* in document order."""
    if isinstance(item, AttributeRef):
        if axis is Axis.SELF:
            yield item
        return
    if axis is Axis.CHILD:
        yield from item.children
    elif axis is Axis.SELF:
        yield item
    elif axis is Axis.DESCENDANT:
        yield from item.iter_descendants(include_self=False)
    elif axis is Axis.DESCENDANT_OR_SELF:
        yield from item.iter_descendants(include_self=True)
    elif axis is Axis.ATTRIBUTE:
        if item.is_element:
            for name in sorted(item.attributes):
                yield AttributeRef(item, name, item.attributes[name])
    else:  # pragma: no cover - all axes handled
        raise AssertionError(f"unhandled axis {axis}")


def _matches(item, step: Step) -> bool:
    if isinstance(item, AttributeRef):
        if step.axis is not Axis.ATTRIBUTE and step.axis is not Axis.SELF:
            return False
        if step.test.kind == "wildcard":
            return True
        return step.test.kind == "name" and step.test.name == item.name
    if item.is_text:
        return step.test.matches_text()
    if item.is_document:
        # The document node only matches node() tests (it has no tag
        # visible to name tests); relevant for descendant-or-self from /.
        return step.test.kind == "node"
    if step.axis is Axis.ATTRIBUTE:
        return False
    return step.test.matches_element(item.tag)


def _apply_step(frontier, step: Step):
    """Expand every frontier item through *step*, preserving derivations."""
    result = []
    for item in frontier:
        matched = (
            cand
            for cand in _axis_candidates(item, step.axis)
            if _matches(cand, step)
        )
        if step.position is not None:
            for index, cand in enumerate(matched, start=1):
                if index == step.position:
                    result.append(cand)
                    break
        else:
            result.extend(matched)
    return result


def evaluate_path(path: Path, context, count_derivations: bool = False):
    """Evaluate *path* from *context* (a DomNode, or the document node
    for absolute paths).

    Args:
        path: the location path.
        context: context node; for absolute paths this must be (or have
            as ancestor-or-self) the ``#document`` node.
        count_derivations: keep one entry per match derivation instead
            of producing a duplicate-free node set.

    Returns:
        list of ``DomNode`` / ``AttributeRef`` items.  In node-set mode
        the list is in document order without duplicates.
    """
    if path.absolute:
        node = context
        while node.parent is not None:
            node = node.parent
        frontier = [node]
    else:
        frontier = [context]
    for step in path.steps:
        frontier = _apply_step(frontier, step)
        if not frontier:
            break
    if count_derivations:
        return frontier
    seen = set()
    unique = []
    for item in frontier:
        key = id(item) if isinstance(item, DomNode) else (id(item.owner), item.name)
        if key not in seen:
            seen.add(key)
            unique.append(item)
    unique.sort(key=_document_order_key)
    return unique


def _document_order_key(item) -> tuple:
    """Total order consistent with document order for nodes and attrs."""
    if isinstance(item, AttributeRef):
        return item.order
    return (item.order, "")
