"""Recursive-descent parser for the supported XPath fragment.

Grammar (whitespace insensitive)::

    path       :=  '/' rel-path? | rel-path
    rel-path   :=  step (('/' | '//') step)*
    step       :=  axis-spec? node-test predicate?
    axis-spec  :=  AXISNAME '::'  |  '@'
    node-test  :=  NAME | '*' | 'text' '(' ')' | 'node' '(' ')'
    predicate  :=  '[' INTEGER ']'          # only [1] is meaningful

``//`` abbreviates ``/descendant-or-self::node()/`` as in XPath; a
leading ``//`` is likewise supported.  Only the positional predicate
``[1]`` (first witness) is accepted, matching the role language of the
paper.
"""

from __future__ import annotations

import re

from repro.xpath.ast import Axis, NodeTest, Path, Step

_TOKEN_RE = re.compile(
    r"""
    (?P<dslash>//)
  | (?P<slash>/)
  | (?P<axis>(?:child|descendant-or-self|descendant|self|attribute)::)
  | (?P<at>@)
  | (?P<func>(?:text|node)\s*\(\s*\))
  | (?P<star>\*)
  | (?P<pred>\[\s*\d+\s*\])
  | (?P<name>[A-Za-z_][\w.-]*)
  | (?P<dot>\.)
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)

_AXIS_BY_NAME = {
    "child": Axis.CHILD,
    "descendant": Axis.DESCENDANT,
    "descendant-or-self": Axis.DESCENDANT_OR_SELF,
    "self": Axis.SELF,
    "attribute": Axis.ATTRIBUTE,
}


class XPathParseError(ValueError):
    """Raised when a path expression cannot be parsed."""


def _lex(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise XPathParseError(
                f"unexpected character {text[pos]!r} in path {text!r}"
            )
        kind = match.lastgroup
        if kind != "ws":
            tokens.append((kind, match.group(0)))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str):
        self._text = text
        self._tokens = _lex(text)
        self._index = 0

    def _peek(self) -> str | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index][0]
        return None

    def _next(self) -> tuple[str, str]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def parse(self) -> Path:
        steps: list[Step] = []
        absolute = False
        kind = self._peek()
        if kind == "slash":
            absolute = True
            self._next()
            if self._peek() is None:
                return Path((), absolute=True)
        elif kind == "dslash":
            absolute = True
            self._next()
            steps.append(Step(Axis.DESCENDANT_OR_SELF, NodeTest("node")))
        elif kind == "dot":
            self._next()
            if self._peek() is not None:
                raise XPathParseError(f"unexpected tokens after '.' in {self._text!r}")
            return Path((), absolute=False)
        steps.append(self._parse_step())
        while self._peek() in ("slash", "dslash"):
            kind, _ = self._next()
            if kind == "dslash":
                steps.append(Step(Axis.DESCENDANT_OR_SELF, NodeTest("node")))
            steps.append(self._parse_step())
        if self._peek() is not None:
            kind, text = self._tokens[self._index]
            raise XPathParseError(f"unexpected {text!r} in path {self._text!r}")
        return Path(_collapse_descendant_abbreviation(steps), absolute)

    def _parse_step(self) -> Step:
        kind = self._peek()
        if kind is None:
            raise XPathParseError(f"path {self._text!r} ends unexpectedly")
        axis = Axis.CHILD
        if kind == "axis":
            _, text = self._next()
            axis = _AXIS_BY_NAME[text[:-2].strip()]
        elif kind == "at":
            self._next()
            axis = Axis.ATTRIBUTE
        kind = self._peek()
        if kind == "func":
            _, text = self._next()
            func = "text" if text.startswith("text") else "node"
            test = NodeTest(func)
        elif kind == "star":
            self._next()
            test = NodeTest("wildcard")
        elif kind == "name":
            _, text = self._next()
            test = NodeTest("name", text)
        else:
            raise XPathParseError(f"expected a node test in path {self._text!r}")
        position = None
        if self._peek() == "pred":
            _, text = self._next()
            position = int(text.strip("[] \t"))
            if position < 1:
                raise XPathParseError(
                    f"positional predicates are 1-based, got {text}"
                )
        if axis is Axis.ATTRIBUTE and test.kind not in ("name", "wildcard"):
            raise XPathParseError("attribute axis requires a name or * test")
        return Step(axis, test, position)


def _collapse_descendant_abbreviation(steps: list[Step]) -> tuple[Step, ...]:
    """Rewrite ``descendant-or-self::node()/child::t`` into
    ``descendant::t``.

    The two forms select the same node set with the same derivation
    multiplicity (every node has exactly one parent), but the collapsed
    form evaluates as a *single* location step, which keeps streaming
    iteration over ``//t`` in document order.  The collapse is skipped
    when the child step carries the first-witness predicate: ``//t[1]``
    means "first t-child per ancestor", not "first t-descendant".
    """
    collapsed: list[Step] = []
    index = 0
    while index < len(steps):
        step = steps[index]
        next_step = steps[index + 1] if index + 1 < len(steps) else None
        if (
            step.axis is Axis.DESCENDANT_OR_SELF
            and step.test.kind == "node"
            and step.position is None
            and next_step is not None
            and next_step.axis is Axis.CHILD
            and next_step.position is None
        ):
            collapsed.append(Step(Axis.DESCENDANT, next_step.test))
            index += 2
        else:
            collapsed.append(step)
            index += 1
    return tuple(collapsed)


def parse_path(text: str) -> Path:
    """Parse *text* into a :class:`~repro.xpath.ast.Path`.

    Raises:
        XPathParseError: if the expression is outside the fragment.
    """
    text = text.strip()
    if not text:
        raise XPathParseError("empty path expression")
    return _Parser(text).parse()
