"""XPath fragment: AST, parser, and DOM reference evaluator.

GCX's projection paths and signOff paths are XPath expressions over the
axes ``child``, ``descendant``, ``descendant-or-self``, ``self`` and
``attribute``, with name/wildcard/``text()``/``node()`` tests and the
first-witness positional predicate ``[1]`` (written ``price[1]`` in the
paper's role table).
"""

from repro.xpath.ast import (
    Axis,
    NodeTest,
    Path,
    Step,
    child_step,
    descendant_or_self_node,
)
from repro.xpath.parser import XPathParseError, parse_path
from repro.xpath.evaluator import AttributeRef, evaluate_path, item_string_value

__all__ = [
    "AttributeRef",
    "Axis",
    "NodeTest",
    "Path",
    "Step",
    "XPathParseError",
    "child_step",
    "descendant_or_self_node",
    "evaluate_path",
    "item_string_value",
    "parse_path",
]
