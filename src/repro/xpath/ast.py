"""XPath abstract syntax.

Paths are immutable so they can serve as dictionary keys in the role
table (each projection path defines a role — paper, Section 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Axis(enum.Enum):
    """The XPath axes supported by the GCX fragment."""

    CHILD = "child"
    DESCENDANT = "descendant"
    DESCENDANT_OR_SELF = "descendant-or-self"
    SELF = "self"
    ATTRIBUTE = "attribute"


@dataclass(frozen=True)
class NodeTest:
    """A node test: a tag name, ``*``, ``text()`` or ``node()``.

    ``name`` holds the tag for name tests and is ``None`` otherwise;
    ``kind`` is one of ``"name"``, ``"wildcard"``, ``"text"``,
    ``"node"``.
    """

    kind: str
    name: str | None = None

    def matches_element(self, tag: str) -> bool:
        """True if an element with *tag* satisfies this test."""
        if self.kind == "name":
            return self.name == tag
        return self.kind in ("wildcard", "node")

    def matches_text(self) -> bool:
        """True if a text node satisfies this test."""
        return self.kind in ("text", "node")

    def __str__(self) -> str:
        if self.kind == "name":
            return self.name or ""
        if self.kind == "wildcard":
            return "*"
        return f"{self.kind}()"


NAME = lambda tag: NodeTest("name", tag)  # noqa: E731 - concise constructors
WILDCARD = NodeTest("wildcard")
TEXT_TEST = NodeTest("text")
NODE_TEST = NodeTest("node")


@dataclass(frozen=True)
class Step:
    """One location step ``axis::test`` with an optional ``[n]``.

    ``position`` encodes a positional predicate: the step selects, per
    context node, only the n-th matching node in document order.  The
    paper's role language uses exactly ``[1]`` (the first-witness
    predicate of role r4, ``/bib/*/price[1]``); we support arbitrary n
    as a generalisation.  For backwards compatibility ``position`` also
    accepts booleans (``True`` = 1).
    """

    axis: Axis
    test: NodeTest
    position: int | None = None

    def __post_init__(self):
        # normalise the legacy boolean form of the first-witness flag
        if self.position is True:
            object.__setattr__(self, "position", 1)
        elif self.position is False:
            object.__setattr__(self, "position", None)

    @property
    def first_only(self) -> bool:
        """True for the paper's first-witness predicate ``[1]``."""
        return self.position == 1

    def __str__(self) -> str:
        if self.axis is Axis.ATTRIBUTE:
            base = f"@{self.test}"
        elif self.axis is Axis.CHILD:
            base = str(self.test)
        else:
            base = f"{self.axis.value}::{self.test}"
        return base + (f"[{self.position}]" if self.position else "")


@dataclass(frozen=True)
class Path:
    """A location path.

    ``absolute`` paths start at the document root; relative paths start
    at a context node (in GCX, the current binding of a variable).
    """

    steps: tuple[Step, ...] = ()
    absolute: bool = False

    def __str__(self) -> str:
        body = "/".join(str(s) for s in self.steps)
        if self.absolute:
            return "/" + body
        return body or "."

    @property
    def is_root(self) -> bool:
        """True for the bare root path ``/``."""
        return self.absolute and not self.steps

    def concat(self, other: Path) -> Path:
        """Append a relative path to this one."""
        if other.absolute:
            raise ValueError("cannot concatenate an absolute path")
        return Path(self.steps + other.steps, self.absolute)

    def child(self, test: NodeTest, first_only: bool = False) -> Path:
        """Extend with a child step."""
        return Path(
            self.steps + (Step(Axis.CHILD, test, first_only),), self.absolute
        )

    def step(self, step: Step) -> Path:
        """Extend with an arbitrary step."""
        return Path(self.steps + (step,), self.absolute)

    def with_descendant_or_self(self) -> Path:
        """Extend with ``descendant-or-self::node()`` (subtree roles).

        Idempotent: paths already ending in the subtree step are
        returned unchanged, so role derivation never stacks two.
        """
        dos = Step(Axis.DESCENDANT_OR_SELF, NODE_TEST)
        if self.steps and self.steps[-1] == dos:
            return self
        return Path(self.steps + (dos,), self.absolute)

    def starts_with(self, prefix: Path) -> bool:
        """True if *prefix*'s steps are a prefix of this path's steps."""
        if prefix.absolute != self.absolute:
            return False
        return self.steps[: len(prefix.steps)] == prefix.steps

    def suffix_after(self, prefix: Path) -> Path:
        """The relative remainder of this path after *prefix*."""
        if not self.starts_with(prefix):
            raise ValueError(f"{self} does not start with {prefix}")
        return Path(self.steps[len(prefix.steps) :], absolute=False)


def child_step(tag: str, first_only: bool = False) -> Step:
    """Convenience constructor for ``child::tag``."""
    return Step(Axis.CHILD, NodeTest("name", tag), first_only)


def descendant_or_self_node() -> Step:
    """Convenience constructor for ``descendant-or-self::node()``."""
    return Step(Axis.DESCENDANT_OR_SELF, NODE_TEST)


ROOT = Path((), absolute=True)
