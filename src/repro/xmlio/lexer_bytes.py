"""Bytes-domain zero-copy XML tokenizer (DESIGN.md §11).

The production twin of :class:`repro.xmlio.lexer.XmlLexer`: the same
truly incremental, restartable scanner, but the hot loops run over the
**raw UTF-8 wire bytes** instead of decoded ``str``.  Documents arrive
from sockets and files as bytes; decoding every byte to code points
before scanning paid three full passes over data whose markup structure
is pure ASCII.  This lexer removes them:

* markup is recognised with the *identical* regex patterns compiled
  over ``bytes`` (the pattern sources are shared module constants in
  :mod:`repro.xmlio.lexer`), and text/CDATA/comment scans ride
  ``bytes.find`` — the C ``memchr`` path;
* tag and attribute names are decoded and interned **once at first
  sight** per lexer (a ``bytes → str`` cache), so the tokens and
  events downstream consumers see still carry ordinary interned
  strings;
* character data is carried as byte spans and decoded **lazily**: a
  text run is decoded only when it is actually emitted (or must be
  classified beyond the ASCII fast checks).  Content inside skipped
  subtrees is mostly never decoded — :meth:`ByteXmlLexer.skip_subtree`
  treats ASCII-classifiable runs as opaque bytes (so invalid UTF-8
  there can go unnoticed), decoding only runs that need Unicode
  whitespace classification or entity validation; tags are always
  validated.

UTF-8 is safe to scan byte-wise: every multi-byte sequence uses bytes
``>= 0x80``, so searching for ASCII delimiters (``<``, ``>``, quotes,
``&``) can never hit the middle of a character.

**Offsets are byte offsets.**  The str lexer reports character
offsets; for pure-ASCII documents the two coincide, for multi-byte
documents this lexer's error positions point at bytes — which is what
a caller holding the wire bytes needs.  Invalid UTF-8 encountered on
any decoded path raises :class:`~repro.xmlio.errors.XmlSyntaxError`
with the exact byte position of the offending byte, never a bare
``UnicodeDecodeError``.

The str lexer remains the **oracle**: a differential suite
(``tests/test_lexer_bytes.py``) holds this implementation to the same
tokens, events, errors and whitespace-significance decisions at every
byte-level chunk split, including multi-byte characters, entity
references and CDATA sections cut mid-sequence.
"""

from __future__ import annotations

import re
import sys
from collections.abc import Callable, Iterable, Iterator

from repro.xmlio.errors import FreezeSignal, XmlStarvedError, XmlSyntaxError
from repro.xmlio.lexer import (
    ATTR_SRC,
    END_TAG_SRC,
    NON_WS_SRC,
    START_TAG_SRC,
    _is_name_char,
    _is_name_start,
    _LONGEST_PREFIX,
    _MARKUP_PREFIXES,
    _Starved,
    resolve_entities_text,
)
from repro.xmlio.tokens import (
    EVENT_END,
    EVENT_START,
    EVENT_TEXT,
    Attribute,
    EndTag,
    StartTag,
    Text,
    Token,
    TokenKind,
)

# The identical fast-path recognisers, compiled over bytes.  Both
# domains share one pattern source of truth, so the regexes cannot
# drift apart; the character classes are pure ASCII, which over bytes
# means they can never match inside a multi-byte UTF-8 sequence.
_START_TAG_RE_B = re.compile(START_TAG_SRC.encode("ascii"))
_ATTR_RE_B = re.compile(ATTR_SRC.encode("ascii"))
_END_TAG_RE_B = re.compile(END_TAG_SRC.encode("ascii"))
_NON_WS_RE_B = re.compile(NON_WS_SRC.encode("ascii"))

_MARKUP_PREFIXES_B = tuple(p.encode("ascii") for p in _MARKUP_PREFIXES)

#: per-byte "is an ASCII name character" table — the bytes-domain twin
#: of ``_is_name_char`` for the 7-bit range (multi-byte characters go
#: through the decoded predicate).
_ASCII_NAME_CHAR = tuple(
    chr(b).isalnum() or chr(b) in "_:.-" for b in range(128)
)

#: per-byte "is significant on its own" table: an ASCII byte that is
#: not Unicode whitespace.  The skip fast path uses it to classify a
#: text run from its first non-XML-whitespace byte without decoding.
_ASCII_SIGNIFICANT = tuple(not chr(b).isspace() for b in range(128))

#: the same table as packed bytes, handed to the optional C scanner so
#: both sides classify significance from one source of truth.
_SIG_TABLE = bytes(_ASCII_SIGNIFICANT)

# Optional C batch scanner (DESIGN.md §15): compiled on first use from
# _cscan.c when a toolchain is present, else None — the pure-Python
# batch loops below are the complete implementation either way, and the
# C loops only ever consume constructs those loops would consume.
try:
    from repro.xmlio import cscan as _cscan_mod

    _CSCAN = _cscan_mod.scanner
except Exception:  # pragma: no cover - loader is best-effort by design
    _CSCAN = None

_intern = sys.intern

_BYTES_LIKE = (bytes, bytearray, memoryview)


class ByteXmlLexer:
    """Pull-based tokenizer over incremental **bytes** input.

    The public surface mirrors :class:`~repro.xmlio.lexer.XmlLexer`
    exactly — ``next_token`` / ``next_event`` / ``tokens_into`` /
    ``skip_subtree`` / ``feed`` / ``close`` — and emits the very same
    token objects and event tuples (``str`` names and content).  Only
    the input representation and the offset domain (bytes) differ.

    Args:
        source: a complete document as ``bytes`` (also ``bytearray`` /
            ``memoryview``), an iterable of bytes chunks (pulled
            lazily), or ``None`` for push mode (``feed()`` /
            ``close()``).
        keep_whitespace: emit whitespace-only text tokens instead of
            dropping them.
        refill: optional zero-argument callable returning the next
            bytes chunk (or ``None``/``b""`` at end of input).
            Mutually exclusive with an iterable *source*.
    """

    def __init__(
        self,
        source: bytes | Iterable[bytes] | None = None,
        keep_whitespace: bool = False,
        refill: Callable[[], bytes | None] | None = None,
    ):
        self._buf = b""
        self._pos = 0
        #: absolute byte offset of ``self._buf[0]`` in the document.
        self._base = 0
        self._keep_whitespace = keep_whitespace
        self._open_tags: list[str] = []
        self._started = False
        self._pending_end: tuple[str, int] | None = None
        self._resume = 0
        self._need: bytes | None = None
        self._pending_chunks: list[bytes] = []
        self._joint = b""
        #: raw text of the internal DTD subset, if a DOCTYPE carried one.
        self.internal_subset: str | None = None
        self._closed = False
        self._refill: Callable[[], bytes | None] | None = None
        #: a ``skip_subtree`` interrupted by a freeze parks its loop
        #: locals here as ``(target, count)``; the next call resumes.
        self._skip_parked: tuple[int, int] | None = None
        #: decode-once caches: raw name bytes → interned str, and the
        #: reverse (the skip fast path compares expected end tags as
        #: bytes without re-encoding).
        self._names: dict[bytes, str] = {}
        self._name_bytes: dict[str, bytes] = {}
        #: per-name immutable event tuples — repeated tags append the
        #: same ``(kind, name, None, None)`` object instead of paying a
        #: tuple allocation per event.  The start cache is keyed by
        #: the raw name bytes so the fast path resolves slice → event
        #: in a single dict hit.
        self._start_events: dict[bytes, tuple] = {}
        self._end_events: dict[str, tuple] = {}
        if isinstance(source, _BYTES_LIKE):
            self._buf = bytes(source)
        elif isinstance(source, str):
            raise TypeError(
                "ByteXmlLexer scans bytes; use XmlLexer (or make_lexer) "
                "for str input"
            )
        elif source is not None:
            chunks = iter(source)

            def _next_nonempty() -> bytes | None:
                # Empty chunks are legitimate and must not read as end
                # of input — only iterator exhaustion does.
                for chunk in chunks:
                    if chunk:
                        return bytes(chunk)
                return None

            self._refill = _next_nonempty
        if refill is not None:
            if self._refill is not None:
                raise TypeError(
                    "pass either an iterable source or refill=, not both"
                )
            self._refill = refill
        # A plain bytes object with no refill source is complete input.
        if isinstance(source, _BYTES_LIKE) and self._refill is None:
            self._closed = True
        self._joint = self._buf[-2:]

    # ------------------------------------------------------------------
    # incremental input
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once end of input has been signalled."""
        return self._closed

    def feed(self, chunk: bytes) -> "ByteXmlLexer":
        """Append *chunk* to the pending input (push mode)."""
        if self._closed:
            raise ValueError("cannot feed a closed lexer")
        if isinstance(chunk, str):
            raise TypeError(
                "ByteXmlLexer.feed() takes bytes; use XmlLexer for str input"
            )
        if chunk:
            self._append(bytes(chunk))
        return self

    def close(self) -> "ByteXmlLexer":
        """Signal end of input; pending partial tokens become errors."""
        self._closed = True
        return self

    def _append(self, chunk: bytes) -> None:
        """Merge parked chunks + *chunk* into the scan buffer,
        compacting consumed bytes out of it."""
        if self._pos:
            self._base += self._pos
            self._buf = self._buf[self._pos :]
            self._pos = 0
        if self._pending_chunks:
            self._pending_chunks.append(chunk)
            self._buf += b"".join(self._pending_chunks)
            self._pending_chunks.clear()
        else:
            self._buf += chunk
        self._joint = self._buf[-2:]
        self._need = None

    def _handle_starvation(self) -> None:
        """Refill the buffer after a mid-token starvation signal (the
        same chunk-parking strategy as the str lexer, in bytes)."""
        if self._refill is None:
            # a skip_subtree interrupted mid-flight may have parked
            # raw-bytes tag names on the stack; hand control back with
            # every invariant restored
            self._normalize_skipped_tags(-1)
            raise XmlStarvedError(
                "no complete token buffered; feed() more input "
                "or close() the lexer"
            ) from None
        while True:
            chunk = self._refill()
            if not chunk:
                self._closed = True
                self._append(b"")  # merge any parked chunks
                return
            chunk = bytes(chunk)
            if (
                self._need is not None
                and self._need not in self._joint + chunk
            ):
                # The construct's terminator is not in this chunk (nor
                # straddling the boundary): park it without a merge.
                self._pending_chunks.append(chunk)
                self._joint = (self._joint + chunk)[-2:]
                continue
            self._append(chunk)
            return

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Complete restart state as a dict of primitives.

        Safe at any point the lexer is not inside a scan call — i.e.
        quiescent between pulls, starved, or unwound by a
        :class:`~repro.xmlio.errors.FreezeSignal` (every starve/freeze
        path commits state before raising).  The binary encoding lives
        in ``repro.core.snapshot``.
        """
        # a frozen mid-skip stack was normalized on the way out; do it
        # again defensively — it is idempotent and cheap
        self._normalize_skipped_tags(-1)
        return {
            # consumed input is compacted away; ``base`` keeps offsets
            # absolute so restored error positions are byte-exact
            "buf": self._buf[self._pos :],
            "base": self._base + self._pos,
            "keep_whitespace": self._keep_whitespace,
            "open_tags": list(self._open_tags),
            "started": self._started,
            "closed": self._closed,
            "pending_end": self._pending_end,
            "resume": self._resume,
            "need": self._need,
            "pending_chunks": list(self._pending_chunks),
            "joint": self._joint,
            "internal_subset": self.internal_subset,
            # raw name bytes; restore re-interns to rebuild all four
            # decode-once caches exactly (UTF-8 names are bijective)
            "names": list(self._names),
            "skip_parked": self._skip_parked,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`snapshot_state` dict, replacing all restart
        state.  The lexer then continues byte-identically to the one
        the state was taken from."""
        self._buf = bytes(state["buf"])
        self._pos = 0
        self._base = state["base"]
        self._keep_whitespace = state["keep_whitespace"]
        self._started = state["started"]
        self._closed = state["closed"]
        self._pending_end = state["pending_end"]
        self._resume = state["resume"]
        self._need = state["need"]
        self._pending_chunks = list(state["pending_chunks"])
        self._joint = state["joint"]
        self.internal_subset = state["internal_subset"]
        self._skip_parked = state["skip_parked"]
        self._names.clear()
        self._name_bytes.clear()
        self._start_events.clear()
        self._end_events.clear()
        for raw in state["names"]:
            self._intern_name(bytes(raw), 0)
        self._open_tags = list(state["open_tags"])

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def next_token(self) -> Token | None:
        """Return the next token, or ``None`` at end of input.

        Raises:
            XmlSyntaxError: on malformed markup, mismatched tags, or
                invalid UTF-8 (byte position reported).
            XmlStarvedError: in push mode, when no complete token is
                buffered and the lexer has not been closed.
        """
        while True:
            try:
                return self._pull_token()
            except _Starved:
                self._handle_starvation()

    def __iter__(self) -> Iterator[Token]:
        while True:
            token = self.next_token()
            if token is None:
                return
            yield token

    @property
    def depth(self) -> int:
        """Number of currently open elements."""
        return len(self._open_tags)

    # ------------------------------------------------------------------
    # event fast path (the compiled kernel's input surface)
    # ------------------------------------------------------------------

    def next_event(self) -> tuple | None:
        """Return the next event ``(kind, name, attrs, text)``, or
        ``None`` at end of input — see
        :meth:`~repro.xmlio.lexer.XmlLexer.next_event`.  Names and
        text are ``str`` (decoded lazily); classification, whitespace
        policy and errors match the str lexer.
        """
        while True:
            try:
                return self._scan_event()
            except _Starved:
                self._handle_starvation()

    def tokens_into(self, sink: list, limit: int = 4096) -> int:
        """Append up to *limit* events (see :meth:`next_event`) to
        *sink*; returns the number appended — ``0`` at end of input.

        This is a **fused batch loop**: the common cases — text runs,
        regex-recognised tags closing the expected element — are
        scanned with every hot binding held in locals, no per-event
        method dispatch.  Anything rare (markup other than tags,
        attribute errors, buffer exhaustion, root-level bookkeeping)
        bails out to :meth:`next_event`, whose classification this
        loop reproduces exactly.
        """
        return self._batch_into(sink, limit, None)

    def project_into(self, sink: list, live: dict, limit: int = 4096) -> int:
        """:meth:`tokens_into` with a plan's tag alphabet fused in —
        the input surface of the generated lexer front-end
        (DESIGN.md §15).

        Appends events to *sink* exactly like :meth:`tokens_into`, but
        stops the batch right after committing a non-self-closing
        start event whose name is not in *live* — the cursor is then
        positioned directly behind that start tag, so the caller's
        next :meth:`skip_subtree` consumes exactly the subtree it
        decided not to tokenize.  Returns the number of events
        appended, **negated** when the batch stopped at such a dead
        start (self-closing dead tags are not worth a stop: their
        "subtree" is the already-appended synthetic end event, except
        on the careful path, where the pending synthetic end is left
        for :meth:`skip_subtree` to consume).

        One further contract difference: this method never blocks for
        more input while at least one event is already appended — a
        fused projector drains what exists before the stream starves,
        keeping event delivery as incremental as the per-event path.
        """
        return self._batch_into(sink, limit, live)

    def _batch_into(self, sink: list, limit: int, live: dict | None) -> int:
        count = 0
        append = sink.append
        scan_event = self._scan_event
        keep_ws = self._keep_whitespace
        names = self._names
        names_get = names.get
        name_bytes = self._name_bytes
        start_events = self._start_events
        start_events_get = start_events.get
        end_events = self._end_events
        start_match = _START_TAG_RE_B.match
        non_ws_search = _NON_WS_RE_B.search
        resolve = resolve_entities_text
        tags = self._open_tags
        c_tokens = _CSCAN.tokens if _CSCAN is not None else None
        while count < limit:
            if self._pending_end is None and not self._resume and tags:
                buf = self._buf
                size = len(buf)
                pos = self._pos
                base = self._base
                while count < limit and pos < size:
                    if c_tokens is not None:
                        # C batch scan: consumes known attribute-less
                        # tags and plain text runs, then returns at the
                        # first construct it must not commit — which the
                        # dispatch below (or the careful path) handles,
                        # after which the loop re-enters the C scan.
                        pos, count = c_tokens(
                            buf,
                            pos,
                            sink,
                            count,
                            limit,
                            names,
                            start_events,
                            name_bytes,
                            end_events,
                            tags,
                            keep_ws,
                            _SIG_TABLE,
                            live,
                        )
                        if (
                            live is not None
                            and count
                            and sink[-1][0] == 0
                            and sink[-1][1] not in live
                        ):
                            # the C scan committed a dead start and
                            # stopped right behind it (only non-self-
                            # closing starts stop the C batch)
                            self._pos = pos
                            return -count
                        if count >= limit or pos >= size or not tags:
                            break
                    b = buf[pos]
                    if b != 0x3C:  # text run
                        end = buf.find(b"<", pos)
                        if end == -1:
                            break  # runs to buffer end: starve/EOF logic
                        if not keep_ws and non_ws_search(buf, pos, end) is None:
                            pos = end
                            continue
                        try:
                            raw = buf[pos:end].decode("utf-8")
                        except UnicodeDecodeError:
                            break  # careful path reports the byte position
                        if "&" in raw:
                            try:
                                raw = resolve(raw, base + pos)
                            except XmlSyntaxError:
                                self._pos = pos
                                raise
                        if not keep_ws and not raw.strip():
                            pos = end
                            continue
                        append((2, None, None, raw))
                        count += 1
                        pos = end
                        continue
                    if pos + 1 >= size:
                        break
                    if buf[pos + 1] == 0x2F:  # "/": end tag
                        # compare raw bytes against the tag that must
                        # close — no regex, no decode, one dict hit
                        name = tags[-1]
                        expected = name_bytes[name]
                        end = pos + 2 + len(expected)
                        if not (
                            buf.startswith(expected, pos + 2)
                            and end < size
                            and buf[end] == 0x3E  # ">"
                        ):
                            break  # ws variant/mismatch/incomplete
                        tags.pop()
                        pos = end + 1
                        append(end_events[name])
                        count += 1
                        if not tags:
                            break  # root closed: EOF/trailing bookkeeping
                        continue
                    # start tag: a previously seen attribute-less tag is
                    # exactly "<" + cached name bytes (+ "/") + ">" —
                    # memchr to ">" and one dict hit, no regex, and the
                    # cached per-name event tuple costs no allocation
                    gt = buf.find(b">", pos + 1)
                    if gt == -1:
                        break  # incomplete markup: starve/EOF logic
                    if buf[gt - 1] == 0x2F:  # self-closing candidate
                        event = start_events_get(buf[pos + 1 : gt - 1])
                        if event is not None:
                            name = event[1]
                            append(event)
                            count += 1
                            tags.append(name)
                            if count < limit:
                                append(end_events[name])
                                count += 1
                                tags.pop()
                            else:
                                self._pending_end = (name, base + pos)
                            pos = gt + 1
                            continue
                    else:
                        event = start_events_get(buf[pos + 1 : gt])
                        if event is not None:
                            append(event)
                            count += 1
                            tags.append(event[1])
                            pos = gt + 1
                            if live is not None and event[1] not in live:
                                self._pos = pos
                                return -count
                            continue
                    match = start_match(buf, pos)
                    if match is None:
                        break  # comments/CDATA/PI/exotic tags/incomplete
                    astart, aend = match.span(2)
                    if aend > astart:
                        # attributes: shared commit path (dup checks,
                        # value decode + entity resolution)
                        self._pos = pos
                        append(self._event_from_start_match(match))
                        count += 1
                        pos = self._pos
                        if live is not None and sink[-1][1] not in live:
                            # dead start: stop here (a pending synthetic
                            # end for the self-closing form is consumed
                            # by the caller's skip_subtree)
                            return -count
                        if self._pending_end is not None:
                            break  # synthetic end via the careful path
                        continue
                    name_b = match.group(1)
                    name = names_get(name_b)
                    if name is None:
                        name = self._intern_name(name_b, match.start(1))
                    append((0, name, None, None))
                    count += 1
                    tags.append(name)
                    if match.group(3):  # self-closing
                        if count < limit:
                            append((1, name, None, None))
                            count += 1
                            tags.pop()
                        else:
                            self._pending_end = (name, base + pos)
                    elif live is not None and name not in live:
                        self._pos = match.end()
                        return -count
                    pos = match.end()
                self._pos = pos
                if count >= limit:
                    return count
            # careful path: one event through the single-event scanner
            # (the only rung that can block on more input — which a
            # projecting batch must not do while it holds events)
            try:
                event = scan_event()
            except _Starved:
                if live is not None and count:
                    return count
                self._handle_starvation()
                continue
            if event is None:
                return count
            append(event)
            count += 1
            if live is not None and event[0] == 0 and event[1] not in live:
                return -count
        return count

    def skip_subtree(self) -> int:
        """Fast-forward to (and through) the end tag of the innermost
        open element; returns the number of significant tokens consumed.

        The bytes-domain payoff lives here: a skipped subtree is pure
        ``bytes.find`` + tag validation.  Character data is decoded
        only when byte-level classification cannot settle its
        whitespace significance — a run whose first significant byte
        is ASCII non-space with no entity reference (the overwhelming
        majority) is treated as opaque bytes and is therefore not
        UTF-8-validated; runs needing Unicode classification or entity
        validation decode exactly like the token path would.
        Significance follows the same post-entity-resolution rules as
        the token path, so the significant-token count stays
        byte-identical to the str lexer's.
        """
        parked = self._skip_parked
        if parked is not None:
            # resuming a skip a freeze interrupted (possibly in a
            # restored twin of the lexer that parked it)
            self._skip_parked = None
            target, count = parked
        else:
            target = len(self._open_tags) - 1
            if target < 0:
                raise ValueError("skip_subtree() requires an open element")
            count = 0
        tags = self._open_tags
        names = self._names
        name_bytes = self._name_bytes
        non_ws_search = _NON_WS_RE_B.search
        ascii_sig = _ASCII_SIGNIFICANT
        keep_ws = self._keep_whitespace
        match_start = _START_TAG_RE_B.match
        c_skip = _CSCAN.skip if _CSCAN is not None else None
        while len(tags) > target:
            text = self._buf
            size = len(text)
            pos = self._pos
            depth = len(tags) - target
            try:
                while depth:
                    if self._pending_end is not None or pos >= size:
                        self._pos = pos
                        self._normalize_skipped_tags(target)
                        count += self._skip_once()
                        pos = self._pos
                        depth = len(tags) - target
                        continue
                    if c_skip is not None and not self._resume:
                        # C batch scan: fast-forwards through known
                        # tags and classifiable text, pushing interned
                        # str names, and returns at the first construct
                        # it must not commit — handled by the dispatch
                        # below before the loop re-enters the C scan.
                        pos, got = c_skip(
                            text,
                            pos,
                            names,
                            name_bytes,
                            tags,
                            target,
                            keep_ws,
                            _SIG_TABLE,
                        )
                        count += got
                        depth = len(tags) - target
                        if not depth or pos >= size:
                            continue
                    if text[pos] != 0x3C:  # "<"
                        end = text.find(b"<", pos + self._resume)
                        if end == -1:
                            if not self._closed:
                                self._resume = size - pos
                                self._pos = pos
                                raise self._starved(b"<")
                            end = size
                        self._resume = 0
                        # Significance without decode: an ASCII first
                        # significant byte that is no Unicode space,
                        # with no entity in the run, settles it.
                        if not keep_ws:
                            match = non_ws_search(text, pos, end)
                            if match is not None:
                                first = text[match.start()]
                                if (
                                    first < 0x80
                                    and ascii_sig[first]
                                    and text.find(b"&", pos, end) == -1
                                ):
                                    count += 1
                                elif self._skipped_text_significant(
                                    text, pos, end
                                ):
                                    count += 1
                        elif self._skipped_text_significant(text, pos, end):
                            count += 1
                        pos = end
                        continue
                    if pos + 1 < size and text[pos + 1] == 0x2F:  # "/"
                        # End tag: compare raw bytes against the tag we
                        # know must close (no regex, no decode; tags
                        # this very skip opened are still raw bytes).
                        expected = tags[-1]
                        if type(expected) is not bytes:
                            expected = name_bytes[expected]
                        end = pos + 2 + len(expected)
                        if (
                            text.startswith(expected, pos + 2)
                            and end < size
                            and text[end] == 0x3E  # ">"
                        ):
                            tags.pop()
                            depth -= 1
                            pos = end + 1
                            count += 1
                            continue
                    else:
                        # a known attribute-less tag is "<" + name
                        # bytes (+ "/") + ">": memchr + one dict
                        # membership, no regex — the raw slice goes on
                        # the stack undecoded
                        gt = text.find(b">", pos + 1)
                        if gt != -1:
                            if text[gt - 1] == 0x2F:  # self-closing
                                if text[pos + 1 : gt - 1] in names:
                                    count += 2
                                    pos = gt + 1
                                    continue
                            else:
                                raw_name = text[pos + 1 : gt]
                                if raw_name in names:
                                    tags.append(raw_name)
                                    depth += 1
                                    count += 1
                                    pos = gt + 1
                                    continue
                        match = match_start(text, pos)
                        if match is not None:
                            attrs_start, attrs_end = match.span(2)
                            if attrs_end > attrs_start:
                                self._pos = pos
                                self._validate_skipped_attrs(
                                    match, attrs_start, attrs_end
                                )
                            # first sight of this name: decode+intern
                            # once so later occurrences hit the
                            # membership fast path above
                            name = self._intern_name(
                                match.group(1), match.start(1)
                            )
                            pos = match.end()
                            if match.end(3) > match.start(3):
                                count += 2  # self-closing: start + end
                            else:
                                tags.append(name)
                                depth += 1
                                count += 1
                            continue
                    # Rare or malformed markup: the careful path.
                    self._pos = pos
                    self._normalize_skipped_tags(target)
                    count += self._skip_once()
                    pos = self._pos
                    depth = len(tags) - target
            except _Starved:
                try:
                    self._handle_starvation()
                except FreezeSignal:
                    # The session is freezing for a snapshot.  The
                    # stack may hold raw-bytes names this very skip
                    # pushed — intern them (idempotent), then park the
                    # loop locals so the next skip_subtree() call (on
                    # this lexer or a restored one) continues exactly
                    # here with the full significant-token count.
                    self._normalize_skipped_tags(-1)
                    self._skip_parked = (target, count)
                    raise
            else:
                self._pos = pos
        return count

    def _normalize_skipped_tags(self, target: int) -> None:
        """Intern the raw-bytes tag names the fused skip loop pushed,
        before handing control to paths that expect ``str`` names
        (careful skipping, error messages)."""
        tags = self._open_tags
        for index in range(target + 1, len(tags)):
            name = tags[index]
            if type(name) is bytes:
                tags[index] = self._intern_name(name, self._pos)

    def _skipped_text_significant(self, text: bytes, pos: int, end: int) -> bool:
        """Would the token path have emitted ``text[pos:end]``?

        Agrees exactly with the str lexer: runs of the four XML
        whitespace bytes are insignificant, an ASCII non-space byte
        with no entity reference is significant without decoding, and
        everything else (entities, multi-byte characters, exotic ASCII
        control whitespace) falls back to decode + entity resolution +
        Unicode ``strip()`` — the oracle's exact rule.
        """
        match = _NON_WS_RE_B.search(text, pos, end)
        if match is None:
            return self._keep_whitespace
        amp = text.find(b"&", pos, end)
        first = text[match.start()]
        if amp == -1 and first < 0x80 and not chr(first).isspace():
            return True
        raw = self._decode(text[pos:end], self._base + pos)
        if amp != -1:
            # Entities are validated even though the resolved text is
            # discarded.
            raw = resolve_entities_text(raw, self._base + pos)
        return True if self._keep_whitespace else bool(raw.strip())

    def _validate_skipped_attrs(self, match: re.Match, start: int, end: int) -> None:
        """Well-formedness checks of a skipped start tag's attributes —
        duplicate names and entity references raise exactly as they
        would on the building path; values are decoded only when an
        entity reference forces resolution."""
        text = self._buf
        seen: list[bytes] = []
        offset = self._base + match.start()
        for attr in _ATTR_RE_B.finditer(text, start, end):
            attr_name = attr.group(1)
            if attr_name in seen:
                raise XmlSyntaxError(
                    f"duplicate attribute "
                    f"{self._intern_name(attr_name, attr.start(1))!r} "
                    f"in <{self._intern_name(match.group(1), match.start(1))}>",
                    offset,
                )
            seen.append(attr_name)
        if text.find(b"&", start, end) != -1:
            for attr in _ATTR_RE_B.finditer(text, start, end):
                raw = attr.group(2)
                vstart = attr.start(2)
                if raw is None:
                    raw = attr.group(3)
                    vstart = attr.start(3)
                if b"&" in raw:
                    resolve_entities_text(
                        self._decode(raw, self._base + vstart), offset
                    )

    def _scan_event(self) -> tuple | None:
        if self._pending_end is not None:
            name, _offset = self._pending_end
            self._pending_end = None
            popped = self._open_tags.pop()
            assert popped == name
            return (EVENT_END, name, None, None)
        keep_ws = self._keep_whitespace
        while True:
            text = self._buf
            pos = self._pos
            if pos >= len(text):
                if not self._closed:
                    raise self._starved(None)
                if self._open_tags:
                    raise XmlSyntaxError(
                        f"unexpected end of input; unclosed element "
                        f"<{self._open_tags[-1]}>",
                        self._base + pos,
                    )
                return None
            if text[pos] != 0x3C:  # "<"
                # Text run.  ASCII-whitespace-only runs are dropped
                # without being decoded or sliced out of the buffer.
                end = text.find(b"<", pos + self._resume)
                if end == -1:
                    if not self._closed:
                        self._resume = len(text) - pos
                        raise self._starved(b"<")
                    end = len(text)
                self._resume = 0
                if not keep_ws and _NON_WS_RE_B.search(text, pos, end) is None:
                    self._pos = end
                    continue
                raw = self._decode(text[pos:end], self._base + pos)
                self._pos = end
                offset = self._base + pos
                if not self._open_tags and raw.strip():
                    raise XmlSyntaxError(
                        "character data outside the root element", offset
                    )
                if "&" in raw:
                    raw = resolve_entities_text(raw, offset)
                if not keep_ws and not raw.strip():
                    # runs of *Unicode* whitespace (or entities that
                    # resolve to whitespace) are dropped here, exactly
                    # like the token path's post-resolution strip()
                    continue
                return (EVENT_TEXT, None, None, raw)
            # End tag first: dispatching on the byte after "<" spares
            # the failed start-regex attempt the str lexer pays on
            # every end tag (the start regex requires a name-start
            # byte there, so the order cannot change classification).
            if pos + 1 < len(text) and text[pos + 1] == 0x2F:  # "</"
                tags = self._open_tags
                if tags:
                    # compare raw bytes against the tag that must close
                    expected = self._name_bytes[tags[-1]]
                    end = pos + 2 + len(expected)
                    if (
                        text.startswith(expected, pos + 2)
                        and end < len(text)
                        and text[end] == 0x3E  # ">"
                    ):
                        name = tags.pop()
                        self._pos = end + 1
                        return self._end_events[name]
                match = _END_TAG_RE_B.match(text, pos)
                if match is None:
                    token = self._scan_end_tag()  # exact scan / starvation
                    return (EVENT_END, token.name, None, None)
                name = self._intern_name(match.group(1), pos + 2)
                if not tags or tags[-1] != name:
                    self._close_tag(name, pos)  # raises
                tags.pop()
                self._pos = match.end()
                return (EVENT_END, name, None, None)
            # Start tag.  A previously seen attribute-less tag is
            # exactly "<" + cached name bytes (+ "/") + ">": one
            # memchr to ">" and one dict hit replace the regex.
            tags = self._open_tags
            if tags:
                gt = text.find(b">", pos + 1)
                if gt != -1:
                    if text[gt - 1] == 0x2F:  # self-closing candidate
                        event = self._start_events.get(text[pos + 1 : gt - 1])
                        if event is not None:
                            name = event[1]
                            self._pos = gt + 1
                            tags.append(name)
                            self._pending_end = (name, self._base + pos)
                            return event
                    else:
                        event = self._start_events.get(text[pos + 1 : gt])
                        if event is not None:
                            self._pos = gt + 1
                            tags.append(event[1])
                            return event
            # First sight, attributes, unusual spacing, or other
            # markup: the regex (and below it, the careful paths)
            # decide — the regex cannot match any non-tag markup, as
            # the byte after "<" must be an ASCII name-start character.
            match = _START_TAG_RE_B.match(text, pos)
            if match is not None:
                astart, aend = match.span(2)
                if aend > astart or not tags:
                    # attributes, or root-level bookkeeping: the full
                    # commit path
                    return self._event_from_start_match(match)
                name_b = match.group(1)
                name = self._names.get(name_b)
                if name is None:
                    name = self._intern_name(name_b, pos + 1)
                self._pos = match.end()
                tags.append(name)
                if match.group(3):
                    self._pending_end = (name, self._base + pos)
                return (EVENT_START, name, None, None)
            if text.startswith(b"<!--", pos):
                self._skip_comment()
                continue
            if text.startswith(b"<![CDATA[", pos):
                token = self._scan_cdata()
                if not keep_ws and not token.content.strip():
                    continue
                return (EVENT_TEXT, None, None, token.content)
            if text.startswith(b"<?", pos):
                self._skip_pi()
                continue
            if text.startswith(b"<!DOCTYPE", pos):
                self._skip_doctype()
                continue
            if not self._closed and len(text) - pos < _LONGEST_PREFIX:
                rest = text[pos:]
                if any(p.startswith(rest) for p in _MARKUP_PREFIXES_B):
                    # Could still become a comment/CDATA/PI/DOCTYPE/end
                    # tag once more input arrives.
                    raise self._starved(None)
            # Unicode names, unusual spacing, malformed or incomplete
            # markup: the exact character-level scanner decides.
            token = self._scan_start_tag()
            attrs = tuple((a.name, a.value) for a in token.attributes)
            return (EVENT_START, token.name, attrs or None, None)

    def _event_from_start_match(self, match: re.Match) -> tuple:
        """Commit a regex-recognised (complete) start tag as an event."""
        offset = self._base + self._pos
        names_get = self._names.get
        name_b = match.group(1)
        name = names_get(name_b)
        if name is None:
            name = self._intern_name(name_b, match.start(1))
        astart, aend = match.span(2)
        if aend > astart:
            attrs = []
            seen: list[str] = []
            buf = self._buf
            for attr in _ATTR_RE_B.finditer(buf, astart, aend):
                raw_name = attr.group(1)
                attr_name = names_get(raw_name)
                if attr_name is None:
                    attr_name = self._intern_name(raw_name, attr.start(1))
                raw = attr.group(2)
                vstart = attr.start(2)
                if raw is None:
                    raw = attr.group(3)
                    vstart = attr.start(3)
                if attr_name in seen:
                    raise XmlSyntaxError(
                        f"duplicate attribute {attr_name!r} in <{name}>", offset
                    )
                seen.append(attr_name)
                try:
                    value = raw.decode("utf-8")
                except UnicodeDecodeError:
                    value = self._decode(raw, self._base + vstart)  # raises
                if "&" in value:
                    value = resolve_entities_text(value, offset)
                attrs.append((attr_name, value))
            attrs = tuple(attrs)
        else:
            attrs = None
        self._pos = match.end()
        self._check_single_root(offset)
        self._open_tags.append(name)
        if match.group(3):
            self._pending_end = (name, offset)
        return (EVENT_START, name, attrs, None)

    def _skip_once(self) -> int:
        """Consume one token's worth of input without building it;
        returns how many significant tokens it accounted for."""
        if self._pending_end is not None:
            self._pending_end = None
            self._open_tags.pop()
            return 1
        text = self._buf
        pos = self._pos
        if pos >= len(text):
            if not self._closed:
                raise self._starved(None)
            raise XmlSyntaxError(
                f"unexpected end of input; unclosed element "
                f"<{self._open_tags[-1]}>",
                self._base + pos,
            )
        if text[pos] != 0x3C:  # "<"
            end = text.find(b"<", pos + self._resume)
            if end == -1:
                if not self._closed:
                    self._resume = len(text) - pos
                    raise self._starved(b"<")
                end = len(text)
            self._resume = 0
            significant = self._skipped_text_significant(text, pos, end)
            self._pos = end
            return 1 if significant else 0
        match = _START_TAG_RE_B.match(text, pos)
        if match is not None:
            attrs_start, attrs_end = match.span(2)
            if attrs_end > attrs_start:
                self._validate_skipped_attrs(match, attrs_start, attrs_end)
            name = self._intern_name(match.group(1), match.start(1))
            self._pos = match.end()
            if match.group(3):
                return 2  # self-closing: start + synthetic end
            self._open_tags.append(name)
            return 1
        if text.startswith(b"</", pos):
            tags = self._open_tags
            expected = self._name_bytes[tags[-1]]
            end = pos + 2 + len(expected)
            if (
                text.startswith(expected, pos + 2)
                and end < len(text)
                and text[end] == 0x3E  # ">"
            ):
                tags.pop()
                self._pos = end + 1
                return 1
            match = _END_TAG_RE_B.match(text, pos)
            if match is not None:
                self._pos = match.end()
                self._close_tag(self._intern_name(match.group(1), pos + 2), pos)
                return 1
            self._scan_end_tag()  # exact scan: errors / starvation
            return 1
        if text.startswith(b"<!--", pos):
            self._skip_comment()
            return 0
        if text.startswith(b"<![CDATA[", pos):
            cstart, cend = self._scan_cdata_span()
            return 1 if self._cdata_significant(cstart, cend) else 0
        if text.startswith(b"<?", pos):
            self._skip_pi()
            return 0
        if text.startswith(b"<!DOCTYPE", pos):
            self._skip_doctype()
            return 0
        if not self._closed and len(text) - pos < _LONGEST_PREFIX:
            rest = text[pos:]
            if any(p.startswith(rest) for p in _MARKUP_PREFIXES_B):
                raise self._starved(None)
        token = self._scan_start_tag()
        if token.self_closing:
            # _scan_start_tag queued the synthetic end: consume it here
            # so both halves are accounted in one step.
            self._pending_end = None
            self._open_tags.pop()
            return 2
        return 1

    # ------------------------------------------------------------------
    # scanning
    # ------------------------------------------------------------------

    def _starved(self, need: bytes | None) -> _Starved:
        """Record what the pending construct needs before signalling
        starvation (None = any new input could complete it)."""
        self._need = need
        return _Starved()

    def _decode(self, raw: bytes, offset: int) -> str:
        """UTF-8 decode with byte-exact error positions.

        Every decode in this lexer funnels through here, so malformed
        wire bytes always surface as :class:`XmlSyntaxError` (mapped to
        an ERROR frame by the server), never as a loose
        ``UnicodeDecodeError`` escaping from an internal slice.
        """
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise XmlSyntaxError(
                f"invalid UTF-8: {exc.reason}", offset + exc.start
            ) from None

    def _char_at(self, pos: int) -> tuple[str, int]:
        """Decode the single character starting at byte *pos* (the
        exact-scanner path); returns ``(char, byte_width)``.

        Starves when a multi-byte sequence is cut by the end of the
        buffered input and the input is still open — the surrounding
        token rescans once more bytes arrive.
        """
        buf = self._buf
        lead = buf[pos]
        if lead < 0x80:
            return chr(lead), 1
        if 0xC2 <= lead <= 0xDF:
            width = 2
        elif 0xE0 <= lead <= 0xEF:
            width = 3
        elif 0xF0 <= lead <= 0xF4:
            width = 4
        else:
            raise XmlSyntaxError(
                "invalid UTF-8: invalid start byte", self._base + pos
            )
        if pos + width > len(buf) and not self._closed:
            raise self._starved(None)
        return self._decode(buf[pos : pos + width], self._base + pos), width

    def _intern_name(self, raw: bytes, pos: int) -> str:
        """Decode + intern a name at first sight; later sightings are
        one dict hit.  Also records the reverse mapping the skip fast
        path uses to compare expected end tags without re-encoding,
        and the per-name event tuples the fast paths append."""
        name = self._names.get(raw)
        if name is None:
            name = _intern(self._decode(raw, self._base + pos))
            self._names[raw] = name
            self._name_bytes.setdefault(name, raw)
            self._start_events.setdefault(raw, (EVENT_START, name, None, None))
            self._end_events.setdefault(name, (EVENT_END, name, None, None))
        return name

    def _pull_token(self) -> Token | None:
        while True:
            token = self._scan_once()
            if token is None:
                return None
            if (
                not self._keep_whitespace
                and token.kind is TokenKind.TEXT
                and not token.content.strip()
            ):
                continue
            return token

    def _scan_once(self) -> Token | None:
        if self._pending_end is not None:
            name, offset = self._pending_end
            self._pending_end = None
            popped = self._open_tags.pop()
            assert popped == name
            return EndTag(name, offset)
        while True:
            text = self._buf
            pos = self._pos
            if pos >= len(text):
                if not self._closed:
                    raise self._starved(None)
                if self._open_tags:
                    raise XmlSyntaxError(
                        f"unexpected end of input; unclosed element "
                        f"<{self._open_tags[-1]}>",
                        self._base + pos,
                    )
                return None
            if text[pos] != 0x3C:  # "<"
                return self._scan_text()
            # Markup.
            if text.startswith(b"<!--", pos):
                self._skip_comment()
                continue
            if text.startswith(b"<![CDATA[", pos):
                return self._scan_cdata()
            if text.startswith(b"<?", pos):
                self._skip_pi()
                continue
            if text.startswith(b"<!DOCTYPE", pos):
                self._skip_doctype()
                continue
            if text.startswith(b"</", pos):
                return self._scan_end_tag()
            if not self._closed and len(text) - pos < _LONGEST_PREFIX:
                rest = text[pos:]
                if any(p.startswith(rest) for p in _MARKUP_PREFIXES_B):
                    # Could still become a comment/CDATA/PI/DOCTYPE/end
                    # tag once more input arrives.
                    raise self._starved(None)
            return self._scan_start_tag()

    def _scan_text(self) -> Text:
        text = self._buf
        start = self._pos
        end = text.find(b"<", start + self._resume)
        if end == -1:
            if not self._closed:
                # A text run is maximal: it only ends at markup or at
                # the true end of input, never at a chunk boundary.
                self._resume = len(text) - start
                raise self._starved(b"<")
            end = len(text)
        self._resume = 0
        raw = self._decode(text[start:end], self._base + start)
        self._pos = end
        offset = self._base + start
        if not self._open_tags and raw.strip():
            raise XmlSyntaxError("character data outside the root element", offset)
        return Text(resolve_entities_text(raw, offset), offset)

    def _scan_cdata_span(self) -> tuple[int, int]:
        """Consume one CDATA section; returns the ``(start, end)`` byte
        span of its raw content in the current buffer (not decoded —
        the skip path classifies it as bytes)."""
        start = self._pos
        text = self._buf
        end = text.find(b"]]>", max(start + 9, start + self._resume))
        if end == -1:
            if not self._closed:
                # Keep the last 2 bytes rescannable: they may be the
                # head of a "]]>" split across the chunk boundary.
                self._resume = max(0, len(text) - start - 2)
                raise self._starved(b"]]>")
            raise XmlSyntaxError(
                "unterminated CDATA section", self._base + start
            )
        self._resume = 0
        self._pos = end + 3
        if not self._open_tags:
            raise XmlSyntaxError(
                "CDATA section outside the root element", self._base + start
            )
        return start + 9, end

    def _scan_cdata(self) -> Text:
        offset = self._base + self._pos
        cstart, cend = self._scan_cdata_span()
        content = self._decode(self._buf[cstart:cend], self._base + cstart)
        return Text(content, offset)

    def _cdata_significant(self, cstart: int, cend: int) -> bool:
        """Skip-path CDATA significance without decoding pure-ASCII
        content; mirrors the token path's ``content.strip()``."""
        if self._keep_whitespace:
            return True
        buf = self._buf
        match = _NON_WS_RE_B.search(buf, cstart, cend)
        if match is None:
            return False
        first = buf[match.start()]
        if first < 0x80 and not chr(first).isspace():
            return True
        return bool(self._decode(buf[cstart:cend], self._base + cstart).strip())

    def _skip_comment(self) -> None:
        start = self._pos
        text = self._buf
        end = text.find(b"-->", max(start + 4, start + self._resume))
        if end == -1:
            if not self._closed:
                self._resume = max(0, len(text) - start - 2)
                raise self._starved(b"-->")
            raise XmlSyntaxError("unterminated comment", self._base + start)
        self._resume = 0
        self._pos = end + 3

    def _skip_pi(self) -> None:
        start = self._pos
        text = self._buf
        end = text.find(b"?>", max(start + 2, start + self._resume))
        if end == -1:
            if not self._closed:
                self._resume = max(0, len(text) - start - 1)
                raise self._starved(b"?>")
            raise XmlSyntaxError(
                "unterminated processing instruction", self._base + start
            )
        self._resume = 0
        self._pos = end + 2

    def _skip_doctype(self) -> None:
        # <!DOCTYPE name [internal subset]? >
        start = self._pos
        pos = start + len(b"<!DOCTYPE")
        text = self._buf
        depth = 0
        subset_start = None
        while pos < len(text):
            ch = text[pos]
            if ch == 0x5B:  # "["
                if depth == 0:
                    subset_start = pos + 1
                depth += 1
            elif ch == 0x5D:  # "]"
                depth -= 1
                if depth == 0 and subset_start is not None:
                    self.internal_subset = self._decode(
                        text[subset_start:pos], self._base + subset_start
                    )
            elif ch == 0x3E and depth == 0:  # ">"
                self._pos = pos + 1
                return
            pos += 1
        if not self._closed:
            raise self._starved(b">")
        raise XmlSyntaxError(
            "unterminated DOCTYPE declaration", self._base + start
        )

    def _scan_start_tag(self) -> StartTag:
        text = self._buf
        start = self._pos
        match = _START_TAG_RE_B.match(text, start)
        if match is not None:
            return self._start_tag_from_match(match)
        # Exact character-level scan: Unicode names, unusual spacing,
        # malformed markup, or a tag still incomplete in the buffer.
        pos = start + 1
        if pos >= len(text):
            if not self._closed:
                raise self._starved(b">")
            raise XmlSyntaxError("malformed start tag", self._base + start)
        ch, _width = self._char_at(pos)
        if not _is_name_start(ch):
            raise XmlSyntaxError("malformed start tag", self._base + start)
        name, pos = self._scan_name(pos)
        attributes: list[Attribute] = []
        seen: set[str] = set()
        while True:
            pos = self._skip_ws(pos)
            if pos >= len(text):
                if not self._closed:
                    raise self._starved(None)
                raise XmlSyntaxError(
                    f"unterminated start tag <{name}", self._base + start
                )
            b = text[pos]
            if b == 0x3E:  # ">"
                self._pos = pos + 1
                self._check_single_root(self._base + start)
                self._open_tags.append(name)
                return StartTag(name, tuple(attributes), self._base + start)
            if b == 0x2F:  # "/"
                if pos + 1 >= len(text) and not self._closed:
                    raise self._starved(b">")
                if not text.startswith(b"/>", pos):
                    raise XmlSyntaxError(
                        f"malformed start tag <{name}", self._base + pos
                    )
                self._pos = pos + 2
                self._check_single_root(self._base + start)
                self._open_tags.append(name)
                self._pending_end = (name, self._base + start)
                return StartTag(
                    name, tuple(attributes), self._base + start, self_closing=True
                )
            ch, _width = self._char_at(pos)
            if not _is_name_start(ch):
                raise XmlSyntaxError(
                    f"unexpected character {ch!r} in start tag <{name}",
                    self._base + pos,
                )
            attr_name, pos = self._scan_name(pos)
            pos = self._skip_ws(pos)
            if pos >= len(text):
                if not self._closed:
                    raise self._starved(None)
            if pos >= len(text) or text[pos] != 0x3D:  # "="
                raise XmlSyntaxError(
                    f"attribute {attr_name!r} without value in <{name}>",
                    self._base + pos,
                )
            pos = self._skip_ws(pos + 1)
            if pos >= len(text):
                if not self._closed:
                    raise self._starved(None)
            if pos >= len(text) or text[pos] not in b"\"'":
                raise XmlSyntaxError(
                    f"unquoted value for attribute {attr_name!r} in <{name}>",
                    self._base + pos,
                )
            quote = text[pos : pos + 1]
            value_end = text.find(quote, pos + 1)
            if value_end == -1:
                if not self._closed:
                    raise self._starved(b">")
                raise XmlSyntaxError(
                    f"unterminated value for attribute {attr_name!r}",
                    self._base + pos,
                )
            raw_value = self._decode(
                text[pos + 1 : value_end], self._base + pos + 1
            )
            if attr_name in seen:
                raise XmlSyntaxError(
                    f"duplicate attribute {attr_name!r} in <{name}>",
                    self._base + pos,
                )
            seen.add(attr_name)
            attributes.append(
                Attribute(
                    attr_name,
                    resolve_entities_text(raw_value, self._base + pos),
                )
            )
            pos = value_end + 1

    def _start_tag_from_match(self, match: re.Match) -> StartTag:
        """Commit a regex-recognised (complete) start tag."""
        start = self._pos
        offset = self._base + start
        name = self._intern_name(match.group(1), match.start(1))
        astart, aend = match.span(2)
        attributes: tuple[Attribute, ...] = ()
        if aend > astart:
            attrs = []
            seen: set[str] = set()
            for attr in _ATTR_RE_B.finditer(self._buf, astart, aend):
                attr_name = self._intern_name(attr.group(1), attr.start(1))
                raw_value = attr.group(2)
                vstart = attr.start(2)
                if raw_value is None:
                    raw_value = attr.group(3)
                    vstart = attr.start(3)
                if attr_name in seen:
                    raise XmlSyntaxError(
                        f"duplicate attribute {attr_name!r} in <{name}>", offset
                    )
                seen.add(attr_name)
                attrs.append(
                    Attribute(
                        attr_name,
                        resolve_entities_text(
                            self._decode(raw_value, self._base + vstart), offset
                        ),
                    )
                )
            attributes = tuple(attrs)
        self._pos = match.end()
        self._check_single_root(offset)
        self._open_tags.append(name)
        if match.group(3):
            self._pending_end = (name, offset)
            return StartTag(name, attributes, offset, self_closing=True)
        return StartTag(name, attributes, offset)

    def _scan_end_tag(self) -> EndTag:
        text = self._buf
        start = self._pos
        match = _END_TAG_RE_B.match(text, start)
        if match is not None:
            self._pos = match.end()
            return self._close_tag(
                self._intern_name(match.group(1), start + 2), start
            )
        pos = start + 2
        if pos >= len(text):
            if not self._closed:
                raise self._starved(b">")
            raise XmlSyntaxError("malformed end tag", self._base + start)
        ch, _width = self._char_at(pos)
        if not _is_name_start(ch):
            raise XmlSyntaxError("malformed end tag", self._base + start)
        name, pos = self._scan_name(pos)
        pos = self._skip_ws(pos)
        if pos >= len(text):
            if not self._closed:
                raise self._starved(b">")
            raise XmlSyntaxError(
                f"malformed end tag </{name}", self._base + start
            )
        if text[pos] != 0x3E:  # ">"
            raise XmlSyntaxError(
                f"malformed end tag </{name}", self._base + start
            )
        self._pos = pos + 1
        return self._close_tag(name, start)

    def _close_tag(self, name: str, start: int) -> EndTag:
        offset = self._base + start
        if not self._open_tags:
            raise XmlSyntaxError(
                f"end tag </{name}> with no open element", offset
            )
        expected = self._open_tags.pop()
        if expected != name:
            raise XmlSyntaxError(
                f"mismatched end tag: expected </{expected}>, got </{name}>",
                offset,
            )
        return EndTag(name, offset)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _check_single_root(self, offset: int) -> None:
        if self._started and not self._open_tags:
            raise XmlSyntaxError("multiple root elements", offset)
        self._started = True

    def _scan_name(self, pos: int) -> tuple[str, int]:
        """Scan a name starting at *pos* (first character validated by
        the caller); ASCII name bytes ride a table lookup, characters
        ``>= 0x80`` are decoded one at a time and classified with the
        oracle's Unicode predicate."""
        text = self._buf
        size = len(text)
        start = pos
        is_ascii_name = _ASCII_NAME_CHAR
        while pos < size:
            b = text[pos]
            if b < 0x80:
                if not is_ascii_name[b]:
                    break
                pos += 1
                continue
            ch, width = self._char_at(pos)
            if not _is_name_char(ch):
                break
            pos += width
        return self._intern_name(text[start:pos], start), pos

    def _skip_ws(self, pos: int) -> int:
        text = self._buf
        while pos < len(text) and text[pos] in b" \t\r\n":
            pos += 1
        return pos
