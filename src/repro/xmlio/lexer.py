"""Truly incremental, restartable XML tokenizer.

This is the lowest layer of the reproduction: a from-scratch streaming
lexer that turns XML input into the token stream consumed by the GCX
stream pre-projector.  Input can arrive three ways:

* a complete document string,
* an iterable of string chunks, pulled lazily as tokens are requested
  (the raw input is never joined into one string),
* push mode: no source at construction time, the caller supplies data
  with :meth:`XmlLexer.feed` and ends it with :meth:`XmlLexer.close`.

All tokenizer state — half-read tags, entities, CDATA sections and
comments split across chunk boundaries — survives between chunks: a
scan that reaches the end of the buffered input mid-token leaves no
partial state behind and resumes from the token start once more data
arrives, so the token stream is byte-for-byte identical to tokenizing
the concatenated document in one piece.

The supported XML subset covers the paper's workloads plus the common
conveniences one meets in real documents:

* elements with attributes (single- or double-quoted),
* self-closing tags (normalised to start + end token pairs),
* character data with the five predefined entities
  (``&lt; &gt; &amp; &apos; &quot;``) and numeric character references,
* CDATA sections,
* comments and processing instructions (skipped),
* an XML declaration and a DOCTYPE with an optional internal DTD subset
  (the subset text is preserved for :mod:`repro.xmlio.dtd`).

Two fast paths keep the hot loop cheap: complete start/end tags are
recognised with precompiled regexes (falling back to the exact
character-level scanner for Unicode names, unusual spacing, or
incomplete input), and tag/attribute names are interned so the matcher
and buffer compare pointers instead of strings.

On top of the classic token objects the lexer exposes a slotted event
fast path (DESIGN.md §9): :meth:`XmlLexer.next_event` yields plain
``(kind, name, attrs, text)`` tuples — no ``StartTag``/``Attribute``
allocation for the common no-attribute tag — :meth:`XmlLexer.tokens_into`
batches them into a caller-supplied list, and
:meth:`XmlLexer.skip_subtree` fast-forwards over an entire irrelevant
subtree without building events at all, returning only the significant
token count the statistics need.  All three produce byte-identical
classification (and raise the identical errors) as ``next_token``; the
compiled projector is their primary consumer.

Namespace processing is intentionally out of scope: GCX's fragment and
the XMark workloads are namespace-free, and prefixed names pass through
verbatim as part of the tag name.

This str-domain lexer is also the **oracle** of the bytes-domain
scanner (:mod:`repro.xmlio.lexer_bytes`, DESIGN.md §11): the hot
production path scans raw UTF-8 bytes and decodes text lazily, and a
differential suite holds it byte-identical — same tokens, events,
errors and significance decisions at every byte-level chunk split — to
this implementation.  :func:`make_lexer` / :func:`tokenize` dispatch on
the input representation, so callers pick the domain simply by handing
over ``bytes`` or ``str``.
"""

from __future__ import annotations

import itertools
import re
import sys
from collections.abc import Callable, Iterable, Iterator

from repro.xmlio.errors import XmlStarvedError, XmlSyntaxError
from repro.xmlio.tokens import (
    EVENT_END,
    EVENT_START,
    EVENT_TEXT,
    Attribute,
    EndTag,
    StartTag,
    Text,
    Token,
    TokenKind,
)

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = "_:"
_NAME_EXTRA = "_:.-"

#: Markup constructs other than start tags, by their literal prefix.
#: When the buffered input ends inside one of these prefixes the
#: construct cannot be classified yet — the lexer must wait for more
#: data instead of misreading e.g. ``<!`` as a malformed start tag.
_MARKUP_PREFIXES = ("<!--", "<![CDATA[", "<?", "<!DOCTYPE", "</")
_LONGEST_PREFIX = max(len(p) for p in _MARKUP_PREFIXES)

# Fast-path recognisers for complete tags.  The name and whitespace
# classes are the exact subsets the character-level scanner accepts
# (ASCII names, XML's four whitespace chars — NOT Python's Unicode
# \s); anything the regexes do not match (Unicode names, missing
# inter-attribute space, malformed or incomplete markup) falls back to
# the exact scanner, so a regex match can never disagree with it.
# The pattern *sources* are module constants because the bytes-domain
# lexer (repro.xmlio.lexer_bytes) compiles the identical patterns over
# bytes — one source of truth, two regex domains.
_NAME_RE_SRC = r"[A-Za-z_:][A-Za-z0-9_:.\-]*"
_WS_RE_SRC = r"[ \t\r\n]"
START_TAG_SRC = (
    r"<(" + _NAME_RE_SRC + r")"
    r"((?:" + _WS_RE_SRC + r"+" + _NAME_RE_SRC
    + _WS_RE_SRC + r"*=" + _WS_RE_SRC + r"*(?:\"[^\"]*\"|'[^']*'))*)"
    + _WS_RE_SRC + r"*(/?)>"
)
ATTR_SRC = (
    _WS_RE_SRC + r"+(" + _NAME_RE_SRC + r")"
    + _WS_RE_SRC + r"*=" + _WS_RE_SRC + r"*(?:\"([^\"]*)\"|'([^']*)')"
)
END_TAG_SRC = r"</(" + _NAME_RE_SRC + r")" + _WS_RE_SRC + r"*>"
#: first significant (non-whitespace) character of a text run — used by
#: the skip fast path to classify runs without slicing them out.
NON_WS_SRC = r"[^ \t\r\n]"

_START_TAG_RE = re.compile(START_TAG_SRC)
_ATTR_RE = re.compile(ATTR_SRC)
_END_TAG_RE = re.compile(END_TAG_SRC)
_NON_WS_RE = re.compile(NON_WS_SRC)

_intern = sys.intern


def resolve_entities_text(raw: str, offset: int) -> str:
    """Resolve the predefined entities and character references in
    *raw* (both lexer domains share this — character data is ``str``
    by the time entities are resolved).

    Raises:
        XmlSyntaxError: on an unterminated or unknown reference;
            the reported position is *offset* plus the index of the
            ``&`` within *raw*.
    """
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end == -1:
            raise XmlSyntaxError("unterminated entity reference", offset + i)
        entity = raw[i + 1 : end]
        if entity.startswith("#x") or entity.startswith("#X"):
            out.append(chr(int(entity[2:], 16)))
        elif entity.startswith("#"):
            out.append(chr(int(entity[1:])))
        elif entity in _PREDEFINED_ENTITIES:
            out.append(_PREDEFINED_ENTITIES[entity])
        else:
            raise XmlSyntaxError(
                f"unknown entity reference &{entity};", offset + i
            )
        i = end + 1
    return "".join(out)


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Starved(Exception):
    """Internal signal: the buffer ended mid-token and input is open."""


class XmlLexer:
    """Pull-based tokenizer with incremental (chunked) input.

    Tokens are produced strictly on demand (:meth:`next_token`), which
    is what gives the GCX projector its one-token-lookahead discipline.
    Consumed input is discarded as chunks arrive, so memory is bounded
    by one chunk plus the longest in-flight token — the raw input is
    never retained behind the scan position.

    Args:
        source: a complete document string, an iterable of string
            chunks (pulled lazily), or ``None`` for push mode
            (``feed()`` / ``close()``).
        keep_whitespace: emit whitespace-only text tokens instead of
            dropping them.
        refill: optional zero-argument callable returning the next
            chunk (or ``None``/``""`` at end of input); called whenever
            the lexer runs out of buffered data.  Mutually exclusive
            with an iterable *source*.
    """

    def __init__(
        self,
        source: str | Iterable[str] | None = None,
        keep_whitespace: bool = False,
        refill: Callable[[], str | None] | None = None,
    ):
        self._buf = ""
        self._pos = 0
        #: absolute document offset of ``self._buf[0]`` (consumed input
        #: is compacted away; token offsets stay absolute).
        self._base = 0
        self._keep_whitespace = keep_whitespace
        self._open_tags: list[str] = []
        self._started = False
        # Synthetic end tag queued by a self-closing start tag, as a
        # ``(name, offset)`` pair (the event fast path must not pay for
        # an EndTag allocation it would immediately unwrap).
        self._pending_end: tuple[str, int] | None = None
        #: chars (relative to the pending construct's start) already
        #: searched without finding its terminator — lets a text/CDATA/
        #: comment/PI scan that starved resume where it left off
        #: instead of rescanning the whole run on every refill.
        self._resume = 0
        #: substring the starved construct cannot complete without
        #: (e.g. "<" for a text run, "]]>" for CDATA); refill chunks
        #: that do not contain it are parked in ``_pending_chunks``
        #: instead of being merged, so one huge token arriving in many
        #: chunks costs one join, not one buffer copy per chunk.
        self._need: str | None = None
        self._pending_chunks: list[str] = []
        #: last 2 chars of all accumulated input (buffer + parked
        #: chunks) — covers terminators straddling a chunk boundary.
        self._joint = ""
        #: raw text of the internal DTD subset, if a DOCTYPE carried one.
        self.internal_subset: str | None = None
        self._closed = False
        self._refill: Callable[[], str | None] | None = None
        if isinstance(source, str):
            self._buf = source
        elif source is not None:
            chunks = iter(source)

            def _next_nonempty() -> str | None:
                # Empty chunks are legitimate (e.g. a producer with
                # nothing to say this round) and must not read as end
                # of input — only iterator exhaustion does.
                for chunk in chunks:
                    if chunk:
                        return chunk
                return None

            self._refill = _next_nonempty
        if refill is not None:
            if self._refill is not None:
                raise TypeError(
                    "pass either an iterable source or refill=, not both"
                )
            self._refill = refill
        # A plain string with no refill source is complete input.
        if isinstance(source, str) and self._refill is None:
            self._closed = True
        self._joint = self._buf[-2:]

    # ------------------------------------------------------------------
    # incremental input
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once end of input has been signalled."""
        return self._closed

    def feed(self, chunk: str) -> "XmlLexer":
        """Append *chunk* to the pending input (push mode)."""
        if self._closed:
            raise ValueError("cannot feed a closed lexer")
        if chunk:
            self._append(chunk)
        return self

    def close(self) -> "XmlLexer":
        """Signal end of input; pending partial tokens become errors."""
        self._closed = True
        return self

    def _append(self, chunk: str) -> None:
        """Merge parked chunks + *chunk* into the scan buffer,
        compacting consumed text out of it."""
        if self._pos:
            self._base += self._pos
            self._buf = self._buf[self._pos :]
            self._pos = 0
        if self._pending_chunks:
            self._pending_chunks.append(chunk)
            self._buf += "".join(self._pending_chunks)
            self._pending_chunks.clear()
        else:
            self._buf += chunk
        self._joint = self._buf[-2:]
        self._need = None

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Complete restart state as a dict of primitives — the str
        twin of :meth:`ByteXmlLexer.snapshot_state` (same fields minus
        the bytes-domain name caches; offsets are characters).  Safe
        whenever the lexer is quiescent between pulls (including
        starved)."""
        return {
            "buf": self._buf[self._pos :],
            "base": self._base + self._pos,
            "keep_whitespace": self._keep_whitespace,
            "open_tags": list(self._open_tags),
            "started": self._started,
            "closed": self._closed,
            "pending_end": self._pending_end,
            "resume": self._resume,
            "need": self._need,
            "pending_chunks": list(self._pending_chunks),
            "joint": self._joint,
            "internal_subset": self.internal_subset,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`snapshot_state` dict; the lexer then
        continues character-identically to the one it was taken from."""
        self._buf = state["buf"]
        self._pos = 0
        self._base = state["base"]
        self._keep_whitespace = state["keep_whitespace"]
        self._open_tags = list(state["open_tags"])
        self._started = state["started"]
        self._closed = state["closed"]
        self._pending_end = state["pending_end"]
        self._resume = state["resume"]
        self._need = state["need"]
        self._pending_chunks = list(state["pending_chunks"])
        self._joint = state["joint"]
        self.internal_subset = state["internal_subset"]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def next_token(self) -> Token | None:
        """Return the next token, or ``None`` at end of input.

        Raises:
            XmlSyntaxError: on malformed markup or mismatched tags.
            XmlStarvedError: in push mode, when no complete token is
                buffered and the lexer has not been closed.
        """
        while True:
            try:
                return self._pull_token()
            except _Starved:
                self._handle_starvation()

    def _handle_starvation(self) -> None:
        """Refill the buffer after a mid-token starvation signal.

        Shared by every pull surface (``next_token``, ``next_event``,
        ``skip_subtree``) so the chunk-parking strategy stays in one
        place.  Raises :class:`XmlStarvedError` when the lexer has no
        refill source (push mode without buffered data).
        """
        if self._refill is None:
            raise XmlStarvedError(
                "no complete token buffered; feed() more input "
                "or close() the lexer"
            ) from None
        while True:
            chunk = self._refill()
            if not chunk:
                self._closed = True
                self._append("")  # merge any parked chunks
                return
            if (
                self._need is not None
                and self._need not in self._joint + chunk
            ):
                # The construct's terminator is not in this
                # chunk (nor straddling the boundary): park it
                # without paying for a buffer merge or rescan.
                self._pending_chunks.append(chunk)
                self._joint = (self._joint + chunk)[-2:]
                continue
            self._append(chunk)
            return

    def __iter__(self) -> Iterator[Token]:
        while True:
            token = self.next_token()
            if token is None:
                return
            yield token

    @property
    def depth(self) -> int:
        """Number of currently open elements."""
        return len(self._open_tags)

    # ------------------------------------------------------------------
    # event fast path (the compiled kernel's input surface)
    # ------------------------------------------------------------------

    def next_event(self) -> tuple | None:
        """Return the next event ``(kind, name, attrs, text)``, or
        ``None`` at end of input.

        The allocation-light twin of :meth:`next_token`: ``kind`` is
        one of :data:`~repro.xmlio.tokens.EVENT_START` /
        :data:`~repro.xmlio.tokens.EVENT_END` /
        :data:`~repro.xmlio.tokens.EVENT_TEXT`, ``attrs`` is a tuple of
        ``(name, value)`` pairs or ``None``, and ``text`` carries the
        entity-resolved character data of a text event.  Token
        classification, whitespace policy and every error are identical
        to :meth:`next_token`; only the representation differs (no
        ``StartTag``/``Attribute``/``Text`` objects, no offsets).

        Raises:
            XmlSyntaxError: on malformed markup or mismatched tags.
            XmlStarvedError: in push mode, when no complete token is
                buffered and the lexer has not been closed.
        """
        while True:
            try:
                return self._scan_event()
            except _Starved:
                self._handle_starvation()

    def tokens_into(self, sink: list, limit: int = 4096) -> int:
        """Append up to *limit* events (see :meth:`next_event`) to
        *sink*; returns the number appended — ``0`` at end of input.

        The batch surface of the fast path: one call amortizes the
        per-token method dispatch for consumers that do not need the
        projector's one-token-at-a-time pull discipline (DOM loading,
        token counting, benchmarks).
        """
        append = sink.append
        count = 0
        while count < limit:
            event = self.next_event()
            if event is None:
                break
            append(event)
            count += 1
        return count

    def skip_subtree(self) -> int:
        """Fast-forward to (and through) the end tag of the innermost
        open element; returns the number of significant tokens consumed.

        The projector calls this for subtrees that can contain no match:
        tags are still validated (well-formedness, duplicate attributes,
        entity references — the identical errors ``next_token`` would
        raise) but no token or event objects are built, attribute values
        are not materialized, and text runs are classified without being
        sliced out of the buffer.  "Significant" counts exactly the
        tokens ``next_token`` would have emitted under this lexer's
        whitespace policy, so statistics stay byte-identical.
        """
        target = len(self._open_tags) - 1
        if target < 0:
            raise ValueError("skip_subtree() requires an open element")
        count = 0
        tags = self._open_tags
        match_start = _START_TAG_RE.match
        # One fused scan loop: buffer state lives in locals and is only
        # flushed back to the instance around the careful fallbacks
        # (rare markup, starvation) — the common tag/text tokens cost no
        # attribute writes and no per-token method calls.
        while len(tags) > target:
            text = self._buf
            size = len(text)
            pos = self._pos
            try:
                while len(tags) > target:
                    if self._pending_end is not None or pos >= size:
                        self._pos = pos
                        count += self._skip_once()
                        pos = self._pos
                        continue
                    if text[pos] != "<":
                        end = text.find("<", pos + self._resume)
                        if end == -1:
                            if not self._closed:
                                self._resume = size - pos
                                self._pos = pos
                                raise self._starved("<")
                            end = size
                        self._resume = 0
                        if self._skipped_text_significant(text, pos, end):
                            count += 1
                        pos = end
                        continue
                    if pos + 1 < size and text[pos + 1] == "/":
                        # End tag: compare directly against the tag we
                        # know must close (no regex, no name slice).
                        expected = tags[-1]
                        end = pos + 2 + len(expected)
                        if (
                            text.startswith(expected, pos + 2)
                            and end < size
                            and text[end] == ">"
                        ):
                            tags.pop()
                            pos = end + 1
                            count += 1
                            continue
                    else:
                        match = match_start(text, pos)
                        if match is not None:
                            attrs_start, attrs_end = match.span(2)
                            if attrs_end > attrs_start:
                                self._pos = pos
                                self._validate_skipped_attrs(
                                    match, attrs_start, attrs_end
                                )
                            pos = match.end()
                            if match.end(3) > match.start(3):
                                count += 2  # self-closing: start + end
                            else:
                                tags.append(match.group(1))
                                count += 1
                            continue
                    # Rare or malformed markup: the careful path.
                    self._pos = pos
                    count += self._skip_once()
                    pos = self._pos
            except _Starved:
                self._handle_starvation()
            else:
                self._pos = pos
        return count

    def _skipped_text_significant(self, text: str, pos: int, end: int) -> bool:
        """Would the token path have emitted ``text[pos:end]``?

        Must agree exactly with ``next_token``: entity references are
        resolved (and validated) first, and significance is the
        post-resolution Unicode ``strip()`` — the XML-whitespace regex
        is only a shortcut for the overwhelmingly common all-ASCII
        runs.  Under ``keep_whitespace`` every run is significant, but
        entities are still validated.
        """
        match = _NON_WS_RE.search(text, pos, end)
        if match is None:
            return self._keep_whitespace
        amp = text.find("&", pos, end)
        if amp == -1 and not text[match.start()].isspace():
            return True
        raw = text[pos:end]
        if amp != -1:
            # Entities are validated even though the resolved text is
            # discarded.
            raw = self._resolve_entities(raw, self._base + pos)
        return True if self._keep_whitespace else bool(raw.strip())

    def _validate_skipped_attrs(self, match: re.Match, start: int, end: int) -> None:
        """Well-formedness checks of a skipped start tag's attributes —
        duplicate names and entity references raise exactly as they
        would on the building path; values are never materialized
        unless an entity reference forces resolution."""
        text = self._buf
        seen: list[str] = []
        offset = self._base + match.start()
        for attr in _ATTR_RE.finditer(text, start, end):
            attr_name = attr.group(1)
            if attr_name in seen:
                raise XmlSyntaxError(
                    f"duplicate attribute {attr_name!r} "
                    f"in <{match.group(1)}>",
                    offset,
                )
            seen.append(attr_name)
        if text.find("&", start, end) != -1:
            for attr in _ATTR_RE.finditer(text, start, end):
                value = attr.group(2)
                if value is None:
                    value = attr.group(3)
                if "&" in value:
                    self._resolve_entities(value, offset)

    def _scan_event(self) -> tuple | None:
        if self._pending_end is not None:
            name, _offset = self._pending_end
            self._pending_end = None
            popped = self._open_tags.pop()
            assert popped == name
            return (EVENT_END, name, None, None)
        keep_ws = self._keep_whitespace
        while True:
            text = self._buf
            pos = self._pos
            if pos >= len(text):
                if not self._closed:
                    raise self._starved(None)
                if self._open_tags:
                    raise XmlSyntaxError(
                        f"unexpected end of input; unclosed element "
                        f"<{self._open_tags[-1]}>",
                        self._base + pos,
                    )
                return None
            if text[pos] != "<":
                # Text run.  Whitespace-only runs are classified (and
                # dropped) without slicing them out of the buffer.
                end = text.find("<", pos + self._resume)
                if end == -1:
                    if not self._closed:
                        self._resume = len(text) - pos
                        raise self._starved("<")
                    end = len(text)
                self._resume = 0
                if not keep_ws and _NON_WS_RE.search(text, pos, end) is None:
                    self._pos = end
                    continue
                raw = text[pos:end]
                self._pos = end
                offset = self._base + pos
                if not self._open_tags and raw.strip():
                    raise XmlSyntaxError(
                        "character data outside the root element", offset
                    )
                if "&" in raw:
                    raw = self._resolve_entities(raw, offset)
                if not keep_ws and not raw.strip():
                    # the XML-whitespace regex above is only a shortcut:
                    # runs of *Unicode* whitespace (or entities that
                    # resolve to whitespace) are dropped here, exactly
                    # like the token path's post-resolution strip()
                    continue
                return (EVENT_TEXT, None, None, raw)
            # Start tag (the regex cannot match any other markup: the
            # character after "<" must be a name-start character).
            match = _START_TAG_RE.match(text, pos)
            if match is not None:
                return self._event_from_start_match(match)
            if text.startswith("</", pos):
                match = _END_TAG_RE.match(text, pos)
                if match is None:
                    token = self._scan_end_tag()  # exact scan / starvation
                    return (EVENT_END, token.name, None, None)
                name = match.group(1)
                tags = self._open_tags
                if not tags or tags[-1] != name:
                    self._close_tag(_intern(name), pos)  # raises
                tags.pop()
                self._pos = match.end()
                return (EVENT_END, name, None, None)
            if text.startswith("<!--", pos):
                self._skip_comment()
                continue
            if text.startswith("<![CDATA[", pos):
                token = self._scan_cdata()
                if not keep_ws and not token.content.strip():
                    continue
                return (EVENT_TEXT, None, None, token.content)
            if text.startswith("<?", pos):
                self._skip_pi()
                continue
            if text.startswith("<!DOCTYPE", pos):
                self._skip_doctype()
                continue
            if not self._closed and len(text) - pos < _LONGEST_PREFIX:
                rest = text[pos:]
                if any(p.startswith(rest) for p in _MARKUP_PREFIXES):
                    # Could still become a comment/CDATA/PI/DOCTYPE/end
                    # tag once more input arrives.
                    raise self._starved(None)
            # Unicode names, unusual spacing, malformed or incomplete
            # markup: the exact character-level scanner decides.
            token = self._scan_start_tag()
            attrs = tuple((a.name, a.value) for a in token.attributes)
            return (EVENT_START, token.name, attrs or None, None)

    def _event_from_start_match(self, match: re.Match) -> tuple:
        """Commit a regex-recognised (complete) start tag as an event."""
        offset = self._base + self._pos
        name = _intern(match.group(1))
        attr_src = match.group(2)
        if attr_src:
            attrs = []
            seen: list[str] = []
            for attr in _ATTR_RE.finditer(attr_src):
                attr_name = _intern(attr.group(1))
                value = attr.group(2)
                if value is None:
                    value = attr.group(3)
                if attr_name in seen:
                    raise XmlSyntaxError(
                        f"duplicate attribute {attr_name!r} in <{name}>", offset
                    )
                seen.append(attr_name)
                if "&" in value:
                    value = self._resolve_entities(value, offset)
                attrs.append((attr_name, value))
            attrs = tuple(attrs)
        else:
            attrs = None
        self._pos = match.end()
        self._check_single_root(offset)
        self._open_tags.append(name)
        if match.group(3):
            self._pending_end = (name, offset)
        return (EVENT_START, name, attrs, None)

    def _skip_once(self) -> int:
        """Consume one token's worth of input without building it;
        returns how many significant tokens it accounted for."""
        if self._pending_end is not None:
            self._pending_end = None
            self._open_tags.pop()
            return 1
        text = self._buf
        pos = self._pos
        if pos >= len(text):
            if not self._closed:
                raise self._starved(None)
            raise XmlSyntaxError(
                f"unexpected end of input; unclosed element "
                f"<{self._open_tags[-1]}>",
                self._base + pos,
            )
        if text[pos] != "<":
            end = text.find("<", pos + self._resume)
            if end == -1:
                if not self._closed:
                    self._resume = len(text) - pos
                    raise self._starved("<")
                end = len(text)
            self._resume = 0
            significant = self._skipped_text_significant(text, pos, end)
            self._pos = end
            return 1 if significant else 0
        match = _START_TAG_RE.match(text, pos)
        if match is not None:
            attrs_start, attrs_end = match.span(2)
            if attrs_end > attrs_start:
                self._validate_skipped_attrs(match, attrs_start, attrs_end)
            self._pos = match.end()
            if match.group(3):
                return 2  # self-closing: start + synthetic end
            self._open_tags.append(match.group(1))
            return 1
        if text.startswith("</", pos):
            tags = self._open_tags
            expected = tags[-1]
            end = pos + 2 + len(expected)
            if (
                text.startswith(expected, pos + 2)
                and end < len(text)
                and text[end] == ">"
            ):
                tags.pop()
                self._pos = end + 1
                return 1
            match = _END_TAG_RE.match(text, pos)
            if match is not None:
                self._pos = match.end()
                self._close_tag(_intern(match.group(1)), pos)
                return 1
            self._scan_end_tag()  # exact scan: errors / starvation
            return 1
        if text.startswith("<!--", pos):
            self._skip_comment()
            return 0
        if text.startswith("<![CDATA[", pos):
            token = self._scan_cdata()
            return 1 if self._keep_whitespace or token.content.strip() else 0
        if text.startswith("<?", pos):
            self._skip_pi()
            return 0
        if text.startswith("<!DOCTYPE", pos):
            self._skip_doctype()
            return 0
        if not self._closed and len(text) - pos < _LONGEST_PREFIX:
            rest = text[pos:]
            if any(p.startswith(rest) for p in _MARKUP_PREFIXES):
                raise self._starved(None)
        token = self._scan_start_tag()
        if token.self_closing:
            # _scan_start_tag queued the synthetic end: consume it here
            # so both halves are accounted in one step.
            self._pending_end = None
            self._open_tags.pop()
            return 2
        return 1

    # ------------------------------------------------------------------
    # scanning
    # ------------------------------------------------------------------

    def _starved(self, need: str | None) -> _Starved:
        """Record what the pending construct needs before signalling
        starvation (None = any new input could complete it)."""
        self._need = need
        return _Starved()

    def _pull_token(self) -> Token | None:
        while True:
            token = self._scan_once()
            if token is None:
                return None
            if (
                not self._keep_whitespace
                and token.kind is TokenKind.TEXT
                and not token.content.strip()
            ):
                continue
            return token

    def _scan_once(self) -> Token | None:
        if self._pending_end is not None:
            name, offset = self._pending_end
            self._pending_end = None
            popped = self._open_tags.pop()
            assert popped == name
            return EndTag(name, offset)
        while True:
            text = self._buf
            pos = self._pos
            if pos >= len(text):
                if not self._closed:
                    raise self._starved(None)
                if self._open_tags:
                    raise XmlSyntaxError(
                        f"unexpected end of input; unclosed element "
                        f"<{self._open_tags[-1]}>",
                        self._base + pos,
                    )
                return None
            if text[pos] != "<":
                return self._scan_text()
            # Markup.  Dispatch on the character after "<": start and
            # end tags dominate every real document, and neither can be
            # confused with the "<!"/"<?" constructs, so the common
            # cases pay no prefix chain — and, crucially for chunked
            # input, no could-this-become-a-comment guard (a start tag
            # cut at the chunk boundary starves inside
            # ``_scan_start_tag`` exactly as before).
            nxt = text[pos + 1 : pos + 2]
            if nxt == "/":
                return self._scan_end_tag()
            if nxt and nxt != "!" and nxt != "?":
                return self._scan_start_tag()
            if not nxt:
                # Lone "<" at the end of the buffer: any construct
                # could follow.
                if not self._closed:
                    raise self._starved(None)
                return self._scan_start_tag()  # exact scan raises
            if text.startswith("<!--", pos):
                self._skip_comment()
                continue
            if text.startswith("<![CDATA[", pos):
                return self._scan_cdata()
            if nxt == "?":
                self._skip_pi()
                continue
            if text.startswith("<!DOCTYPE", pos):
                self._skip_doctype()
                continue
            if not self._closed and len(text) - pos < _LONGEST_PREFIX:
                rest = text[pos:]
                if any(p.startswith(rest) for p in _MARKUP_PREFIXES):
                    # Could still become a comment/CDATA/DOCTYPE once
                    # more input arrives.
                    raise self._starved(None)
            return self._scan_start_tag()

    def _scan_text(self) -> Text:
        text = self._buf
        start = self._pos
        end = text.find("<", start + self._resume)
        if end == -1:
            if not self._closed:
                # A text run is maximal: it only ends at markup or at
                # the true end of input, never at a chunk boundary.
                self._resume = len(text) - start
                raise self._starved("<")
            end = len(text)
        self._resume = 0
        raw = text[start:end]
        self._pos = end
        offset = self._base + start
        if not self._open_tags and raw.strip():
            raise XmlSyntaxError("character data outside the root element", offset)
        return Text(self._resolve_entities(raw, offset), offset)

    def _scan_cdata(self) -> Text:
        start = self._pos
        text = self._buf
        end = text.find("]]>", max(start + 9, start + self._resume))
        if end == -1:
            if not self._closed:
                # Keep the last 2 chars rescannable: they may be the
                # head of a "]]>" split across the chunk boundary.
                self._resume = max(0, len(text) - start - 2)
                raise self._starved("]]>")
            raise XmlSyntaxError(
                "unterminated CDATA section", self._base + start
            )
        self._resume = 0
        content = text[start + 9 : end]
        self._pos = end + 3
        if not self._open_tags:
            raise XmlSyntaxError(
                "CDATA section outside the root element", self._base + start
            )
        return Text(content, self._base + start)

    def _skip_comment(self) -> None:
        start = self._pos
        text = self._buf
        end = text.find("-->", max(start + 4, start + self._resume))
        if end == -1:
            if not self._closed:
                self._resume = max(0, len(text) - start - 2)
                raise self._starved("-->")
            raise XmlSyntaxError("unterminated comment", self._base + start)
        self._resume = 0
        self._pos = end + 3

    def _skip_pi(self) -> None:
        start = self._pos
        text = self._buf
        end = text.find("?>", max(start + 2, start + self._resume))
        if end == -1:
            if not self._closed:
                self._resume = max(0, len(text) - start - 1)
                raise self._starved("?>")
            raise XmlSyntaxError(
                "unterminated processing instruction", self._base + start
            )
        self._resume = 0
        self._pos = end + 2

    def _skip_doctype(self) -> None:
        # <!DOCTYPE name [internal subset]? >
        start = self._pos
        pos = start + len("<!DOCTYPE")
        text = self._buf
        depth = 0
        subset_start = None
        while pos < len(text):
            ch = text[pos]
            if ch == "[":
                if depth == 0:
                    subset_start = pos + 1
                depth += 1
            elif ch == "]":
                depth -= 1
                if depth == 0 and subset_start is not None:
                    self.internal_subset = text[subset_start:pos]
            elif ch == ">" and depth == 0:
                self._pos = pos + 1
                return
            pos += 1
        if not self._closed:
            raise self._starved(">")
        raise XmlSyntaxError(
            "unterminated DOCTYPE declaration", self._base + start
        )

    def _scan_start_tag(self) -> StartTag:
        text = self._buf
        start = self._pos
        match = _START_TAG_RE.match(text, start)
        if match is not None:
            return self._start_tag_from_match(match)
        # Exact character-level scan: Unicode names, unusual spacing,
        # malformed markup, or a tag still incomplete in the buffer.
        pos = start + 1
        if pos >= len(text):
            if not self._closed:
                raise self._starved(">")
            raise XmlSyntaxError("malformed start tag", self._base + start)
        if not _is_name_start(text[pos]):
            raise XmlSyntaxError("malformed start tag", self._base + start)
        name, pos = self._scan_name(pos)
        attributes: list[Attribute] = []
        seen: set[str] = set()
        while True:
            pos = self._skip_ws(pos)
            if pos >= len(text):
                if not self._closed:
                    raise self._starved(None)
                raise XmlSyntaxError(
                    f"unterminated start tag <{name}", self._base + start
                )
            ch = text[pos]
            if ch == ">":
                self._pos = pos + 1
                self._check_single_root(self._base + start)
                self._open_tags.append(name)
                return StartTag(name, tuple(attributes), self._base + start)
            if ch == "/":
                if pos + 1 >= len(text) and not self._closed:
                    raise self._starved(">")
                if not text.startswith("/>", pos):
                    raise XmlSyntaxError(
                        f"malformed start tag <{name}", self._base + pos
                    )
                self._pos = pos + 2
                self._check_single_root(self._base + start)
                self._open_tags.append(name)
                self._pending_end = (name, self._base + start)
                return StartTag(
                    name, tuple(attributes), self._base + start, self_closing=True
                )
            if not _is_name_start(ch):
                raise XmlSyntaxError(
                    f"unexpected character {ch!r} in start tag <{name}",
                    self._base + pos,
                )
            attr_name, pos = self._scan_name(pos)
            pos = self._skip_ws(pos)
            if pos >= len(text):
                if not self._closed:
                    raise self._starved(None)
            if pos >= len(text) or text[pos] != "=":
                raise XmlSyntaxError(
                    f"attribute {attr_name!r} without value in <{name}>",
                    self._base + pos,
                )
            pos = self._skip_ws(pos + 1)
            if pos >= len(text):
                if not self._closed:
                    raise self._starved(None)
            if pos >= len(text) or text[pos] not in "\"'":
                raise XmlSyntaxError(
                    f"unquoted value for attribute {attr_name!r} in <{name}>",
                    self._base + pos,
                )
            quote = text[pos]
            value_end = text.find(quote, pos + 1)
            if value_end == -1:
                if not self._closed:
                    raise self._starved(">")
                raise XmlSyntaxError(
                    f"unterminated value for attribute {attr_name!r}",
                    self._base + pos,
                )
            raw_value = text[pos + 1 : value_end]
            if attr_name in seen:
                raise XmlSyntaxError(
                    f"duplicate attribute {attr_name!r} in <{name}>",
                    self._base + pos,
                )
            seen.add(attr_name)
            attributes.append(
                Attribute(
                    attr_name, self._resolve_entities(raw_value, self._base + pos)
                )
            )
            pos = value_end + 1

    def _start_tag_from_match(self, match: re.Match) -> StartTag:
        """Commit a regex-recognised (complete) start tag."""
        start = self._pos
        offset = self._base + start
        name = _intern(match.group(1))
        attr_src = match.group(2)
        attributes: tuple[Attribute, ...] = ()
        if attr_src:
            attrs = []
            seen: set[str] = set()
            for attr in _ATTR_RE.finditer(attr_src):
                attr_name = _intern(attr.group(1))
                raw_value = attr.group(2)
                if raw_value is None:
                    raw_value = attr.group(3)
                if attr_name in seen:
                    raise XmlSyntaxError(
                        f"duplicate attribute {attr_name!r} in <{name}>", offset
                    )
                seen.add(attr_name)
                attrs.append(
                    Attribute(attr_name, self._resolve_entities(raw_value, offset))
                )
            attributes = tuple(attrs)
        self._pos = match.end()
        self._check_single_root(offset)
        self._open_tags.append(name)
        if match.group(3):
            self._pending_end = (name, offset)
            return StartTag(name, attributes, offset, self_closing=True)
        return StartTag(name, attributes, offset)

    def _scan_end_tag(self) -> EndTag:
        text = self._buf
        start = self._pos
        match = _END_TAG_RE.match(text, start)
        if match is not None:
            self._pos = match.end()
            return self._close_tag(_intern(match.group(1)), start)
        pos = start + 2
        if pos >= len(text):
            if not self._closed:
                raise self._starved(">")
            raise XmlSyntaxError("malformed end tag", self._base + start)
        if not _is_name_start(text[pos]):
            raise XmlSyntaxError("malformed end tag", self._base + start)
        name, pos = self._scan_name(pos)
        pos = self._skip_ws(pos)
        if pos >= len(text):
            if not self._closed:
                raise self._starved(">")
            raise XmlSyntaxError(
                f"malformed end tag </{name}", self._base + start
            )
        if text[pos] != ">":
            raise XmlSyntaxError(
                f"malformed end tag </{name}", self._base + start
            )
        self._pos = pos + 1
        return self._close_tag(name, start)

    def _close_tag(self, name: str, start: int) -> EndTag:
        offset = self._base + start
        if not self._open_tags:
            raise XmlSyntaxError(
                f"end tag </{name}> with no open element", offset
            )
        expected = self._open_tags.pop()
        if expected != name:
            raise XmlSyntaxError(
                f"mismatched end tag: expected </{expected}>, got </{name}>",
                offset,
            )
        return EndTag(name, offset)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _check_single_root(self, offset: int) -> None:
        if self._started and not self._open_tags:
            raise XmlSyntaxError("multiple root elements", offset)
        self._started = True

    def _scan_name(self, pos: int) -> tuple[str, int]:
        text = self._buf
        start = pos
        pos += 1
        while pos < len(text) and _is_name_char(text[pos]):
            pos += 1
        return _intern(text[start:pos]), pos

    def _skip_ws(self, pos: int) -> int:
        text = self._buf
        while pos < len(text) and text[pos] in " \t\r\n":
            pos += 1
        return pos

    def _resolve_entities(self, raw: str, offset: int) -> str:
        return resolve_entities_text(raw, offset)


def tokenize(source, keep_whitespace: bool = False) -> Iterator[Token]:
    """Tokenize *source* into a stream of XML tokens.

    Args:
        source: a complete document (``str`` or UTF-8 ``bytes``), or an
            iterable of chunks — consumed lazily, one chunk at a time,
            as tokens are pulled (the raw input is never joined; only
            the token being scanned is ever buffered).  Bytes sources
            run through the bytes-domain lexer
            (:class:`~repro.xmlio.lexer_bytes.ByteXmlLexer`) — wire
            bytes are scanned directly, text decoded lazily.
        keep_whitespace: emit whitespace-only text tokens instead of
            dropping them.

    Yields:
        ``StartTag`` / ``EndTag`` / ``Text`` tokens in document order.
    """
    yield from make_lexer(source, keep_whitespace)


def make_lexer(
    source=None,
    keep_whitespace: bool = False,
    refill: Callable[[], str | None] | None = None,
):
    """Return a pull-based lexer over *source*, choosing the scanning
    domain from the input representation.

    ``str`` sources get the classic :class:`XmlLexer`; ``bytes`` (or
    ``bytearray``/``memoryview``) sources get the zero-copy
    :class:`~repro.xmlio.lexer_bytes.ByteXmlLexer` (DESIGN.md §11),
    which scans the raw bytes and decodes text lazily.  For an
    iterable the *first non-empty chunk* decides the domain — it is
    pulled eagerly at construction (leading empty chunks are skipped,
    but their type still picks the domain if the iterable holds
    nothing else); later chunks stay lazy.

    Args:
        source: a complete document (``str`` or ``bytes``), an
            iterable of same-typed chunks, or ``None`` for a push-mode
            lexer driven by ``feed()`` / ``close()`` (str domain; use
            :class:`ByteXmlLexer` directly for bytes push mode).
        keep_whitespace: emit whitespace-only text tokens.
        refill: optional callable supplying the next chunk on demand
            (see :class:`XmlLexer`).
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        from repro.xmlio.lexer_bytes import ByteXmlLexer

        return ByteXmlLexer(bytes(source), keep_whitespace, refill=refill)
    if source is None or isinstance(source, str):
        return XmlLexer(source, keep_whitespace, refill=refill)
    # An iterable of chunks: peek at the first non-empty chunk to pick
    # the domain, then hand first + remainder back as an iterable
    # source (each lexer already consumes those lazily).
    if refill is not None:
        raise TypeError("pass either an iterable source or refill=, not both")
    chunks = iter(source)
    first = None
    empty = None
    for chunk in chunks:
        if chunk:
            first = chunk
            break
        # Remember the type of leading empty chunks: an all-empty bytes
        # iterable must still get the bytes-domain lexer.
        empty = chunk
    if first is None:
        if isinstance(empty, (bytes, bytearray, memoryview)):
            from repro.xmlio.lexer_bytes import ByteXmlLexer

            return ByteXmlLexer(b"", keep_whitespace)
        return XmlLexer("", keep_whitespace)
    rest = itertools.chain((first,), chunks)
    if isinstance(first, (bytes, bytearray, memoryview)):
        from repro.xmlio.lexer_bytes import ByteXmlLexer

        return ByteXmlLexer(rest, keep_whitespace)
    return XmlLexer(rest, keep_whitespace)
