"""Incremental, character-level XML tokenizer.

This is the lowest layer of the reproduction: a from-scratch streaming
lexer that turns a string (or an iterable of string chunks) into the
token stream consumed by the GCX stream pre-projector.  It supports the
subset of XML needed by the paper's workloads plus the common
conveniences one meets in real documents:

* elements with attributes (single- or double-quoted),
* self-closing tags (normalised to start + end token pairs),
* character data with the five predefined entities
  (``&lt; &gt; &amp; &apos; &quot;``) and numeric character references,
* CDATA sections,
* comments and processing instructions (skipped),
* an XML declaration and a DOCTYPE with an optional internal DTD subset
  (the subset text is preserved for :mod:`repro.xmlio.dtd`).

Namespace processing is intentionally out of scope: GCX's fragment and
the XMark workloads are namespace-free, and prefixed names pass through
verbatim as part of the tag name.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.xmlio.errors import XmlSyntaxError
from repro.xmlio.tokens import Attribute, EndTag, StartTag, Text, Token

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = "_:"
_NAME_EXTRA = "_:.-"


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class XmlLexer:
    """Pull-based tokenizer over a complete document string.

    The whole input string is held by the lexer, but tokens are produced
    strictly on demand (:meth:`next_token`), which is what gives the GCX
    projector its one-token-lookahead discipline.
    """

    def __init__(self, text: str, keep_whitespace: bool = False):
        self._text = text
        self._pos = 0
        self._keep_whitespace = keep_whitespace
        self._open_tags: list[str] = []
        self._started = False
        # Synthetic end tag queued by a self-closing start tag.
        self._pending_end: EndTag | None = None
        #: raw text of the internal DTD subset, if a DOCTYPE carried one.
        self.internal_subset: str | None = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def next_token(self) -> Token | None:
        """Return the next token, or ``None`` at end of input.

        Raises:
            XmlSyntaxError: on malformed markup or mismatched tags.
        """
        while True:
            token = self._scan_once()
            if token is None:
                return None
            if (
                not self._keep_whitespace
                and token.kind.value == "text"
                and not token.content.strip()
            ):
                continue
            return token

    def __iter__(self) -> Iterator[Token]:
        while True:
            token = self.next_token()
            if token is None:
                return
            yield token

    @property
    def depth(self) -> int:
        """Number of currently open elements."""
        return len(self._open_tags)

    # ------------------------------------------------------------------
    # scanning
    # ------------------------------------------------------------------

    def _scan_once(self) -> Token | None:
        if self._pending_end is not None:
            token = self._pending_end
            self._pending_end = None
            popped = self._open_tags.pop()
            assert popped == token.name
            return token
        text = self._text
        pos = self._pos
        if pos >= len(text):
            if self._open_tags:
                raise XmlSyntaxError(
                    f"unexpected end of input; unclosed element "
                    f"<{self._open_tags[-1]}>",
                    pos,
                )
            return None
        if text[pos] != "<":
            return self._scan_text()
        # Markup.
        if text.startswith("<!--", pos):
            self._skip_comment()
            return self._scan_once()
        if text.startswith("<![CDATA[", pos):
            return self._scan_cdata()
        if text.startswith("<?", pos):
            self._skip_pi()
            return self._scan_once()
        if text.startswith("<!DOCTYPE", pos):
            self._skip_doctype()
            return self._scan_once()
        if text.startswith("</", pos):
            return self._scan_end_tag()
        return self._scan_start_tag()

    def _scan_text(self) -> Text:
        text = self._text
        start = self._pos
        end = text.find("<", start)
        if end == -1:
            end = len(text)
        raw = text[start:end]
        self._pos = end
        if not self._open_tags and raw.strip():
            raise XmlSyntaxError("character data outside the root element", start)
        return Text(self._resolve_entities(raw, start), start)

    def _scan_cdata(self) -> Text:
        start = self._pos
        end = self._text.find("]]>", start + 9)
        if end == -1:
            raise XmlSyntaxError("unterminated CDATA section", start)
        content = self._text[start + 9 : end]
        self._pos = end + 3
        if not self._open_tags:
            raise XmlSyntaxError("CDATA section outside the root element", start)
        return Text(content, start)

    def _skip_comment(self) -> None:
        start = self._pos
        end = self._text.find("-->", start + 4)
        if end == -1:
            raise XmlSyntaxError("unterminated comment", start)
        self._pos = end + 3

    def _skip_pi(self) -> None:
        start = self._pos
        end = self._text.find("?>", start + 2)
        if end == -1:
            raise XmlSyntaxError("unterminated processing instruction", start)
        self._pos = end + 2

    def _skip_doctype(self) -> None:
        # <!DOCTYPE name [internal subset]? >
        start = self._pos
        pos = start + len("<!DOCTYPE")
        text = self._text
        depth = 0
        subset_start = None
        while pos < len(text):
            ch = text[pos]
            if ch == "[":
                if depth == 0:
                    subset_start = pos + 1
                depth += 1
            elif ch == "]":
                depth -= 1
                if depth == 0 and subset_start is not None:
                    self.internal_subset = text[subset_start:pos]
            elif ch == ">" and depth == 0:
                self._pos = pos + 1
                return
            pos += 1
        raise XmlSyntaxError("unterminated DOCTYPE declaration", start)

    def _scan_start_tag(self) -> StartTag:
        text = self._text
        start = self._pos
        pos = start + 1
        if pos >= len(text) or not _is_name_start(text[pos]):
            raise XmlSyntaxError("malformed start tag", start)
        name, pos = self._scan_name(pos)
        attributes: list[Attribute] = []
        seen: set[str] = set()
        while True:
            pos = self._skip_ws(pos)
            if pos >= len(text):
                raise XmlSyntaxError(f"unterminated start tag <{name}", start)
            ch = text[pos]
            if ch == ">":
                self._pos = pos + 1
                self._check_single_root(start)
                self._open_tags.append(name)
                return StartTag(name, tuple(attributes), start)
            if ch == "/":
                if not text.startswith("/>", pos):
                    raise XmlSyntaxError(f"malformed start tag <{name}", pos)
                self._pos = pos + 2
                self._check_single_root(start)
                self._open_tags.append(name)
                self._pending_end = EndTag(name, start)
                return StartTag(name, tuple(attributes), start, self_closing=True)
            if not _is_name_start(ch):
                raise XmlSyntaxError(
                    f"unexpected character {ch!r} in start tag <{name}", pos
                )
            attr_name, pos = self._scan_name(pos)
            pos = self._skip_ws(pos)
            if pos >= len(text) or text[pos] != "=":
                raise XmlSyntaxError(
                    f"attribute {attr_name!r} without value in <{name}", pos
                )
            pos = self._skip_ws(pos + 1)
            if pos >= len(text) or text[pos] not in "\"'":
                raise XmlSyntaxError(
                    f"unquoted value for attribute {attr_name!r} in <{name}", pos
                )
            quote = text[pos]
            value_end = text.find(quote, pos + 1)
            if value_end == -1:
                raise XmlSyntaxError(
                    f"unterminated value for attribute {attr_name!r}", pos
                )
            raw_value = text[pos + 1 : value_end]
            if attr_name in seen:
                raise XmlSyntaxError(
                    f"duplicate attribute {attr_name!r} in <{name}", pos
                )
            seen.add(attr_name)
            attributes.append(
                Attribute(attr_name, self._resolve_entities(raw_value, pos))
            )
            pos = value_end + 1

    def _scan_end_tag(self) -> EndTag:
        text = self._text
        start = self._pos
        pos = start + 2
        if pos >= len(text) or not _is_name_start(text[pos]):
            raise XmlSyntaxError("malformed end tag", start)
        name, pos = self._scan_name(pos)
        pos = self._skip_ws(pos)
        if pos >= len(text) or text[pos] != ">":
            raise XmlSyntaxError(f"malformed end tag </{name}", start)
        self._pos = pos + 1
        if not self._open_tags:
            raise XmlSyntaxError(f"end tag </{name}> with no open element", start)
        expected = self._open_tags.pop()
        if expected != name:
            raise XmlSyntaxError(
                f"mismatched end tag: expected </{expected}>, got </{name}>", start
            )
        return EndTag(name, start)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _check_single_root(self, offset: int) -> None:
        if self._started and not self._open_tags:
            raise XmlSyntaxError("multiple root elements", offset)
        self._started = True

    def _scan_name(self, pos: int) -> tuple[str, int]:
        text = self._text
        start = pos
        pos += 1
        while pos < len(text) and _is_name_char(text[pos]):
            pos += 1
        return text[start:pos], pos

    def _skip_ws(self, pos: int) -> int:
        text = self._text
        while pos < len(text) and text[pos] in " \t\r\n":
            pos += 1
        return pos

    def _resolve_entities(self, raw: str, offset: int) -> str:
        if "&" not in raw:
            return raw
        out: list[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            end = raw.find(";", i + 1)
            if end == -1:
                raise XmlSyntaxError("unterminated entity reference", offset + i)
            entity = raw[i + 1 : end]
            if entity.startswith("#x") or entity.startswith("#X"):
                out.append(chr(int(entity[2:], 16)))
            elif entity.startswith("#"):
                out.append(chr(int(entity[1:])))
            elif entity in _PREDEFINED_ENTITIES:
                out.append(_PREDEFINED_ENTITIES[entity])
            else:
                raise XmlSyntaxError(
                    f"unknown entity reference &{entity};", offset + i
                )
            i = end + 1
        return "".join(out)


def tokenize(
    source: str | Iterable[str], keep_whitespace: bool = False
) -> Iterator[Token]:
    """Tokenize *source* into a stream of XML tokens.

    Args:
        source: a complete document string, or an iterable of chunks
            (joined before scanning — the *buffer*, not the raw input,
            is what GCX minimises, and the engine never retains input
            that the projector has passed over).
        keep_whitespace: emit whitespace-only text tokens instead of
            dropping them.

    Yields:
        ``StartTag`` / ``EndTag`` / ``Text`` tokens in document order.
    """
    if not isinstance(source, str):
        source = "".join(source)
    yield from XmlLexer(source, keep_whitespace)


def make_lexer(source: str, keep_whitespace: bool = False) -> XmlLexer:
    """Return a pull-based lexer over *source*."""
    return XmlLexer(source, keep_whitespace)
