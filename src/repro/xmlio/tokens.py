"""XML token (event) model.

The GCX runtime consumes the input document as a sequence of tokens, one
at a time, with a lookahead of a single token (paper, Section 3: "This
can be done on-the-fly, with a lookahead of just one token").  Three
token kinds exist:

* ``StartTag`` — an element opening tag, carrying its attributes;
* ``EndTag``   — the matching closing tag;
* ``Text``     — a maximal run of character data.

Attributes are carried on the ``StartTag`` rather than modelled as
separate tokens, mirroring how GCX copies tokens into its buffer.

Two representations exist, one per consumer speed class:

* the **token classes** below — slotted dataclasses with plain
  generated ``__init__`` (the earlier *frozen* dataclasses paid an
  ``object.__setattr__`` per field on every allocation, a real cost at
  one token per tag).  They are what :meth:`XmlLexer.next_token`
  returns and what the DOM layer, the writer and the tests consume.
* the **event tuple** ``(kind, name, attrs, text)`` — the wire format
  of the lexer's fast path (:meth:`XmlLexer.next_event` /
  :meth:`XmlLexer.tokens_into`).  ``kind`` is one of the small-int
  constants :data:`EVENT_START` / :data:`EVENT_END` / :data:`EVENT_TEXT`,
  ``attrs`` is a tuple of ``(name, value)`` pairs or ``None`` when the
  start tag has none, and ``text`` is the character data of a text
  event.  The common no-attribute start tag therefore costs one small
  tuple instead of a ``StartTag`` plus an ``Attribute`` list — the
  allocation diet the compiled projector's dispatch loop relies on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Event-tuple discriminators of the lexer fast path (see module
#: docstring).  Deliberately small ints: the compiled projector
#: dispatches on them with two integer comparisons.
EVENT_START = 0
EVENT_END = 1
EVENT_TEXT = 2

#: One fast-path event: ``(kind, name, attrs, text)``.
Event = tuple


class TokenKind(enum.Enum):
    """Discriminator for the three streaming token kinds."""

    START = "start"
    END = "end"
    TEXT = "text"


@dataclass(slots=True, unsafe_hash=True)
class Attribute:
    """A single ``name="value"`` attribute on a start tag."""

    name: str
    value: str


@dataclass(slots=True, unsafe_hash=True)
class StartTag:
    """Opening tag ``<name a="v" ...>``.

    ``self_closing`` start tags (``<name/>``) are normalised by the lexer
    into a ``StartTag`` immediately followed by an ``EndTag``, so
    downstream consumers never see the flag set; it is retained for
    diagnostics and round-tripping tests.
    """

    name: str
    attributes: tuple[Attribute, ...] = ()
    offset: int = 0
    self_closing: bool = False

    kind = TokenKind.START

    def attribute(self, name: str) -> str | None:
        """Return the value of attribute *name*, or ``None`` if absent."""
        for attr in self.attributes:
            if attr.name == name:
                return attr.value
        return None

    def __str__(self) -> str:
        parts = [self.name]
        parts.extend(f'{a.name}="{a.value}"' for a in self.attributes)
        return "<" + " ".join(parts) + ">"


@dataclass(slots=True, unsafe_hash=True)
class EndTag:
    """Closing tag ``</name>``."""

    name: str
    offset: int = 0

    kind = TokenKind.END

    def __str__(self) -> str:
        return f"</{self.name}>"


@dataclass(slots=True, unsafe_hash=True)
class Text:
    """A maximal run of character data between tags.

    The lexer resolves the five predefined entities and CDATA sections
    before emitting ``Text``; ``content`` is therefore plain text.
    """

    content: str
    offset: int = 0

    kind = TokenKind.TEXT

    def __str__(self) -> str:
        return self.content


Token = StartTag | EndTag | Text


def is_whitespace_text(token: Token) -> bool:
    """True if *token* is a ``Text`` token consisting only of whitespace.

    The GCX projector discards ignorable whitespace between elements;
    this predicate defines "ignorable" for the whole code base.
    """
    return token.kind is TokenKind.TEXT and not token.content.strip()
