"""XML token (event) model.

The GCX runtime consumes the input document as a sequence of tokens, one
at a time, with a lookahead of a single token (paper, Section 3: "This
can be done on-the-fly, with a lookahead of just one token").  Three
token kinds exist:

* ``StartTag`` — an element opening tag, carrying its attributes;
* ``EndTag``   — the matching closing tag;
* ``Text``     — a maximal run of character data.

Attributes are carried on the ``StartTag`` rather than modelled as
separate tokens, mirroring how GCX copies tokens into its buffer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TokenKind(enum.Enum):
    """Discriminator for the three streaming token kinds."""

    START = "start"
    END = "end"
    TEXT = "text"


@dataclass(frozen=True)
class Attribute:
    """A single ``name="value"`` attribute on a start tag."""

    name: str
    value: str


@dataclass(frozen=True)
class StartTag:
    """Opening tag ``<name a="v" ...>``.

    ``self_closing`` start tags (``<name/>``) are normalised by the lexer
    into a ``StartTag`` immediately followed by an ``EndTag``, so
    downstream consumers never see the flag set; it is retained for
    diagnostics and round-tripping tests.
    """

    name: str
    attributes: tuple[Attribute, ...] = ()
    offset: int = 0
    self_closing: bool = False

    kind = TokenKind.START

    def attribute(self, name: str) -> str | None:
        """Return the value of attribute *name*, or ``None`` if absent."""
        for attr in self.attributes:
            if attr.name == name:
                return attr.value
        return None

    def __str__(self) -> str:
        parts = [self.name]
        parts.extend(f'{a.name}="{a.value}"' for a in self.attributes)
        return "<" + " ".join(parts) + ">"


@dataclass(frozen=True)
class EndTag:
    """Closing tag ``</name>``."""

    name: str
    offset: int = 0

    kind = TokenKind.END

    def __str__(self) -> str:
        return f"</{self.name}>"


@dataclass(frozen=True)
class Text:
    """A maximal run of character data between tags.

    The lexer resolves the five predefined entities and CDATA sections
    before emitting ``Text``; ``content`` is therefore plain text.
    """

    content: str
    offset: int = 0

    kind = TokenKind.TEXT

    def __str__(self) -> str:
        return self.content


Token = StartTag | EndTag | Text


def is_whitespace_text(token: Token) -> bool:
    """True if *token* is a ``Text`` token consisting only of whitespace.

    The GCX projector discards ignorable whitespace between elements;
    this predicate defines "ignorable" for the whole code base.
    """
    return token.kind is TokenKind.TEXT and not token.content.strip()
