"""Minimal DTD parser.

The paper's FluXQuery comparison system "can exploit schema information,
and was provided the XMark DTD".  Our FluX-like baseline engine
(:mod:`repro.baselines.flux_engine`) uses the same kind of knowledge:
from a DTD it learns, for every element type, the set of child element
types that may occur and in which relative order groups they appear,
which lets it decide "no further match can arrive under this element"
earlier than a schema-oblivious engine.

Only the parts of DTD syntax needed for that are implemented:
``<!ELEMENT name content-model>`` and (parsed but unused)
``<!ATTLIST ...>`` declarations.  Content models are reduced to the
information the baseline consumes:

* the set of child element names that may appear, and
* whether the order of *distinct* child names is fixed by a top-level
  sequence group (``(a, b, c)``), in which case once ``b`` has been
  seen no further ``a`` can arrive.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.xmlio.errors import DtdSyntaxError

_ELEMENT_RE = re.compile(r"<!ELEMENT\s+([\w:.-]+)\s+(.*?)>", re.DOTALL)
_ATTLIST_RE = re.compile(r"<!ATTLIST\s+([\w:.-]+)\s+(.*?)>", re.DOTALL)
_NAME_RE = re.compile(r"[\w:.-]+")


@dataclass
class ElementDecl:
    """Declaration of one element type.

    Attributes:
        name: the element type name.
        children: child element names that may occur, in declaration
            order (duplicates removed, first occurrence kept).
        sequence: True if the top-level content group is a sequence
            (``,``-separated), meaning distinct child names arrive in
            the listed relative order.
        mixed: True for mixed content (``#PCDATA`` present).
        empty: True for ``EMPTY`` content.
    """

    name: str
    children: tuple[str, ...] = ()
    sequence: bool = False
    mixed: bool = False
    empty: bool = False

    def position_of(self, child: str) -> int | None:
        """Index of *child* in the sequence order, or None if unknown."""
        try:
            return self.children.index(child)
        except ValueError:
            return None


@dataclass
class Dtd:
    """A parsed DTD: element declarations by name."""

    elements: dict[str, ElementDecl] = field(default_factory=dict)

    def declaration(self, name: str) -> ElementDecl | None:
        """Return the declaration for element *name*, or None."""
        return self.elements.get(name)

    def no_more_children_of(self, parent: str, seen: str, wanted: str) -> bool:
        """Schema-based early termination test.

        True when, under an element of type *parent* in which a child of
        type *seen* has just been encountered, no further child of type
        *wanted* can occur (because the content model is a sequence and
        *wanted* precedes *seen*).  This is the kind of inference the
        FluX scheduler draws from the XMark DTD.
        """
        decl = self.elements.get(parent)
        if decl is None or not decl.sequence or decl.mixed:
            return False
        seen_pos = decl.position_of(seen)
        wanted_pos = decl.position_of(wanted)
        if seen_pos is None or wanted_pos is None:
            return False
        return wanted_pos < seen_pos


def _parse_content_model(model: str) -> ElementDecl:
    model = model.strip()
    if model == "EMPTY":
        return ElementDecl("", empty=True)
    if model == "ANY":
        return ElementDecl("")
    mixed = "#PCDATA" in model
    names: list[str] = []
    for match in _NAME_RE.finditer(model):
        token = match.group(0)
        if token in ("EMPTY", "ANY") or token.startswith("#"):
            continue
        if token not in names:
            names.append(token)
    # A model is a sequence when its *top level* separators are commas.
    # Strip one level of outer parentheses and inspect separators at
    # depth zero.
    inner = model
    if inner.startswith("(") and inner.endswith((")", ")*", ")+", ")?")):
        inner = inner[1 : inner.rfind(")")]
    depth = 0
    has_comma = False
    has_bar = False
    for ch in inner:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif depth == 0:
            if ch == ",":
                has_comma = True
            elif ch == "|":
                has_bar = True
    sequence = has_comma and not has_bar and not mixed
    return ElementDecl("", tuple(names), sequence=sequence, mixed=mixed)


def parse_dtd(text: str) -> Dtd:
    """Parse the text of a DTD (external subset or internal subset).

    Raises:
        DtdSyntaxError: if an ``<!ELEMENT`` declaration is malformed.
    """
    dtd = Dtd()
    for match in _ELEMENT_RE.finditer(text):
        name, model = match.group(1), match.group(2)
        if not name:
            raise DtdSyntaxError("element declaration without a name")
        decl = _parse_content_model(model)
        decl.name = name
        dtd.elements[name] = decl
    return dtd
