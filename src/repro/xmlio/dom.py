"""Lightweight in-memory DOM.

The DOM is the substrate of the *baseline* engines (full in-memory
evaluation, as Galax / Saxon / QizX do in the paper's Figure 5) and the
semantics oracle for differential testing of the streaming GCX engine.
It is deliberately minimal: elements, text nodes, attributes, document
order — nothing the composition-free fragment does not need.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.xmlio.lexer import tokenize
from repro.xmlio.tokens import TokenKind


class DomNode:
    """A node of the in-memory tree.

    ``tag`` is ``None`` for text nodes and ``"#document"`` for the
    synthetic document root.  Attributes live in a plain dict on the
    element.  ``order`` is the document-order index (preorder), used by
    the XPath oracle to sort and deduplicate node sets.
    """

    __slots__ = ("tag", "text", "attributes", "children", "parent", "order")

    def __init__(self, tag, text=None, attributes=None, parent=None, order=0):
        self.tag = tag
        self.text = text
        self.attributes = dict(attributes) if attributes else {}
        self.children: list[DomNode] = []
        self.parent = parent
        self.order = order

    # -- classification -------------------------------------------------

    @property
    def is_text(self) -> bool:
        """True for character-data nodes."""
        return self.tag is None

    @property
    def is_document(self) -> bool:
        """True for the synthetic document root."""
        return self.tag == "#document"

    @property
    def is_element(self) -> bool:
        """True for element nodes."""
        return self.tag is not None and self.tag != "#document"

    # -- navigation ------------------------------------------------------

    def iter_descendants(self, include_self: bool = False) -> Iterator[DomNode]:
        """Yield descendants in document order."""
        if include_self:
            yield self
        for child in self.children:
            yield from child.iter_descendants(include_self=True)

    def ancestors(self) -> Iterator[DomNode]:
        """Yield proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    # -- values ----------------------------------------------------------

    def string_value(self) -> str:
        """XPath string value: concatenated text of the subtree."""
        if self.is_text:
            return self.text or ""
        parts: list[str] = []
        for node in self.iter_descendants():
            if node.is_text:
                parts.append(node.text or "")
        return "".join(parts)

    def count_nodes(self) -> int:
        """Number of nodes in the subtree, itself included.

        Used as the "buffered nodes" metric of the baseline engines:
        a full-DOM engine buffers every node of the document.
        """
        return 1 + sum(child.count_nodes() for child in self.children)

    def __repr__(self) -> str:
        if self.is_text:
            return f"DomText({self.text!r})"
        return f"DomNode(<{self.tag}> children={len(self.children)})"


def build_dom(tokens, keep_whitespace: bool = False) -> DomNode:
    """Build a DOM tree from a token iterable.

    Returns the synthetic ``#document`` node whose single element child
    is the document root.
    """
    order = 0
    document = DomNode("#document", order=order)
    stack = [document]
    for token in tokens:
        order += 1
        if token.kind is TokenKind.START:
            node = DomNode(
                token.name,
                attributes={a.name: a.value for a in token.attributes},
                parent=stack[-1],
                order=order,
            )
            stack[-1].children.append(node)
            stack.append(node)
        elif token.kind is TokenKind.END:
            stack.pop()
        else:
            if not keep_whitespace and not token.content.strip():
                continue
            node = DomNode(None, text=token.content, parent=stack[-1], order=order)
            stack[-1].children.append(node)
    return document


def parse_dom(source: str, keep_whitespace: bool = False) -> DomNode:
    """Parse an XML string into a DOM, returning the document node."""
    return build_dom(tokenize(source, keep_whitespace), keep_whitespace)
