"""XML serialization for query results and DOM subtrees."""

from __future__ import annotations

from repro.xmlio.tokens import Token, TokenKind


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
    )


class XmlWriter:
    """Serialized XML output sink.

    By default output accumulates in memory (``getvalue``).  Passing a
    *stream* (any object with ``write``) turns the writer into a true
    streaming sink: the engine then emits results incrementally and
    never holds the serialized output — the output side of GCX's
    "evaluate the query on-the-fly" pipeline.
    """

    def __init__(self, stream=None):
        self._parts: list[str] = []
        self._stream = stream
        #: characters written so far (maintained in both modes)
        self.chars_written = 0

    def _emit(self, chunk: str) -> None:
        self.chars_written += len(chunk)
        if self._stream is not None:
            self._stream.write(chunk)
        else:
            self._parts.append(chunk)

    def start_element(self, tag: str, attributes=None) -> None:
        """Emit an opening tag; *attributes* is an iterable of pairs."""
        if attributes:
            attrs = "".join(
                f' {name}="{escape_attribute(value)}"' for name, value in attributes
            )
            self._emit(f"<{tag}{attrs}>")
        else:
            self._emit(f"<{tag}>")

    def end_element(self, tag: str) -> None:
        """Emit a closing tag."""
        self._emit(f"</{tag}>")

    def text(self, content: str) -> None:
        """Emit escaped character data."""
        self._emit(escape_text(content))

    def raw(self, content: str) -> None:
        """Emit pre-serialized markup verbatim."""
        self._emit(content)

    def token(self, token: Token) -> None:
        """Emit a streaming token."""
        if token.kind is TokenKind.START:
            self.start_element(
                token.name, [(a.name, a.value) for a in token.attributes]
            )
        elif token.kind is TokenKind.END:
            self.end_element(token.name)
        else:
            self.text(token.content)

    def getvalue(self) -> str:
        """Everything written so far (empty in streaming mode — the
        output went to the stream)."""
        return "".join(self._parts)

    def __len__(self) -> int:
        return self.chars_written


def serialize_dom(node, writer: XmlWriter | None = None) -> str:
    """Serialize a DOM node (and subtree) to markup.

    The synthetic ``#document`` node serializes as its children.
    """
    own = writer is None
    if writer is None:
        writer = XmlWriter()
    if node.is_text:
        writer.text(node.text or "")
    elif node.is_document:
        for child in node.children:
            serialize_dom(child, writer)
    else:
        writer.start_element(node.tag, sorted(node.attributes.items()))
        for child in node.children:
            serialize_dom(child, writer)
        writer.end_element(node.tag)
    return writer.getvalue() if own else ""
