"""Build-on-first-use loader for the optional C batch scanner.

``_cscan.c`` (same directory) holds drop-in C replacements for the
batch middle loops of :class:`~repro.xmlio.lexer_bytes.ByteXmlLexer`.
This module turns it into an importable extension **without adding a
dependency**: when a C compiler and the CPython headers are present,
the source is compiled once (``cc -O2 -shared -fPIC``) into a cache
directory keyed by source hash + interpreter tag and loaded; when
anything in that chain is missing or fails — no compiler, no headers,
compile error, load error, or a failed self-test — :data:`scanner`
is ``None`` and the lexer silently keeps its pure-Python batch loops.
Every differential guarantee is carried by the Python side either way;
the suites run with the scanner both enabled and disabled
(``GCX_NO_CSCAN=1``).

Environment:

* ``GCX_NO_CSCAN`` — any non-empty value disables the scanner.
* ``GCX_CSCAN_CACHE`` — overrides the build cache directory
  (default ``~/.cache/gcx-cscan``).
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import os
import shutil
import subprocess
import sys
import sysconfig
from types import ModuleType

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_cscan.c")

#: why :data:`scanner` is (or is not) available — surfaced by STATS
#: and ``profile_stages.py`` so a silently-degraded environment is
#: visible instead of just slow.
status: str = "not attempted"

#: the loaded extension module exposing ``tokens`` / ``skip``, or
#: ``None`` when the pure-Python batch loops must be used.
scanner: ModuleType | None = None


def _cache_dir() -> str:
    override = os.environ.get("GCX_CSCAN_CACHE")
    if override:
        return override
    return os.path.join(
        os.path.expanduser("~"), ".cache", "gcx-cscan"
    )


def _build(source_text: bytes) -> str | None:
    """Compile ``_cscan.c`` into the cache, returning the .so path."""
    global status
    compiler = (
        os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    )
    if compiler is None:
        status = "no C compiler on PATH"
        return None
    include = sysconfig.get_path("include")
    if not include or not os.path.exists(
        os.path.join(include, "Python.h")
    ):
        status = "Python.h not found"
        return None
    tag = hashlib.sha256(
        source_text
        + sys.implementation.cache_tag.encode()
        + sys.platform.encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"_gcx_cscan-{tag}.so")
    if os.path.exists(so_path):
        return so_path
    try:
        os.makedirs(cache, exist_ok=True)
        tmp_path = so_path + f".tmp.{os.getpid()}"
        proc = subprocess.run(  # noqa: S603 — fixed argv, our own source
            [
                compiler,
                "-O2",
                "-shared",
                "-fPIC",
                "-fno-strict-aliasing",
                f"-I{include}",
                _SOURCE,
                "-o",
                tmp_path,
            ],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0:
            err = proc.stderr.decode("utf-8", "replace").strip()
            detail = ": " + err.splitlines()[-1] if err else ""
            status = "compile failed" + detail
            return None
        # atomic publish so concurrent builders (e.g. pytest-xdist,
        # worker pools) race benignly
        os.replace(tmp_path, so_path)
        return so_path
    except (OSError, subprocess.SubprocessError) as exc:
        status = f"build error: {exc}"
        return None


def _load(so_path: str) -> ModuleType | None:
    global status
    try:
        loader = importlib.machinery.ExtensionFileLoader(
            "_gcx_cscan", so_path
        )
        spec = importlib.util.spec_from_loader(
            "_gcx_cscan", loader, origin=so_path
        )
        if spec is None:
            status = "load failed: no spec"
            return None
        module = importlib.util.module_from_spec(spec)
        loader.exec_module(module)
        return module
    except (ImportError, OSError) as exc:
        status = f"load failed: {exc}"
        return None


def _self_test(mod: ModuleType) -> bool:
    """Differential smoke test against hand-computed expectations; a
    miscompiled or ABI-skewed extension is rejected, not trusted."""
    global status
    sig = bytes(0 if chr(b).isspace() else 1 for b in range(128))
    try:
        start_a = (0, "a", None, None)
        end_a = (1, "a", None, None)
        names = {b"a": "a", b"b": "b", b"r": "r", b"id": "id"}
        name_bytes = {"a": b"a", "b": b"b", "r": b"r", "id": b"id"}
        start_events = {b"a": start_a, b"r": (0, "r", None, None)}
        end_events = {"a": end_a, "r": (1, "r", None, None)}
        sink: list = []
        tags: list = ["r"]
        pos, count = mod.tokens(
            b'<a>x</a><a id="7">y</a>',
            0,
            sink,
            0,
            16,
            names,
            start_events,
            name_bytes,
            end_events,
            tags,
            False,
            sig,
        )
        if (
            pos != 23
            or count != 6
            or tags != ["r"]
            or sink
            != [
                start_a,
                (2, None, None, "x"),
                end_a,
                (0, "a", (("id", "7"),), None),
                (2, None, None, "y"),
                end_a,
            ]
        ):
            status = f"self-test failed: tokens -> {pos}, {count}, {sink}"
            return False
        # entity in a value and duplicate attributes must bail untouched
        for doc in (b'<a id="x&amp;y">', b'<a id="1" id="2">'):
            sink = []
            pos, count = mod.tokens(
                doc,
                0,
                sink,
                0,
                16,
                names,
                start_events,
                name_bytes,
                end_events,
                ["r"],
                False,
                sig,
            )
            if pos != 0 or count != 0 or sink:
                status = f"self-test failed: {doc!r} did not bail"
                return False
        # fused projection (13th arg): a committed non-self-closing
        # start whose name is not live stops the batch right behind
        # the start tag; live names batch straight through
        sink = []
        tags = ["r"]
        pos, count = mod.tokens(
            b"<a>x</a>",
            0,
            sink,
            0,
            16,
            names,
            start_events,
            name_bytes,
            end_events,
            tags,
            False,
            sig,
            {},
        )
        if pos != 3 or count != 1 or sink != [start_a] or tags != ["r", "a"]:
            status = f"self-test failed: live stop -> {pos}, {count}, {sink}"
            return False
        sink = []
        tags = ["r"]
        pos, count = mod.tokens(
            b"<a>x</a>",
            0,
            sink,
            0,
            16,
            names,
            start_events,
            name_bytes,
            end_events,
            tags,
            False,
            sig,
            {"a": True},
        )
        if pos != 8 or count != 3 or tags != ["r"]:
            status = f"self-test failed: live pass -> {pos}, {count}, {sink}"
            return False
        tags = ["r"]
        pos, count = mod.skip(
            b'<a id="1">x</a><b/></r>',
            0,
            names,
            name_bytes,
            tags,
            0,
            False,
            sig,
        )
        if pos != 23 or count != 6 or tags != []:
            status = f"self-test failed: skip -> {pos}, {count}, {tags}"
            return False
        return True
    except Exception as exc:  # pragma: no cover - defensive
        status = f"self-test failed: {exc!r}"
        return False


def _bootstrap() -> ModuleType | None:
    global status
    if os.environ.get("GCX_NO_CSCAN"):
        status = "disabled (GCX_NO_CSCAN)"
        return None
    try:
        with open(_SOURCE, "rb") as handle:
            source_text = handle.read()
    except OSError:
        status = "_cscan.c not found"
        return None
    so_path = _build(source_text)
    if so_path is None:
        return None
    module = _load(so_path)
    if module is None:
        return None
    if not _self_test(module):
        return None
    status = "active"
    return module


scanner = _bootstrap()
