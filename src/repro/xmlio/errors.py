"""Error types for the XML substrate."""


class XmlSyntaxError(ValueError):
    """Raised when the input is not well-formed XML.

    Attributes:
        message: human-readable description of the problem.
        offset: character offset into the input where it was detected.
    """

    def __init__(self, message, offset=None):
        self.message = message
        self.offset = offset
        if offset is not None:
            super().__init__(f"{message} (at offset {offset})")
        else:
            super().__init__(message)


class DtdSyntaxError(ValueError):
    """Raised when a DTD fragment cannot be parsed."""


class XmlStarvedError(RuntimeError):
    """Raised when a token is pulled from an incremental lexer that has
    no complete token in its buffer and has not been closed.

    Only push-mode lexers (driven by ``feed()``/``close()`` without a
    refill source) raise this; lexers over a complete string or a chunk
    iterable acquire more input themselves.  Deliberately *not* an
    :class:`XmlSyntaxError`: the input is not malformed, merely not yet
    complete.
    """
