"""Error types for the XML substrate."""


class XmlSyntaxError(ValueError):
    """Raised when the input is not well-formed XML.

    Attributes:
        message: human-readable description of the problem.
        offset: character offset into the input where it was detected.
    """

    def __init__(self, message, offset=None):
        self.message = message
        self.offset = offset
        if offset is not None:
            super().__init__(f"{message} (at offset {offset})")
        else:
            super().__init__(message)


class DtdSyntaxError(ValueError):
    """Raised when a DTD fragment cannot be parsed."""
