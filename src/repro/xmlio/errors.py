"""Error types for the XML substrate."""


class XmlSyntaxError(ValueError):
    """Raised when the input is not well-formed XML.

    Attributes:
        message: human-readable description of the problem.
        offset: character offset into the input where it was detected.
    """

    def __init__(self, message, offset=None):
        self.message = message
        self.offset = offset
        if offset is not None:
            super().__init__(f"{message} (at offset {offset})")
        else:
            super().__init__(message)


class DtdSyntaxError(ValueError):
    """Raised when a DTD fragment cannot be parsed."""


class FreezeSignal(BaseException):
    """Control-flow signal used by session checkpointing.

    A refill callable raises this instead of returning a chunk when the
    owning session wants the pull chain to unwind so its state can be
    serialized.  Every stage between the refill call and the session's
    worker loop must either propagate it untouched or park enough local
    state (see ``ByteXmlLexer.skip_subtree``) that re-entering the stage
    later continues byte-identically.

    Derives from :class:`BaseException` so broad ``except Exception``
    recovery code cannot accidentally swallow a freeze request.
    """


class XmlStarvedError(RuntimeError):
    """Raised when a token is pulled from an incremental lexer that has
    no complete token in its buffer and has not been closed.

    Only push-mode lexers (driven by ``feed()``/``close()`` without a
    refill source) raise this; lexers over a complete string or a chunk
    iterable acquire more input themselves.  Deliberately *not* an
    :class:`XmlSyntaxError`: the input is not malformed, merely not yet
    complete.
    """
