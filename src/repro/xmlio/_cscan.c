/* _cscan.c — optional C batch scanner behind the bytes-domain lexer.
 *
 * Compiled on first use by repro.xmlio.cscan (plain `cc -O2 -shared`,
 * no build system, no new dependency); every environment without a C
 * toolchain silently keeps the pure-Python batch loops.
 *
 * Contract (DESIGN.md section 15): each function is a drop-in
 * replacement for the batch *middle loop* of ByteXmlLexer.tokens_into
 * / skip_subtree.  It consumes as many common constructs as possible —
 * start/end/self-closing tags with already-interned names, with or
 * without attributes, and classifiable text runs — and returns
 * (pos, count) the moment it meets anything rare: entity references,
 * comments / CDATA / PI / DOCTYPE, Unicode or exotic-ASCII
 * whitespace, a first-sight name, a whitespace-bearing or mismatched
 * end tag, duplicate attributes, the event limit, or a construct cut
 * off by the end of the buffer.  The Python caller then advances by
 * exactly one construct through the oracle-exact careful machinery
 * (next_event / _skip_once or the regex fast path) and re-enters.
 * The scanner therefore never commits a construct the pure-Python
 * loops would not commit, never partially commits anything (every
 * bail check runs before the first append/push), and never touches
 * the restart state — chunk-split safety and error fidelity live
 * entirely on the Python side.
 *
 * Shared state: the caller passes the lexer's own decode-once caches
 * (raw name bytes -> interned str / event tuples).  A dict miss is a
 * bail, so the Python side stays the only place names are validated,
 * decoded and interned; the C side only ever *reuses* what it was
 * handed, keeping cached event tuples identical (by identity, not
 * just equality) to what the Python loops emit.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <string.h>

/* ASCII name tables mirroring lexer.py's _NAME_RE_SRC:
 * start = [A-Za-z_:], continuation adds [0-9.-].  Anything outside
 * bails to Python, so a stricter table can only cost speed, never
 * correctness. */
static unsigned char name_start_tbl[256];
static unsigned char name_char_tbl[256];

static PyObject *start_kind; /* int 0 == EVENT_START */
static PyObject *text_kind;  /* int 2 == EVENT_TEXT  */

#define IS_XML_WS(t) ((t) == ' ' || (t) == '\t' || (t) == '\r' || (t) == '\n')

static void
init_tables(void)
{
    int i;
    memset(name_start_tbl, 0, sizeof(name_start_tbl));
    memset(name_char_tbl, 0, sizeof(name_char_tbl));
    for (i = 'A'; i <= 'Z'; i++)
        name_start_tbl[i] = name_char_tbl[i] = 1;
    for (i = 'a'; i <= 'z'; i++)
        name_start_tbl[i] = name_char_tbl[i] = 1;
    name_start_tbl['_'] = name_char_tbl['_'] = 1;
    name_start_tbl[':'] = name_char_tbl[':'] = 1;
    for (i = '0'; i <= '9'; i++)
        name_char_tbl[i] = 1;
    name_char_tbl['.'] = 1;
    name_char_tbl['-'] = 1;
}

/* ------------------------------------------------------------------ */
/* attribute-list structural parse                                     */
/* ------------------------------------------------------------------ */

#define MAX_CATTRS 8

typedef struct {
    Py_ssize_t name_off;
    Py_ssize_t name_len;
    Py_ssize_t val_off;
    Py_ssize_t val_len;
} attr_span;

/* Parse `(ws+ name ws* = ws* quoted-value)* ws* /? >` starting at *q*
 * (the first byte after the tag name) — the exact grammar of
 * START_TAG_SRC.  On success returns the position just past the
 * closing '>' and fills spans/nattrs/selfclosing; returns -1 to bail
 * (malformed, truncated, duplicate attribute names, or more than
 * MAX_CATTRS attributes), leaving classification and error reporting
 * to Python. */
static Py_ssize_t
parse_attrs(const unsigned char *b, Py_ssize_t q, Py_ssize_t size,
            attr_span *spans, int *nattrs, int *selfclosing)
{
    int n = 0;
    int i, j;
    for (;;) {
        Py_ssize_t ws = q;
        while (q < size && IS_XML_WS(b[q]))
            q++;
        if (q >= size)
            return -1; /* truncated: starve */
        if (b[q] == '>') {
            *selfclosing = 0;
            break;
        }
        if (b[q] == '/') {
            if (q + 1 >= size || b[q + 1] != '>')
                return -1;
            *selfclosing = 1;
            q++;
            break;
        }
        if (q == ws || n >= MAX_CATTRS || !name_start_tbl[b[q]])
            return -1;
        spans[n].name_off = q;
        q++;
        while (q < size && name_char_tbl[b[q]])
            q++;
        spans[n].name_len = q - spans[n].name_off;
        while (q < size && IS_XML_WS(b[q]))
            q++;
        if (q >= size || b[q] != '=')
            return -1;
        q++;
        while (q < size && IS_XML_WS(b[q]))
            q++;
        if (q >= size)
            return -1;
        {
            unsigned char quote = b[q];
            const unsigned char *close;
            if (quote != '"' && quote != '\'')
                return -1;
            q++;
            close = memchr(b + q, quote, (size_t)(size - q));
            if (close == NULL)
                return -1; /* unterminated value: starve */
            spans[n].val_off = q;
            spans[n].val_len = (close - b) - q;
            q = (close - b) + 1;
            n++;
        }
    }
    /* duplicate attribute names raise in Python with the exact
     * message — a structural byte compare is enough to detect them */
    for (i = 1; i < n; i++)
        for (j = 0; j < i; j++)
            if (spans[i].name_len == spans[j].name_len
                && memcmp(b + spans[i].name_off, b + spans[j].name_off,
                          (size_t)spans[i].name_len) == 0)
                return -1;
    *nattrs = n;
    return q + 1;
}

/* ------------------------------------------------------------------ */
/* tokens(buf, pos, sink, count, limit, names, start_events,
 *        name_bytes, end_events, tags, keep_ws, sig_table[, live])
 *     -> (pos, count)
 *
 * The batch middle loop of tokens_into.  Preconditions enforced by
 * the caller: pending_end is None, resume == 0, tags is non-empty.
 *
 * The optional 13th argument *live* (a dict or None) is the fused
 * projection alphabet (project_into): when a committed start event is
 * non-self-closing and its name is not a key of *live*, the scan
 * stops right behind that start tag so the caller can bulk-skip the
 * subtree.  The dead start IS committed first — the Python wrapper
 * detects it as the last appended event.
 */
static PyObject *
cscan_tokens(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 12 && nargs != 13) {
        PyErr_SetString(PyExc_TypeError,
                        "tokens() expects 12 or 13 arguments");
        return NULL;
    }
    PyObject *live = (nargs == 13) ? args[12] : Py_None;
    if (live != Py_None && !PyDict_Check(live)) {
        PyErr_SetString(PyExc_TypeError,
                        "tokens(): live must be a dict or None");
        return NULL;
    }
    PyObject *bufobj = args[0];
    PyObject *sink = args[2];
    PyObject *names = args[5];
    PyObject *start_events = args[6];
    PyObject *name_bytes = args[7];
    PyObject *end_events = args[8];
    PyObject *tags = args[9];
    PyObject *sigobj = args[11];
    if (!PyBytes_Check(bufobj) || !PyList_Check(sink)
        || !PyDict_Check(names) || !PyDict_Check(start_events)
        || !PyDict_Check(name_bytes) || !PyDict_Check(end_events)
        || !PyList_Check(tags) || !PyBytes_Check(sigobj)
        || PyBytes_GET_SIZE(sigobj) < 128) {
        PyErr_SetString(PyExc_TypeError, "tokens(): bad argument types");
        return NULL;
    }
    Py_ssize_t pos = PyLong_AsSsize_t(args[1]);
    Py_ssize_t count = PyLong_AsSsize_t(args[3]);
    Py_ssize_t limit = PyLong_AsSsize_t(args[4]);
    int keep_ws = PyObject_IsTrue(args[10]);
    if (keep_ws < 0 || (pos == -1 && PyErr_Occurred()))
        return NULL;

    const unsigned char *b = (const unsigned char *)PyBytes_AS_STRING(bufobj);
    Py_ssize_t size = PyBytes_GET_SIZE(bufobj);
    const unsigned char *sig = (const unsigned char *)PyBytes_AS_STRING(sigobj);

    while (count < limit && pos < size) {
        unsigned char c = b[pos];
        if (c != '<') {
            /* text run up to the next markup */
            const unsigned char *hit =
                memchr(b + pos, '<', (size_t)(size - pos));
            if (hit == NULL)
                break; /* runs to buffer end: starve/EOF bookkeeping */
            Py_ssize_t end = hit - b;
            /* first byte that is not XML whitespace */
            Py_ssize_t i = pos;
            while (i < end && IS_XML_WS(b[i]))
                i++;
            if (i == end && !keep_ws) { /* insignificant: drop */
                pos = end;
                continue;
            }
            if (i < end) {
                unsigned char fb = b[i];
                if (fb >= 0x80 || !sig[fb])
                    break; /* Unicode/exotic-ws significance: oracle */
                if (memchr(b + pos, '&', (size_t)(end - pos)) != NULL)
                    break; /* entity resolution: oracle */
            }
            {
                PyObject *txt = PyUnicode_DecodeUTF8(
                    (const char *)(b + pos), end - pos, NULL);
                if (txt == NULL) {
                    /* oracle reproduces the exact decode error */
                    PyErr_Clear();
                    break;
                }
                PyObject *ev =
                    PyTuple_Pack(4, text_kind, Py_None, Py_None, txt);
                Py_DECREF(txt);
                if (ev == NULL)
                    return NULL;
                int rc = PyList_Append(sink, ev);
                Py_DECREF(ev);
                if (rc < 0)
                    return NULL;
                count++;
            }
            pos = end;
            continue;
        }
        if (pos + 1 >= size)
            break; /* lone "<" at buffer end */
        unsigned char c1 = b[pos + 1];
        if (c1 == '/') {
            /* end tag: exactly "</" + the bytes of the tag that must
             * close + ">" — one str-keyed dict hit and a memcmp, like
             * the Python fast path; whitespace variants, mismatches
             * and raw-bytes stack entries bail */
            Py_ssize_t ntags = PyList_GET_SIZE(tags);
            PyObject *top = PyList_GET_ITEM(tags, ntags - 1);
            PyObject *eb;
            Py_ssize_t expn;
            if (!PyUnicode_Check(top))
                break;
            eb = PyDict_GetItemWithError(name_bytes, top);
            if (eb == NULL) {
                if (PyErr_Occurred())
                    return NULL;
                break;
            }
            expn = PyBytes_GET_SIZE(eb);
            if (pos + 2 + expn >= size)
                break; /* truncated: starve */
            if (memcmp(b + pos + 2, PyBytes_AS_STRING(eb), (size_t)expn)
                    != 0
                || b[pos + 2 + expn] != '>')
                break; /* ws variant or mismatch: Python decides */
            {
                PyObject *event =
                    PyDict_GetItemWithError(end_events, top);
                if (event == NULL) {
                    if (PyErr_Occurred())
                        return NULL;
                    break;
                }
                if (PyList_SetSlice(tags, ntags - 1, ntags, NULL) < 0)
                    return NULL;
                if (PyList_Append(sink, event) < 0)
                    return NULL;
            }
            count++;
            pos = pos + 3 + expn;
            if (PyList_GET_SIZE(tags) == 0)
                break; /* root closed: EOF/trailing bookkeeping */
            continue;
        }
        if (!name_start_tbl[c1])
            break; /* comment/CDATA/PI/DOCTYPE/malformed: oracle */
        {
            Py_ssize_t q = pos + 2;
            while (q < size && name_char_tbl[b[q]])
                q++;
            if (q >= size)
                break; /* truncated tag: starve */
            if (b[q] == '>') {
                /* attribute-less start tag */
                PyObject *key = PyBytes_FromStringAndSize(
                    (const char *)(b + pos + 1), q - pos - 1);
                if (key == NULL)
                    return NULL;
                PyObject *event =
                    PyDict_GetItemWithError(start_events, key);
                Py_DECREF(key);
                if (event == NULL) {
                    if (PyErr_Occurred())
                        return NULL;
                    break; /* first sight */
                }
                if (PyList_Append(sink, event) < 0)
                    return NULL;
                count++;
                if (PyList_Append(tags, PyTuple_GET_ITEM(event, 1)) < 0)
                    return NULL;
                pos = q + 1;
                if (live != Py_None) {
                    int in_live = PyDict_Contains(
                        live, PyTuple_GET_ITEM(event, 1));
                    if (in_live < 0)
                        return NULL;
                    if (!in_live)
                        break; /* dead start: caller bulk-skips */
                }
                continue;
            }
            if (b[q] == '/' && q + 1 < size && b[q + 1] == '>') {
                /* attribute-less self-closing tag: committed only when
                 * both events fit under the limit, so the pending-end
                 * split stays a Python-side concern */
                if (count + 2 > limit)
                    break;
                PyObject *key = PyBytes_FromStringAndSize(
                    (const char *)(b + pos + 1), q - pos - 1);
                if (key == NULL)
                    return NULL;
                PyObject *event =
                    PyDict_GetItemWithError(start_events, key);
                Py_DECREF(key);
                if (event == NULL) {
                    if (PyErr_Occurred())
                        return NULL;
                    break;
                }
                PyObject *eev = PyDict_GetItemWithError(
                    end_events, PyTuple_GET_ITEM(event, 1));
                if (eev == NULL) {
                    if (PyErr_Occurred())
                        return NULL;
                    break;
                }
                if (PyList_Append(sink, event) < 0)
                    return NULL;
                if (PyList_Append(sink, eev) < 0)
                    return NULL;
                count += 2;
                pos = q + 2;
                continue;
            }
            if (IS_XML_WS(b[q])) {
                /* start tag with attributes: structural parse, then
                 * every bail check (known tag and attr names, no
                 * entities, clean value decode, limit room) runs
                 * before the first append — no partial commits */
                attr_span spans[MAX_CATTRS];
                int na = 0, sc = 0, ai = 0, bail = 0, bi;
                PyObject *pairs[MAX_CATTRS];
                PyObject *sev, *name, *eev = NULL, *ev;
                Py_ssize_t tend =
                    parse_attrs(b, q, size, spans, &na, &sc);
                if (tend < 0)
                    break;
                if (sc && count + 2 > limit)
                    break;
                {
                    PyObject *key = PyBytes_FromStringAndSize(
                        (const char *)(b + pos + 1), q - pos - 1);
                    if (key == NULL)
                        return NULL;
                    sev = PyDict_GetItemWithError(start_events, key);
                    Py_DECREF(key);
                }
                if (sev == NULL) {
                    if (PyErr_Occurred())
                        return NULL;
                    break; /* first sight: Python interns */
                }
                name = PyTuple_GET_ITEM(sev, 1);
                if (sc) {
                    eev = PyDict_GetItemWithError(end_events, name);
                    if (eev == NULL) {
                        if (PyErr_Occurred())
                            return NULL;
                        break;
                    }
                }
                for (ai = 0; ai < na; ai++) {
                    PyObject *akey, *aname, *aval;
                    if (memchr(b + spans[ai].val_off, '&',
                               (size_t)spans[ai].val_len) != NULL) {
                        bail = 1; /* entity in value: oracle resolves */
                        break;
                    }
                    akey = PyBytes_FromStringAndSize(
                        (const char *)(b + spans[ai].name_off),
                        spans[ai].name_len);
                    if (akey == NULL)
                        goto attr_fail;
                    aname = PyDict_GetItemWithError(names, akey);
                    Py_DECREF(akey);
                    if (aname == NULL) {
                        if (PyErr_Occurred())
                            goto attr_fail;
                        bail = 1; /* first-sight attr name */
                        break;
                    }
                    aval = PyUnicode_DecodeUTF8(
                        (const char *)(b + spans[ai].val_off),
                        spans[ai].val_len, NULL);
                    if (aval == NULL) {
                        if (!PyErr_ExceptionMatches(
                                PyExc_UnicodeDecodeError))
                            goto attr_fail;
                        PyErr_Clear();
                        bail = 1; /* oracle reports the byte position */
                        break;
                    }
                    pairs[ai] = PyTuple_Pack(2, aname, aval);
                    Py_DECREF(aval);
                    if (pairs[ai] == NULL)
                        goto attr_fail;
                }
                if (bail) {
                    for (bi = 0; bi < ai; bi++)
                        Py_DECREF(pairs[bi]);
                    break; /* whole tag handed to Python */
                }
                if (na == 0) {
                    /* "<name >" — attrs is None; the cached per-name
                     * event tuple is exactly that event */
                    ev = sev;
                    Py_INCREF(ev);
                } else {
                    PyObject *attrs = PyTuple_New(na);
                    if (attrs == NULL)
                        goto attr_fail;
                    for (bi = 0; bi < na; bi++)
                        PyTuple_SET_ITEM(attrs, bi, pairs[bi]);
                    ev = PyTuple_Pack(4, start_kind, name, attrs,
                                      Py_None);
                    Py_DECREF(attrs);
                    if (ev == NULL)
                        return NULL;
                }
                {
                    int rc = PyList_Append(sink, ev);
                    Py_DECREF(ev);
                    if (rc < 0)
                        return NULL;
                }
                count++;
                if (sc) {
                    if (PyList_Append(sink, eev) < 0)
                        return NULL;
                    count++;
                } else {
                    if (PyList_Append(tags, name) < 0)
                        return NULL;
                }
                pos = tend;
                if (!sc && live != Py_None) {
                    int in_live = PyDict_Contains(live, name);
                    if (in_live < 0)
                        return NULL;
                    if (!in_live)
                        break; /* dead start: caller bulk-skips */
                }
                continue;
            attr_fail:
                for (bi = 0; bi < ai; bi++)
                    Py_DECREF(pairs[bi]);
                return NULL;
            }
            break; /* malformed tag tail: oracle */
        }
    }
    return Py_BuildValue("(nn)", pos, count);
}

/* ------------------------------------------------------------------ */
/* skip(buf, pos, names, name_bytes, tags, target, keep_ws, sig_table)
 *     -> (pos, count)
 *
 * The batch middle loop of skip_subtree: fast-forward through known
 * constructs, counting significant tokens, popping/pushing tags until
 * the stack is back at *target* depth.  Pushes the interned str names
 * (the dict values), so no normalization pass is needed afterwards.
 * Attribute lists are validated structurally (quoting, duplicates,
 * entity-freedom) but values are never decoded — exactly the skip
 * path's documented contract.
 */
static PyObject *
cscan_skip(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 8) {
        PyErr_SetString(PyExc_TypeError, "skip() expects 8 arguments");
        return NULL;
    }
    PyObject *bufobj = args[0];
    PyObject *names = args[2];
    PyObject *name_bytes = args[3];
    PyObject *tags = args[4];
    PyObject *sigobj = args[7];
    if (!PyBytes_Check(bufobj) || !PyDict_Check(names)
        || !PyDict_Check(name_bytes) || !PyList_Check(tags)
        || !PyBytes_Check(sigobj) || PyBytes_GET_SIZE(sigobj) < 128) {
        PyErr_SetString(PyExc_TypeError, "skip(): bad argument types");
        return NULL;
    }
    Py_ssize_t pos = PyLong_AsSsize_t(args[1]);
    Py_ssize_t target = PyLong_AsSsize_t(args[5]);
    int keep_ws = PyObject_IsTrue(args[6]);
    if (keep_ws < 0 || (pos == -1 && PyErr_Occurred()))
        return NULL;

    const unsigned char *b = (const unsigned char *)PyBytes_AS_STRING(bufobj);
    Py_ssize_t size = PyBytes_GET_SIZE(bufobj);
    const unsigned char *sig = (const unsigned char *)PyBytes_AS_STRING(sigobj);
    Py_ssize_t count = 0;

    while (PyList_GET_SIZE(tags) > target && pos < size) {
        unsigned char c = b[pos];
        if (c != '<') {
            const unsigned char *hit =
                memchr(b + pos, '<', (size_t)(size - pos));
            if (hit == NULL)
                break; /* starve/EOF: Python decides */
            Py_ssize_t end = hit - b;
            Py_ssize_t i = pos;
            while (i < end && IS_XML_WS(b[i]))
                i++;
            if (i == end) { /* pure XML whitespace */
                if (keep_ws)
                    count++;
                pos = end;
                continue;
            }
            {
                unsigned char fb = b[i];
                if (fb >= 0x80 || !sig[fb])
                    break; /* oracle classifies significance */
                if (memchr(b + pos, '&', (size_t)(end - pos)) != NULL)
                    break; /* entities validated by the oracle */
            }
            count++; /* significant without decode, like the fast path */
            pos = end;
            continue;
        }
        if (pos + 1 >= size)
            break;
        {
            unsigned char c1 = b[pos + 1];
            if (c1 == '/') {
                /* compare the span against the tag that must close;
                 * stack entries are interned str (or raw bytes pushed
                 * by the pure-Python fallback loop) */
                PyObject *expected =
                    PyList_GET_ITEM(tags, PyList_GET_SIZE(tags) - 1);
                const char *expb;
                Py_ssize_t expn;
                Py_ssize_t ntags;
                if (PyBytes_Check(expected)) {
                    expb = PyBytes_AS_STRING(expected);
                    expn = PyBytes_GET_SIZE(expected);
                } else {
                    PyObject *eb =
                        PyDict_GetItemWithError(name_bytes, expected);
                    if (eb == NULL) {
                        if (PyErr_Occurred())
                            return NULL;
                        break; /* unknown stack entry: oracle */
                    }
                    expb = PyBytes_AS_STRING(eb);
                    expn = PyBytes_GET_SIZE(eb);
                }
                if (pos + 2 + expn >= size)
                    break; /* truncated: starve */
                if (memcmp(b + pos + 2, expb, (size_t)expn) != 0
                    || b[pos + 2 + expn] != '>')
                    break; /* ws variant or mismatch: Python decides */
                ntags = PyList_GET_SIZE(tags);
                if (PyList_SetSlice(tags, ntags - 1, ntags, NULL) < 0)
                    return NULL;
                count++;
                pos = pos + 3 + expn;
                continue;
            }
            if (!name_start_tbl[c1])
                break;
        }
        {
            Py_ssize_t q = pos + 2;
            while (q < size && name_char_tbl[b[q]])
                q++;
            if (q >= size)
                break;
            if (b[q] == '>'
                || (b[q] == '/' && q + 1 < size && b[q + 1] == '>')) {
                /* attribute-less start / self-closing tag */
                int sc = (b[q] != '>');
                PyObject *key = PyBytes_FromStringAndSize(
                    (const char *)(b + pos + 1), q - pos - 1);
                if (key == NULL)
                    return NULL;
                PyObject *name = PyDict_GetItemWithError(names, key);
                Py_DECREF(key);
                if (name == NULL) {
                    if (PyErr_Occurred())
                        return NULL;
                    break; /* first sight: Python interns */
                }
                if (sc) {
                    count += 2;
                    pos = q + 2;
                } else {
                    if (PyList_Append(tags, name) < 0)
                        return NULL;
                    count++;
                    pos = q + 1;
                }
                continue;
            }
            if (IS_XML_WS(b[q])) {
                attr_span spans[MAX_CATTRS];
                int na = 0, sc = 0, ai;
                Py_ssize_t tend =
                    parse_attrs(b, q, size, spans, &na, &sc);
                if (tend < 0)
                    break;
                for (ai = 0; ai < na; ai++)
                    if (memchr(b + spans[ai].val_off, '&',
                               (size_t)spans[ai].val_len) != NULL)
                        break;
                if (ai < na)
                    break; /* entity in a value: oracle validates */
                {
                    PyObject *key = PyBytes_FromStringAndSize(
                        (const char *)(b + pos + 1), q - pos - 1);
                    if (key == NULL)
                        return NULL;
                    PyObject *name =
                        PyDict_GetItemWithError(names, key);
                    Py_DECREF(key);
                    if (name == NULL) {
                        if (PyErr_Occurred())
                            return NULL;
                        break; /* first sight: Python interns */
                    }
                    if (sc) {
                        count += 2;
                    } else {
                        if (PyList_Append(tags, name) < 0)
                            return NULL;
                        count++;
                    }
                }
                pos = tend;
                continue;
            }
            break; /* malformed tag tail: oracle */
        }
    }
    return Py_BuildValue("(nn)", pos, count);
}

static PyMethodDef cscan_methods[] = {
    {"tokens", (PyCFunction)(void (*)(void))cscan_tokens, METH_FASTCALL,
     "Batch middle loop of ByteXmlLexer.tokens_into."},
    {"skip", (PyCFunction)(void (*)(void))cscan_skip, METH_FASTCALL,
     "Batch middle loop of ByteXmlLexer.skip_subtree."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef cscan_module = {
    PyModuleDef_HEAD_INIT,
    "_gcx_cscan",
    "C batch scanner for the bytes-domain XML lexer (DESIGN.md section 15).",
    -1,
    cscan_methods,
};

PyMODINIT_FUNC
PyInit__gcx_cscan(void)
{
    init_tables();
    start_kind = PyLong_FromLong(0);
    text_kind = PyLong_FromLong(2);
    if (start_kind == NULL || text_kind == NULL)
        return NULL;
    return PyModule_Create(&cscan_module);
}
