"""XML substrate: token model, streaming lexer, DOM, serializer, DTD.

This package is self-contained (no external XML parser is used) so that
the stream pre-projector of the GCX core can operate on a well-defined,
one-token-at-a-time event stream, exactly as the paper's architecture
(Figure 2) requires.
"""

from repro.xmlio.tokens import (
    Attribute,
    EndTag,
    StartTag,
    Text,
    Token,
    TokenKind,
)
from repro.xmlio.lexer import XmlLexer, make_lexer, tokenize
from repro.xmlio.lexer_bytes import ByteXmlLexer
from repro.xmlio.dom import DomNode, parse_dom
from repro.xmlio.writer import XmlWriter, escape_attribute, escape_text
from repro.xmlio.errors import XmlStarvedError, XmlSyntaxError
from repro.xmlio.dtd import Dtd, ElementDecl, parse_dtd

__all__ = [
    "Attribute",
    "ByteXmlLexer",
    "Dtd",
    "DomNode",
    "ElementDecl",
    "EndTag",
    "StartTag",
    "Text",
    "Token",
    "TokenKind",
    "XmlLexer",
    "XmlStarvedError",
    "XmlSyntaxError",
    "XmlWriter",
    "escape_attribute",
    "escape_text",
    "make_lexer",
    "parse_dom",
    "parse_dtd",
    "tokenize",
]
