"""Blocking client for the query service.

Used by ``gcx stats``, the test suite and the
``benchmarks/bench_server.py`` load generator.  The client pipelines a
whole query — OPEN, every CHUNK, FINISH — before reading results; the
server guarantees this cannot deadlock because after an ERROR it keeps
draining (and discarding) the remainder of the query's frames instead
of closing the socket under the writer.

Granular ``open()`` / ``send_chunk()`` / ``finish()`` calls are public
so tests can hold a session open (to probe admission control) or chunk
input at chosen boundaries; :meth:`GCXClient.run_query` composes them.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass
from typing import Iterable

from repro.server.protocol import (
    DEFAULT_PORT,
    Frame,
    FrameType,
    ProtocolError,
    encode_frame,
    read_frame_blocking,
)

#: default size of the CHUNK frames ``run_query`` cuts a string into
DEFAULT_CHUNK_SIZE = 64 * 1024


class ServerError(RuntimeError):
    """The server answered with an ERROR frame (one-line message)."""


class ServerBusyError(ServerError):
    """Admission was refused (BUSY): the server is at max sessions."""


@dataclass
class QueryOutcome:
    """One completed query: the output plus the server's session summary."""

    output: str
    #: the FINISH frame's JSON payload (elapsed_s, watermark, ...)
    session: dict


class GCXClient:
    """One TCP connection to a :class:`~repro.server.service.GCXServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ):
        self.chunk_size = max(1, chunk_size)
        self._sock = socket.create_connection((host, port), timeout=timeout)

    # ------------------------------------------------------------------
    # frame plumbing
    # ------------------------------------------------------------------

    def _send(self, ftype: FrameType, payload: bytes | str = b"") -> None:
        self._sock.sendall(encode_frame(ftype, payload))

    def _recv(self) -> Frame:
        frame = read_frame_blocking(self._sock)
        if frame is None:
            raise ConnectionError("server closed the connection")
        if frame.type is FrameType.ERROR:
            raise ServerError(frame.text)
        return frame

    # ------------------------------------------------------------------
    # the query conversation
    # ------------------------------------------------------------------

    def open(self, query_text: str) -> int:
        """Start a session; returns the server-side session id.

        Raises :class:`ServerBusyError` when admission is refused and
        :class:`ServerError` when the query does not compile.
        """
        self._send(FrameType.OPEN, query_text)
        frame = self._recv()
        if frame.type is FrameType.BUSY:
            raise ServerBusyError(frame.text)
        if frame.type is not FrameType.OPENED:
            raise ProtocolError(f"expected OPENED, got {frame.type.name}")
        return int(frame.text)

    def send_chunk(self, chunk: str) -> None:
        """Push one XML input chunk (any boundary is fine)."""
        if chunk:
            self._send(FrameType.CHUNK, chunk)

    def finish(self) -> QueryOutcome:
        """End the input and collect RESULT frames until FINISH."""
        self._send(FrameType.FINISH)
        parts: list[str] = []
        while True:
            frame = self._recv()
            if frame.type is FrameType.RESULT:
                parts.append(frame.text)
            elif frame.type is FrameType.FINISH:
                summary = json.loads(frame.text) if frame.payload else {}
                return QueryOutcome("".join(parts), summary)
            else:
                raise ProtocolError(
                    f"expected RESULT or FINISH, got {frame.type.name}"
                )

    def run_query(self, query_text: str, document: str | Iterable[str]) -> QueryOutcome:
        """Evaluate *query_text* over *document* in one conversation.

        *document* may be a complete string (cut into ``chunk_size``
        CHUNK frames) or any iterable of string chunks.
        """
        self.open(query_text)
        if isinstance(document, str):
            text = document
            document = (
                text[start : start + self.chunk_size]
                for start in range(0, len(text), self.chunk_size)
            )
        for chunk in document:
            self.send_chunk(chunk)
        return self.finish()

    def stats(self) -> dict:
        """The server's metrics snapshot (the STATS frame)."""
        self._send(FrameType.STATS)
        frame = self._recv()
        if frame.type is not FrameType.STATS:
            raise ProtocolError(f"expected STATS, got {frame.type.name}")
        return json.loads(frame.text)

    # ------------------------------------------------------------------

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "GCXClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
