"""Blocking client for the query service.

Used by ``gcx stats``, the test suite and the
``benchmarks/bench_server.py`` load generator.  The client pipelines a
whole query — OPEN, every CHUNK, FINISH — before reading results.
Since the server streams RESULT frames *while input is still arriving*
(DESIGN.md §10), naive pipelining could deadlock on large early
output: the server's send buffer fills, its result pump stalls, output
backpressure pauses evaluation, input backpressure stops its reads,
and the client's blocking send never completes.  The client therefore
sends CHUNK frames through a small select loop that opportunistically
reads whatever frames have already arrived into an internal queue —
both sockets keep draining, so the conversation cannot wedge.  Frames
read early are consumed in order by the next ``recv_result()`` /
``finish()``.

Granular ``open()`` / ``send_chunk()`` / ``finish()`` calls are public
so tests can hold a session open (to probe admission control) or chunk
input at chosen boundaries; :meth:`GCXClient.run_query` composes them,
and :meth:`GCXClient.recv_result` reads streamed results before the
input is finished.
"""

from __future__ import annotations

import contextlib
import json
import random
import select
import socket
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.server.protocol import (
    DEFAULT_PORT,
    SNAPSHOT_OFFSETS,
    Frame,
    FrameDecoder,
    FrameType,
    ProtocolError,
    encode_frame,
)

#: default size of the CHUNK frames ``run_query`` cuts a string into
DEFAULT_CHUNK_SIZE = 64 * 1024

_RECV_SIZE = 64 * 1024


class ServerError(RuntimeError):
    """The server answered with an ERROR frame (one-line message)."""


class ServerBusyError(ServerError):
    """Admission was refused (BUSY): the server is at max sessions."""


@dataclass
class QueryOutcome:
    """One completed query: the output plus the server's session summary."""

    output: str
    #: the FINISH frame's JSON payload (elapsed_s, watermark, ...)
    session: dict


class GCXClient:
    """One TCP connection to a :class:`~repro.server.service.GCXServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        busy_retries: int = 0,
        busy_backoff: float = 0.05,
    ):
        """*busy_retries* > 0 turns a BUSY refusal in :meth:`open` /
        :meth:`subscribe` into up to that many bounded retries with
        exponential backoff (base *busy_backoff* seconds, jittered so a
        refused herd does not re-arrive in lockstep).  Each retry
        **reconnects**: against a worker pool (DESIGN.md §14) admission
        is per worker, so a fresh connection re-rolls which worker the
        kernel picks — the fleet may have free slots even though the
        first worker was full.  Off by default: refuse-don't-queue
        stays the server's contract, and callers that probe admission
        (tests, load generators) must see BUSY immediately.
        """
        self.chunk_size = max(1, chunk_size)
        self.busy_retries = max(0, busy_retries)
        self.busy_backoff = busy_backoff
        self._host = host
        self._port = port
        self._timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        #: frames received ahead of consumption (streamed RESULTs the
        #: send loop drained off the socket), oldest first
        self._frames: deque[Frame] = deque()
        self._decoder = FrameDecoder()
        #: the most recent checkpoint seen on this client — requested
        #: via :meth:`checkpoint` or pushed unsolicited by the server
        #: (interval cadence, drain-to-checkpoint) — as ``(input
        #: offset, output offset, blob)``; what :meth:`resume` and the
        #: resume-aware retry of :meth:`run_query_resilient` replay from
        self.last_snapshot: tuple[int, int, bytes] | None = None

    # ------------------------------------------------------------------
    # frame plumbing
    # ------------------------------------------------------------------

    def _send(self, ftype: FrameType, payload: bytes | str = b"") -> None:
        """Send one frame, draining inbound frames whenever the socket
        would otherwise block — the duplex loop that keeps pipelined
        sends deadlock-free against mid-input RESULT streaming."""
        view = memoryview(encode_frame(ftype, payload))
        while view:
            readable, writable, _ = select.select(
                [self._sock], [self._sock], [], self._sock.gettimeout()
            )
            if readable:
                self._pull_available()
            if writable:
                sent = self._sock.send(view)
                view = view[sent:]
            elif not readable:
                raise TimeoutError("server accepted no data within the timeout")

    def _pull_available(self) -> None:
        """Read whatever bytes are ready (never blocks) into the queue."""
        data = self._sock.recv(_RECV_SIZE)
        if not data:
            raise ConnectionError("server closed the connection")
        self._frames.extend(self._decoder.feed(data))

    def _read_frame(self) -> Frame:
        """Next frame, blocking (honours the socket timeout)."""
        while not self._frames:
            data = self._sock.recv(_RECV_SIZE)
            if not data:
                raise ConnectionError("server closed the connection")
            self._frames.extend(self._decoder.feed(data))
        return self._frames.popleft()

    def _recv(self) -> Frame:
        while True:
            frame = self._read_frame()
            if frame.type is FrameType.SNAPSHOT:
                # Unsolicited server-driven checkpoint: record it and
                # keep reading — callers never see SNAPSHOT frames.
                self.last_snapshot = self._parse_snapshot(frame.payload)
                continue
            if frame.type is FrameType.ERROR:
                raise ServerError(frame.text)
            return frame

    @staticmethod
    def _parse_snapshot(payload: bytes) -> tuple[int, int, bytes]:
        input_offset, output_offset = SNAPSHOT_OFFSETS.unpack_from(payload)
        return input_offset, output_offset, payload[SNAPSHOT_OFFSETS.size :]

    def _reconnect(self) -> None:
        with contextlib.suppress(OSError):
            self._sock.close()
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._frames.clear()
        self._decoder = FrameDecoder()

    def _with_busy_retry(self, attempt):
        """Run *attempt* (a session-opening call), retrying BUSY up to
        ``busy_retries`` times.  Safe to reconnect between tries: a
        BUSY reply is a refusal — no server-side state was created."""
        failures = 0
        while True:
            try:
                return attempt()
            except ServerBusyError:
                if failures >= self.busy_retries:
                    raise
                delay = self.busy_backoff * (2**failures)
                time.sleep(delay * (0.5 + random.random()))
                failures += 1
                self._reconnect()

    # ------------------------------------------------------------------
    # the query conversation
    # ------------------------------------------------------------------

    def open(self, query_text: str, checkpointable: bool = False) -> int:
        """Start a session; returns the server-side session id.

        Raises :class:`ServerBusyError` when admission is refused and
        :class:`ServerError` when the query does not compile.  With
        ``busy_retries`` set, BUSY is retried (reconnecting) before it
        is raised.  *checkpointable* sends the arming CHECKPOINT frame
        first, so the session can later be snapshotted and resumed
        (DESIGN.md §16).
        """
        return self._with_busy_retry(
            lambda: self._open_once(query_text, checkpointable)
        )

    def _open_once(self, query_text: str, checkpointable: bool = False) -> int:
        if checkpointable:
            self._send(FrameType.CHECKPOINT)
        self._send(FrameType.OPEN, query_text)
        frame = self._recv()
        if frame.type is FrameType.BUSY:
            raise ServerBusyError(frame.text)
        if frame.type is not FrameType.OPENED:
            raise ProtocolError(f"expected OPENED, got {frame.type.name}")
        return int(frame.text)

    def send_chunk(self, chunk: str | bytes) -> None:
        """Push one XML input chunk (``bytes`` go on the wire verbatim
        — any *byte* boundary is fine, even mid-character; ``str`` is
        UTF-8 encoded)."""
        if chunk:
            self._send(FrameType.CHUNK, chunk)

    def recv_result(self, timeout: float | None = None) -> str | None:
        """Block for one RESULT frame *before* finishing the input.

        The server streams output while input is still arriving, so a
        client may interleave ``send_chunk`` calls with early reads.
        Fragments read here are the caller's to keep — ``finish()``
        returns only what follows.  With *timeout* (seconds), returns
        ``None`` when no frame arrived in time — queries may produce
        their first output only at FINISH, so an unbounded wait here
        would hold the conversation up; without it, the socket's own
        timeout applies.
        """
        if self._frames:
            frame = self._recv()
        else:
            previous = self._sock.gettimeout()
            if timeout is not None:
                self._sock.settimeout(timeout)
            try:
                frame = self._recv()
            except TimeoutError:
                return None
            finally:
                if timeout is not None:
                    self._sock.settimeout(previous)
        if frame.type is not FrameType.RESULT:
            raise ProtocolError(f"expected RESULT, got {frame.type.name}")
        return frame.text

    def finish(self) -> QueryOutcome:
        """End the input and collect RESULT frames until FINISH."""
        self._send(FrameType.FINISH)
        parts: list[str] = []
        while True:
            frame = self._recv()
            if frame.type is FrameType.RESULT:
                parts.append(frame.text)
            elif frame.type is FrameType.FINISH:
                summary = json.loads(frame.text) if frame.payload else {}
                return QueryOutcome("".join(parts), summary)
            else:
                raise ProtocolError(
                    f"expected RESULT or FINISH, got {frame.type.name}"
                )

    def run_query(
        self, query_text: str, document: str | bytes | Iterable
    ) -> QueryOutcome:
        """Evaluate *query_text* over *document* in one conversation.

        *document* may be a complete ``str`` or ``bytes`` (cut into
        ``chunk_size`` CHUNK frames — bytes travel verbatim, the
        zero-copy wire path) or any iterable of chunks.  RESULT frames
        the server streams during the sends are queued client-side and
        assembled by :meth:`finish`, preserving order.
        """
        self.open(query_text)
        if isinstance(document, (str, bytes)):
            text = document
            document = (
                text[start : start + self.chunk_size]
                for start in range(0, len(text), self.chunk_size)
            )
        for chunk in document:
            self.send_chunk(chunk)
        return self.finish()

    # ------------------------------------------------------------------
    # checkpoint / resume (DESIGN.md §16)
    # ------------------------------------------------------------------

    def checkpoint(self) -> tuple[int, int, bytes]:
        """Checkpoint the open session; returns ``(input offset,
        output offset, blob)`` and records it as :attr:`last_snapshot`.

        RESULT frames read while waiting for the SNAPSHOT are queued
        back in order, so a later :meth:`recv_result` / :meth:`finish`
        sees them exactly as if no checkpoint had happened.
        """
        self._send(FrameType.CHECKPOINT)
        passed: list[Frame] = []
        try:
            while True:
                frame = self._read_frame()
                if frame.type is FrameType.SNAPSHOT:
                    self.last_snapshot = self._parse_snapshot(frame.payload)
                    return self.last_snapshot
                if frame.type is FrameType.ERROR:
                    raise ServerError(frame.text)
                passed.append(frame)
        finally:
            self._frames.extendleft(reversed(passed))

    def resume(self, blob: bytes) -> int:
        """Rebuild a checkpointed session from *blob*; returns the new
        server-side session id.

        Works against any worker — the blob carries its own plan — and
        retries BUSY like :meth:`open` when ``busy_retries`` is set.
        Raises :class:`ServerError` when the server refuses the blob
        (stale snapshot format, plan mismatch, truncation).
        """
        return self._with_busy_retry(lambda: self._resume_once(blob))

    def _resume_once(self, blob: bytes) -> int:
        self._send(FrameType.RESUME, blob)
        frame = self._recv()
        if frame.type is FrameType.BUSY:
            raise ServerBusyError(frame.text)
        if frame.type is not FrameType.OPENED:
            raise ProtocolError(f"expected OPENED, got {frame.type.name}")
        return int(frame.text)

    def run_query_resilient(
        self,
        query_text: str,
        document: str | bytes,
        checkpoint_interval: int | None = 1 << 20,
        resume_retries: int = 3,
    ) -> QueryOutcome:
        """:meth:`run_query` with resume-aware retry (DESIGN.md §16).

        The session is opened checkpointable and checkpointed every
        *checkpoint_interval* input bytes (``None`` relies on the
        server's own ``--checkpoint-interval`` cadence instead).  When
        the connection dies mid-query — a SIGKILLed worker, a severed
        socket — the client reconnects (the kernel may route it to any
        sibling worker), RESUMEs from :attr:`last_snapshot`, rolls its
        assembled output back to the snapshot's output offset, and
        replays the input from the snapshot's input offset; because
        restored sessions continue byte-identically, the stitched
        output equals the unbroken run's.  Up to *resume_retries*
        reconnects, backed off like BUSY retries; with no snapshot in
        hand (or a compile/evaluation ERROR) the failure propagates.
        """
        data = document.encode("utf-8") if isinstance(document, str) else bytes(document)
        received = bytearray()
        self.last_snapshot = None
        sent = 0
        last_checkpoint = 0
        opened = False
        failures = 0
        while True:
            try:
                if not opened:
                    if self.last_snapshot is None:
                        self.open(query_text, checkpointable=True)
                    else:
                        input_offset, output_offset, blob = self.last_snapshot
                        self.resume(blob)
                        # Roll back to the replay point: output beyond
                        # the snapshot will be re-produced byte for
                        # byte, input beyond it is re-sent below.
                        sent = input_offset
                        last_checkpoint = input_offset
                        del received[output_offset:]
                    opened = True
                while sent < len(data):
                    end = min(sent + self.chunk_size, len(data))
                    self._send(FrameType.CHUNK, data[sent:end])
                    sent = end
                    self._drain_results(received)
                    if (
                        checkpoint_interval
                        and sent - last_checkpoint >= checkpoint_interval
                        and sent < len(data)
                    ):
                        self._checkpoint_into(received)
                        last_checkpoint = sent
                summary = self._finish_into(received)
                return QueryOutcome(received.decode("utf-8"), summary)
            except (ConnectionError, TimeoutError):
                if self.last_snapshot is None or failures >= resume_retries:
                    raise
                delay = self.busy_backoff * (2**failures)
                time.sleep(delay * (0.5 + random.random()))
                failures += 1
                opened = False
                self._reconnect()

    def _absorb(self, frame: Frame, received: bytearray) -> None:
        """Fold one inbound frame into the resilient run's state."""
        if frame.type is FrameType.RESULT:
            received += frame.payload
        elif frame.type is FrameType.SNAPSHOT:
            # Requested or unsolicited alike: when this frame was cut,
            # exactly ``output offset`` result bytes preceded it on the
            # wire — and they are all in ``received`` by now, which is
            # what makes the rollback in run_query_resilient exact.
            self.last_snapshot = self._parse_snapshot(frame.payload)
        elif frame.type is FrameType.ERROR:
            raise ServerError(frame.text)
        else:
            raise ProtocolError(f"unexpected {frame.type.name} frame")

    def _drain_results(self, received: bytearray) -> None:
        """Consume every frame the duplex send loop already queued."""
        while self._frames:
            self._absorb(self._frames.popleft(), received)

    def _checkpoint_into(self, received: bytearray) -> None:
        """Request a checkpoint; block until a fresh SNAPSHOT lands.

        The previous snapshot stays in hand until the new one is
        absorbed, so a crash *during* the checkpoint still resumes —
        just from the older replay point.
        """
        previous = self.last_snapshot
        self._send(FrameType.CHECKPOINT)
        while self.last_snapshot is previous:
            self._absorb(self._read_frame(), received)

    def _finish_into(self, received: bytearray) -> dict:
        """End the input; absorb frames until the FINISH summary."""
        self._send(FrameType.FINISH)
        while True:
            frame = self._read_frame()
            if frame.type is FrameType.FINISH:
                return json.loads(frame.text) if frame.payload else {}
            self._absorb(frame, received)

    # ------------------------------------------------------------------
    # shared streams (DESIGN.md §13)
    # ------------------------------------------------------------------

    def subscribe(self, stream_name: str, query_text: str) -> int:
        """Attach *query_text* to the named shared stream; returns the
        server-side subscriber id.

        The stream's results arrive on this connection once a
        publisher feeds the stream — read them with :meth:`collect`
        (or incrementally with :meth:`recv_result`).  Raises
        :class:`ServerBusyError` when the server is at its session or
        stream limit and :class:`ServerError` when the query does not
        compile or the stream already started streaming.  With
        ``busy_retries`` set, BUSY is retried (reconnecting) before it
        is raised.
        """
        return self._with_busy_retry(
            lambda: self._subscribe_once(stream_name, query_text)
        )

    def _subscribe_once(self, stream_name: str, query_text: str) -> int:
        self._send(FrameType.SUBSCRIBE, f"{stream_name}\n{query_text}")
        frame = self._recv()
        if frame.type is FrameType.BUSY:
            raise ServerBusyError(frame.text)
        if frame.type is not FrameType.OPENED:
            raise ProtocolError(f"expected OPENED, got {frame.type.name}")
        return int(frame.text)

    def collect(self) -> QueryOutcome:
        """Read this subscription's RESULT frames until its FINISH.

        Blocks until the stream's publisher finishes the input (the
        socket timeout applies per frame).  Raises
        :class:`ServerError` when the stream or this subscriber's
        evaluation failed.
        """
        parts: list[str] = []
        while True:
            frame = self._recv()
            if frame.type is FrameType.RESULT:
                parts.append(frame.text)
            elif frame.type is FrameType.FINISH:
                summary = json.loads(frame.text) if frame.payload else {}
                return QueryOutcome("".join(parts), summary)
            else:
                raise ProtocolError(
                    f"expected RESULT or FINISH, got {frame.type.name}"
                )

    def publish(self, stream_name: str) -> str:
        """Bind this connection as the named stream's publisher.

        Raises :class:`ServerBusyError` at the stream limit and
        :class:`ServerError` when the stream already has a publisher.
        """
        self._send(FrameType.PUBLISH, stream_name)
        frame = self._recv()
        if frame.type is FrameType.BUSY:
            raise ServerBusyError(frame.text)
        if frame.type is not FrameType.OPENED:
            raise ProtocolError(f"expected OPENED, got {frame.type.name}")
        return frame.text

    def publish_document(
        self, stream_name: str, document: str | bytes | Iterable
    ) -> dict:
        """Publish *document* to the named stream in one conversation:
        PUBLISH, every CHUNK, FINISH.  Returns the server's stream
        summary (subscriber count, bytes, product-DFA occupancy);
        subscribers receive their results on their own connections.
        """
        self.publish(stream_name)
        if isinstance(document, (str, bytes)):
            text = document
            document = (
                text[start : start + self.chunk_size]
                for start in range(0, len(text), self.chunk_size)
            )
        for chunk in document:
            self.send_chunk(chunk)
        self._send(FrameType.FINISH)
        frame = self._recv()
        if frame.type is not FrameType.FINISH:
            raise ProtocolError(f"expected FINISH, got {frame.type.name}")
        return json.loads(frame.text) if frame.payload else {}

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """The server's metrics snapshot (the STATS frame)."""
        self._send(FrameType.STATS)
        frame = self._recv()
        if frame.type is not FrameType.STATS:
            raise ProtocolError(f"expected STATS, got {frame.type.name}")
        return json.loads(frame.text)

    # ------------------------------------------------------------------

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "GCXClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
