"""Multi-process sharded serving: the SO_REUSEPORT worker pool.

One asyncio process tops out well below the hardware: the engine is
pure Python, so the GIL caps a whole server at one core while
``engine_q1_*`` shows a single engine saturating that core alone.
Sessions, however, are perfectly shardable — each one is independent
per-connection state over an immutable plan — so the pool runs N
**shared-nothing** worker processes (DESIGN.md §14), each with its own
event loop, engine, PlanCache, executor and metrics registry.  Nothing
crosses the process boundary on the data path; this module therefore
never imports the multiplex or session layers — workers build their
own engine stack when they boot.

Two ways to share one listen port:

* ``reuseport`` (the default wherever ``SO_REUSEPORT`` exists): every
  worker binds its own listening socket with ``SO_REUSEPORT`` and the
  kernel load-balances incoming connections across them.  The
  supervisor holds a bound-but-never-listening placeholder socket so
  an ephemeral ``port=0`` resolves once and the number stays reserved
  across worker restarts.
* ``fdpass`` (the fallback): the supervisor owns the only listening
  socket, accepts in a small thread, and hands each accepted
  connection over the Unix-domain *fd channel* (``socket.send_fds`` /
  ``recv_fds``) of the **least-loaded** worker — the one with the
  fewest adopted connections still open, ties broken by the lowest
  worker index.  Workers report each closed adopted connection with
  one byte back on their fd channel, which the acceptor drains before
  every placement, so a worker stuck with long-running sessions stops
  attracting new ones (the ROADMAP pool-placement note).  With no
  closes in flight the order is exactly round-robin, so placement
  stays deterministic, which the crash tests exploit.

The **control channel** is one Unix socket the supervisor listens on;
line-delimited JSON messages, three conversation kinds:

* a worker's persistent *link* (``{"op": "register", ...}`` first):
  strictly supervisor-initiated request/response afterwards —
  ``{"op": "snapshot"}`` returns the worker's local metrics snapshot,
  ``{"op": "drain"}`` asks it to stop accepting, finish open
  conversations and exit;
* an ephemeral ``{"op": "fleet"}`` request (any worker, answering a
  client's STATS frame): the supervisor polls every registered link
  for a snapshot and replies with fleet-wide totals
  (:func:`~repro.server.metrics.aggregate_snapshots`) plus the
  per-worker breakdown — so a STATS query answered by *any* worker
  reports the whole fleet;
* the ``fdpass`` fd channels (``{"op": "fdchannel", ...}`` first).

Lifecycle: the supervisor spawns workers (``multiprocessing`` *spawn*
— never fork from a threaded parent), waits for them to register
(i.e. to be accepting), and a monitor thread restarts any worker that
dies unexpectedly with exponential backoff (reset once a worker
survives a few seconds).  SIGTERM/SIGINT — to the supervisor or to a
single worker — triggers graceful drain: the listener closes (under
``reuseport`` the kernel simply routes new connections to the
siblings), open sessions run to completion, then the process exits;
the supervisor restarts a drained worker unless the supervisor itself
is stopping.  Admission is split per worker
(:func:`~repro.server.scheduler.split_admission`) so the fleet
preserves the global ``max_sessions`` cap; clients that hit a
worker-local BUSY can opt into the client's bounded retry.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import random
import shutil
import socket
import tempfile
import threading
import time
from dataclasses import dataclass

from repro.server.metrics import aggregate_snapshots
from repro.server.scheduler import (
    DEFAULT_MAX_SESSIONS,
    DEFAULT_MAX_STREAMS,
    split_admission,
)

#: how a worker proves it lived long enough to reset restart backoff
_HEALTHY_SECONDS = 5.0

#: spawn, never fork: the supervisor runs threads, and forking a
#: threaded process hands the child whatever locks were held mid-fork
_MP = multiprocessing.get_context("spawn")


def reuseport_available() -> bool:
    """Whether this platform can share a listen port via SO_REUSEPORT."""
    return hasattr(socket, "SO_REUSEPORT")


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker process needs (must stay picklable)."""

    index: int
    host: str
    port: int
    mode: str  # "reuseport" | "fdpass"
    control_path: str
    max_sessions: int
    max_streams: int
    drain_timeout: float
    #: server-driven checkpoint cadence in input bytes (0 = off)
    checkpoint_interval: int = 0
    #: fault-injection spec (:meth:`repro.testing.faults.FaultPlan.parse`)
    #: carried as its string form so the config stays picklable
    fault_plan: str | None = None


# ---------------------------------------------------------------------------
# wire helpers (line-delimited JSON over Unix stream sockets)
# ---------------------------------------------------------------------------


def _encode(message: dict) -> bytes:
    return json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"


def _bind_socket(host: str, port: int, reuseport: bool):
    """A TCP socket bound to (host, port); optionally SO_REUSEPORT."""
    infos = socket.getaddrinfo(
        host, port, type=socket.SOCK_STREAM, proto=socket.IPPROTO_TCP
    )
    family, _type, proto, _canon, addr = infos[0]
    sock = socket.socket(family, socket.SOCK_STREAM, proto)
    try:
        if reuseport:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        else:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(addr[:2])
    except BaseException:
        sock.close()
        raise
    return sock


def fetch_fleet_stats(control_path: str, timeout: float = 5.0) -> dict:
    """Ask the supervisor for the aggregated fleet snapshot (blocking).

    This is the worker's ``stats_provider``: a STATS frame answered by
    any worker turns into one ephemeral control-channel round trip.
    """
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(control_path)
        sock.sendall(_encode({"op": "fleet"}))
        chunks = bytearray()
        while not chunks.endswith(b"\n"):
            piece = sock.recv(1 << 16)
            if not piece:
                raise ConnectionError("supervisor closed the control channel")
            chunks.extend(piece)
    return json.loads(chunks.decode("utf-8"))


# ---------------------------------------------------------------------------
# the worker process
# ---------------------------------------------------------------------------


def _consume_task_error(task) -> None:
    """Retrieve (and drop) a finished adoption task's exception so the
    event loop never logs 'exception was never retrieved' noise."""
    if not task.cancelled():
        task.exception()


def _receive_fds(config: WorkerConfig, server, loop, stop_serving) -> None:
    """The fd-channel thread of a ``fdpass`` worker: receive accepted
    connection fds from the supervisor's acceptor and hand each to the
    event loop.  Closing the channel (on drain) makes the acceptor
    route new connections to the sibling workers."""
    channel = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        channel.connect(config.control_path)
        channel.sendall(_encode({"op": "fdchannel", "worker": config.index}))
        # No reply handshake: inbound traffic on this socket must be
        # exclusively fd-bearing messages.  A plain recv() that strayed
        # past a message boundary would make the kernel silently close
        # the SCM_RIGHTS fds riding the bytes it consumed — the
        # connection would die without either end seeing an error.
        channel.settimeout(0.2)
        while not stop_serving.is_set():
            try:
                _data, fds, _flags, _addr = socket.recv_fds(channel, 16, 32)
            except TimeoutError:
                continue
            except OSError:
                return
            if not fds:
                return  # EOF: supervisor gone or draining
            for fd in fds:
                conn = socket.socket(fileno=fd)
                future = None
                with contextlib.suppress(RuntimeError):  # loop closing
                    future = loop.call_soon_threadsafe(
                        _adopt_in_loop, server, conn, channel
                    )
                if future is None:
                    conn.close()
    finally:
        channel.close()


def _adopt_in_loop(server, conn, channel=None) -> None:
    import asyncio

    task = asyncio.ensure_future(server.adopt_connection(conn))

    def finished(task) -> None:
        _consume_task_error(task)
        if channel is not None:
            # one byte per closed connection: the supervisor's
            # least-loaded acceptor decrements this worker's load
            # count (channel gone on drain — the pool is stopping and
            # nobody is counting anymore)
            with contextlib.suppress(OSError):
                channel.send(b"c")

    task.add_done_callback(finished)


async def _serve_control(reader, writer, server, config, request_stop) -> None:
    """Serve the supervisor's requests on the persistent link."""
    import asyncio

    loop = asyncio.get_running_loop()
    while True:
        line = await reader.readline()
        if not line:
            # Supervisor vanished: no restarts, no fleet stats, nobody
            # to drain us later — shut down gracefully now.
            request_stop()
            return
        message = json.loads(line)
        op = message.get("op")
        if op == "snapshot":
            snapshot = await loop.run_in_executor(
                None, server.scheduler.snapshot
            )
            snapshot["worker"] = {
                "index": config.index,
                "pid": os.getpid(),
                "max_sessions": server.scheduler.max_sessions,
            }
            writer.write(_encode(snapshot))
            await writer.drain()
        elif op == "drain":
            writer.write(_encode({"ok": True}))
            await writer.drain()
            request_stop()
        else:
            writer.write(_encode({"error": f"unknown op {op!r}"}))
            await writer.drain()


async def _worker_amain(config: WorkerConfig) -> None:
    import asyncio
    import signal

    # Worker-side import: the engine stack lives and dies inside this
    # process (shared-nothing — see the module docstring and the CI
    # import guard).
    from repro.server.service import GCXServer

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    stop_serving = threading.Event()  # mirrored for the fd thread

    def request_stop() -> None:
        stop_serving.set()
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, request_stop)

    listen_sock = None
    if config.mode == "reuseport":
        listen_sock = _bind_socket(config.host, config.port, reuseport=True)
    fault_plan = None
    if config.fault_plan:
        from repro.testing.faults import FaultPlan

        # The marker lives in the pool's shared control directory so a
        # kill_at fires once per *plan*, not once per restarted worker
        # (a resumed session would otherwise be killed at the same
        # offset forever).
        fault_plan = FaultPlan.parse(
            config.fault_plan,
            marker_path=os.path.join(
                os.path.dirname(config.control_path), "fault-kill.marker"
            ),
        )
    server = GCXServer(
        host=config.host,
        port=config.port,
        max_sessions=config.max_sessions,
        max_streams=config.max_streams,
        listen_sock=listen_sock,
        stats_provider=lambda: fetch_fleet_stats(config.control_path),
        checkpoint_interval=config.checkpoint_interval,
        fault_plan=fault_plan,
    )
    if config.mode == "reuseport":
        await server.start()

    reader, writer = await asyncio.open_unix_connection(config.control_path)
    writer.write(
        _encode(
            {
                "op": "register",
                "worker": config.index,
                "pid": os.getpid(),
                "port": server.port,
            }
        )
    )
    await writer.drain()
    await reader.readline()  # the supervisor's ack

    control_task = asyncio.create_task(
        _serve_control(reader, writer, server, config, request_stop)
    )
    fd_thread = None
    if config.mode == "fdpass":
        fd_thread = threading.Thread(
            target=_receive_fds,
            args=(config, server, loop, stop_serving),
            name=f"gcx-worker-{config.index}-fds",
            daemon=True,
        )
        fd_thread.start()

    try:
        await stop.wait()
        # Graceful drain: stop accepting (the fd thread sees
        # stop_serving and closes its channel; reuseport listeners
        # close in drain()), let open conversations finish.
        await server.drain(config.drain_timeout)
    finally:
        control_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await control_task
        await server.shutdown()
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


def _worker_main(config: WorkerConfig) -> None:
    """Entry point of one worker process (spawn target)."""
    import asyncio

    asyncio.run(_worker_amain(config))


# ---------------------------------------------------------------------------
# the supervisor
# ---------------------------------------------------------------------------


class _Link:
    """The supervisor's end of one worker's persistent control link.

    Strictly request/response and serialized by the lock, so a fleet
    snapshot and a drain can never interleave on the wire.
    """

    def __init__(self, index: int, pid: int, conn, rfile):
        self.index = index
        self.pid = pid
        self.conn = conn
        self.rfile = rfile
        self.lock = threading.Lock()

    def request(self, message: dict, timeout: float) -> dict | None:
        """One request/response round trip; ``None`` when the worker
        is unreachable (died, or took longer than *timeout*)."""
        with self.lock:
            try:
                self.conn.settimeout(timeout)
                self.conn.sendall(_encode(message))
                line = self.rfile.readline()
            except (OSError, ValueError):
                return None
        if not line:
            return None
        try:
            return json.loads(line)
        except ValueError:
            return None

    def close(self) -> None:
        with contextlib.suppress(OSError):
            self.conn.close()


class WorkerSupervisor:
    """Own a worker fleet: spawn, watch, restart, drain, aggregate.

    The blocking counterpart of :class:`~repro.server.service.ServerThread`
    for pool mode — ``gcx serve --workers N``, the worker benchmarks
    and the crash tests all drive this class::

        with WorkerSupervisor(workers=4, max_sessions=64) as pool:
            client = GCXClient(pool.host, pool.port)
            ...
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        max_streams: int = DEFAULT_MAX_STREAMS,
        mode: str = "auto",
        restart: bool = True,
        backoff_initial: float = 0.1,
        backoff_max: float = 2.0,
        backoff_seed: int | None = None,
        drain_timeout: float = 30.0,
        startup_timeout: float = 60.0,
        checkpoint_interval: int = 0,
        fault_plan: str | None = None,
    ):
        if mode not in ("auto", "reuseport", "fdpass"):
            raise ValueError(f"unknown worker-pool mode {mode!r}")
        if mode == "reuseport" and not reuseport_available():
            raise ValueError("SO_REUSEPORT is not available on this platform")
        if mode == "auto":
            mode = "reuseport" if reuseport_available() else "fdpass"
        self.mode = mode
        self.host = host
        self.port = port  # 0 = ephemeral; resolved on start()
        self.workers = max(1, workers)
        self.max_sessions = max(1, max_sessions)
        self.max_streams = max_streams
        self.restart = restart
        self.drain_timeout = drain_timeout
        self.checkpoint_interval = max(0, checkpoint_interval)
        self.fault_plan = fault_plan
        self._backoff_initial = backoff_initial
        self._backoff_max = backoff_max
        #: restart-delay jitter (±25%), seeded so a failing pool run
        #: replays with the same restart schedule; unseeded in
        #: production, where the jitter's job is to keep a fleet of
        #: simultaneously-crashed workers from restarting in lockstep
        self._backoff_rng = random.Random(backoff_seed)
        self._startup_timeout = startup_timeout
        self._per_worker_sessions = split_admission(self.max_sessions, self.workers)

        self._lock = threading.Lock()
        self._registered = threading.Condition(self._lock)
        self._links: dict[int, _Link] = {}
        self._fd_channels: dict[int, socket.socket] = {}
        #: fdpass mode: adopted connections still open per worker
        #: index — incremented on every fd handed off, decremented by
        #: the close notes the worker sends back on its fd channel
        self._adopted: dict[int, int] = {}
        self._procs: list = [None] * self.workers
        self._spawn_times = [0.0] * self.workers
        self._fail_counts = [0] * self.workers
        self._restarts = 0
        self._stopping = False
        self._started = False
        self._control_dir: str | None = None
        self.control_path: str | None = None
        self._control_listener: socket.socket | None = None
        self._placeholder: socket.socket | None = None
        self._fd_listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "WorkerSupervisor":
        self._control_dir = tempfile.mkdtemp(prefix="gcx-pool-")
        self.control_path = os.path.join(self._control_dir, "control.sock")
        self._control_listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._control_listener.bind(self.control_path)
        self._control_listener.listen(64)
        self._control_listener.settimeout(0.2)

        if self.mode == "reuseport":
            # Bound but never listening: resolves port=0 once and keeps
            # the number reserved while workers come and go.
            self._placeholder = _bind_socket(self.host, self.port, reuseport=True)
            self.port = self._placeholder.getsockname()[1]
        else:
            self._fd_listener = _bind_socket(self.host, self.port, reuseport=False)
            self._fd_listener.listen(128)
            self._fd_listener.settimeout(0.2)
            self.port = self._fd_listener.getsockname()[1]

        self._start_thread(self._control_accept_loop, "gcx-pool-control")
        if self.mode == "fdpass":
            self._start_thread(self._acceptor_loop, "gcx-pool-accept")

        for index in range(self.workers):
            self._spawn(index)
        # Wait for every worker to be *reachable*: registered, and in
        # fdpass mode with its fd channel up — otherwise the first
        # connections would all round-robin over a partial fleet.
        deadline = time.monotonic() + self._startup_timeout
        with self._registered:
            while not self._fleet_ready():
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._registered.wait(remaining):
                    self.stop(graceful=False)
                    raise RuntimeError(
                        f"only {len(self._links)}/{self.workers} workers "
                        f"registered within {self._startup_timeout}s"
                    )
        self._start_thread(self._monitor_loop, "gcx-pool-monitor")
        self._started = True
        return self

    def _fleet_ready(self) -> bool:
        """Caller holds the lock."""
        if len(self._links) < self.workers:
            return False
        return self.mode != "fdpass" or len(self._fd_channels) >= self.workers

    def _start_thread(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def _spawn(self, index: int) -> None:
        config = WorkerConfig(
            index=index,
            host=self.host,
            port=self.port,
            mode=self.mode,
            control_path=self.control_path,
            max_sessions=self._per_worker_sessions[index],
            max_streams=self.max_streams,
            drain_timeout=self.drain_timeout,
            checkpoint_interval=self.checkpoint_interval,
            fault_plan=self.fault_plan,
        )
        proc = _MP.Process(
            target=_worker_main,
            args=(config,),
            name=f"gcx-worker-{index}",
            daemon=True,
        )
        proc.start()
        with self._lock:
            self._procs[index] = proc
            self._spawn_times[index] = time.monotonic()

    def begin_drain(self) -> None:
        """Graceful fleet drain: stop restarts and new connections,
        ask every worker to finish its open conversations and exit."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            links = list(self._links.values())
        if self._fd_listener is not None:
            with contextlib.suppress(OSError):
                self._fd_listener.close()
        for link in links:
            link.request({"op": "drain"}, timeout=5.0)

    def stop(self, graceful: bool = True) -> None:
        """Stop the fleet; *graceful* drains, otherwise workers are
        killed outright."""
        if graceful:
            self.begin_drain()
        else:
            with self._lock:
                self._stopping = True
        with self._lock:
            procs = [proc for proc in self._procs if proc is not None]
        join_timeout = self.drain_timeout + 5.0 if graceful else 5.0
        deadline = time.monotonic() + join_timeout
        for proc in procs:
            if graceful:
                proc.join(max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(5.0)
        with self._lock:
            links = list(self._links.values())
            channels = list(self._fd_channels.values())
            self._links.clear()
            self._fd_channels.clear()
        for link in links:
            link.close()
        for channel in channels:
            with contextlib.suppress(OSError):
                channel.close()
        for sock in (self._control_listener, self._placeholder, self._fd_listener):
            if sock is not None:
                with contextlib.suppress(OSError):
                    sock.close()
        if self._control_dir is not None:
            shutil.rmtree(self._control_dir, ignore_errors=True)
            self._control_dir = None

    def __enter__(self) -> "WorkerSupervisor":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- introspection -------------------------------------------------

    @property
    def restarts(self) -> int:
        with self._lock:
            return self._restarts

    def worker_pids(self) -> list[int]:
        """PIDs of the currently registered workers, by worker index."""
        with self._lock:
            return [
                self._links[index].pid for index in sorted(self._links)
            ]

    def fleet_snapshot(self) -> dict:
        """Fleet-wide totals + per-worker breakdown (the STATS shape).

        Polls every registered worker's persistent link for its local
        snapshot; unreachable workers appear in ``per_worker`` with an
        ``error`` marker and are left out of the totals.
        """
        with self._lock:
            links = sorted(self._links.items())
        per_worker: list[dict] = []
        for index, link in links:
            snapshot = link.request({"op": "snapshot"}, timeout=5.0)
            if snapshot is None:
                per_worker.append(
                    {
                        "worker": {"index": index, "pid": link.pid},
                        "error": "unreachable",
                    }
                )
                continue
            per_worker.append(snapshot)
        totals = aggregate_snapshots(
            [
                {key: value for key, value in snap.items() if key != "worker"}
                for snap in per_worker
                if "error" not in snap
            ]
        )
        with self._lock:
            fleet = {
                "workers": self.workers,
                "registered": len(self._links),
                "mode": self.mode,
                "restarts": self._restarts,
                "supervisor_pid": os.getpid(),
                "max_sessions": self.max_sessions,
                "per_worker_max_sessions": list(self._per_worker_sessions),
            }
        return {"fleet": fleet, "totals": totals, "per_worker": per_worker}

    # -- threads -------------------------------------------------------

    def _control_accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._control_listener.accept()
            except TimeoutError:
                if self._stopping:
                    return
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_control_conn,
                args=(conn,),
                name="gcx-pool-control-conn",
                daemon=True,
            ).start()

    def _serve_control_conn(self, conn) -> None:
        rfile = conn.makefile("rb")
        try:
            conn.settimeout(10.0)
            line = rfile.readline()
            if not line:
                conn.close()
                return
            message = json.loads(line)
            op = message.get("op")
            if op == "register":
                conn.settimeout(None)
                conn.sendall(_encode({"ok": True}))
                link = _Link(message["worker"], message["pid"], conn, rfile)
                with self._registered:
                    old = self._links.get(link.index)
                    self._links[link.index] = link
                    self._registered.notify_all()
                if old is not None:
                    old.close()
                return  # the link stays open; requests go through _Link
            if op == "fleet":
                conn.sendall(_encode(self.fleet_snapshot()))
                conn.close()
                return
            if op == "fdchannel":
                # Deliberately no reply: see _receive_fds — anything
                # other than fd-bearing messages on this socket risks
                # the kernel discarding in-flight SCM_RIGHTS fds.
                conn.settimeout(None)
                with self._registered:
                    old_chan = self._fd_channels.get(message["worker"])
                    self._fd_channels[message["worker"]] = conn
                    # a fresh channel means a fresh worker process:
                    # whatever it had adopted died with its predecessor
                    self._adopted[message["worker"]] = 0
                    self._registered.notify_all()
                if old_chan is not None:
                    with contextlib.suppress(OSError):
                        old_chan.close()
                return
            conn.close()
        except (OSError, ValueError, KeyError):
            with contextlib.suppress(OSError):
                conn.close()

    def _drain_close_notes(self) -> None:
        """Caller holds the lock.  Consume the workers' one-byte
        connection-closed notes so the load counts reflect connections
        still *open*, not connections ever assigned."""
        for index, channel in list(self._fd_channels.items()):
            while True:
                try:
                    notes = channel.recv(4096, socket.MSG_DONTWAIT)
                except (BlockingIOError, InterruptedError):
                    break
                except OSError:
                    break  # dying channel; the send path reaps it
                if not notes:
                    break  # EOF: likewise the send path's problem
                self._adopted[index] = max(
                    0, self._adopted.get(index, 0) - len(notes)
                )

    def adopted_counts(self) -> dict[int, int]:
        """fdpass mode: open adopted connections per worker index, as
        the least-loaded acceptor sees them (close notes drained)."""
        with self._lock:
            self._drain_close_notes()
            return {
                index: self._adopted.get(index, 0)
                for index in self._fd_channels
            }

    def _acceptor_loop(self) -> None:
        """The ``fdpass`` acceptor: accept and hand off to the live fd
        channel with the fewest adopted connections still open (ties
        broken by lowest worker index, so placement is deterministic);
        a dead channel is dropped and the connection retried on the
        next least-loaded sibling."""
        while True:
            try:
                conn, _addr = self._fd_listener.accept()
            except TimeoutError:
                if self._stopping:
                    return
                continue
            except OSError:
                return
            with conn:
                with self._lock:
                    self._drain_close_notes()
                    ordered = sorted(
                        self._fd_channels.items(),
                        key=lambda item: (
                            self._adopted.get(item[0], 0),
                            item[0],
                        ),
                    )
                for index, channel in ordered:
                    try:
                        socket.send_fds(channel, [b"f"], [conn.fileno()])
                    except OSError:
                        with self._lock:
                            if self._fd_channels.get(index) is channel:
                                del self._fd_channels[index]
                        with contextlib.suppress(OSError):
                            channel.close()
                        continue
                    with self._lock:
                        self._adopted[index] = self._adopted.get(index, 0) + 1
                    break
                # No live channel: the with-block closes the socket —
                # the client sees a reset, exactly like total overload.

    def _restart_delay(self, failures: int) -> float:
        """The restart backoff for a worker's *failures*-th consecutive
        death: exponential from ``backoff_initial``, capped at
        ``backoff_max``, jittered ±25% so simultaneously-crashed
        workers do not restart (and re-crash) in lockstep."""
        base = min(
            self._backoff_initial * (2 ** (max(1, failures) - 1)),
            self._backoff_max,
        )
        return base * (0.75 + 0.5 * self._backoff_rng.random())

    def _monitor_loop(self) -> None:
        """Watch worker processes; restart the unexpectedly dead."""
        while True:
            if self._stopping:
                return
            time.sleep(0.1)
            for index in range(self.workers):
                with self._lock:
                    proc = self._procs[index]
                    stopping = self._stopping
                if stopping:
                    return
                if proc is None or proc.is_alive():
                    continue
                proc.join()
                with self._lock:
                    self._procs[index] = None
                    link = self._links.pop(index, None)
                    channel = self._fd_channels.pop(index, None)
                    self._adopted.pop(index, None)
                    lived = time.monotonic() - self._spawn_times[index]
                if link is not None:
                    link.close()
                if channel is not None:
                    with contextlib.suppress(OSError):
                        channel.close()
                if not self.restart:
                    continue
                if lived > _HEALTHY_SECONDS:
                    self._fail_counts[index] = 0
                self._fail_counts[index] += 1
                delay = self._restart_delay(self._fail_counts[index])
                with self._lock:
                    self._restarts += 1
                time.sleep(delay)
                if self._stopping:
                    return
                self._spawn(index)
