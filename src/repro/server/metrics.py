"""Lock-safe service metrics: what the STATS frame and ``gcx stats`` report.

The registry is written from three kinds of threads at once — the
asyncio event loop (admission, rejection), the feed/finish executor
threads, and indirectly the per-session workers whose results are
recorded at finish — so every update takes one short lock.  Latencies
are kept in a bounded window; p50/p99 are computed on snapshot, never
on the hot path.
"""

from __future__ import annotations

import threading
import time
from collections import deque


#: snapshot keys that aggregate as a maximum across workers rather
#: than a sum: peaks are fleet-wide peaks, percentile estimates merge
#: conservatively (the fleet p99 is at most the worst worker's p99 —
#: reported as exactly that, since raw windows never cross the
#: process boundary), and uptime is the oldest worker's
_MAX_KEYS = frozenset(
    {"peak_buffer_watermark", "peak_fanout", "p50", "p99", "uptime_s"}
)


def aggregate_snapshots(snapshots: list[dict]) -> dict:
    """Merge per-worker metrics snapshots into fleet-wide totals.

    The aggregation protocol of DESIGN.md §14: numeric leaves are
    summed, except the peak/percentile/uptime keys in ``_MAX_KEYS``
    which take the maximum (a fleet peak is the worst worker's peak;
    percentiles are upper-bounded by the worst worker because the raw
    latency windows stay in their processes).  Nested dicts merge
    recursively; lists and strings keep the first worker's value
    (they are descriptive, not additive).  Derived ratios
    (``plan_cache.hit_rate``) are recomputed from the summed counters
    so the fleet rate is not a meaningless average of averages.
    """
    snapshots = [snap for snap in snapshots if isinstance(snap, dict)]
    if not snapshots:
        return {}

    def merge(values: list, key: str):
        values = [value for value in values if value is not None]
        if not values:
            return None
        first = values[0]
        if isinstance(first, dict):
            merged = {}
            for sub_key in first:
                merged[sub_key] = merge(
                    [value.get(sub_key) for value in values if isinstance(value, dict)],
                    sub_key,
                )
            return merged
        if isinstance(first, bool) or not isinstance(first, (int, float)):
            return first
        numbers = [value for value in values if isinstance(value, (int, float))]
        if key in _MAX_KEYS:
            return max(numbers)
        total = sum(numbers)
        return round(total, 6) if isinstance(total, float) else total

    totals = {
        key: merge([snap.get(key) for snap in snapshots], key)
        for key in snapshots[0]
    }
    plan_cache = totals.get("plan_cache")
    if isinstance(plan_cache, dict):
        lookups = plan_cache.get("hits", 0) + plan_cache.get("misses", 0)
        plan_cache["hit_rate"] = (
            round(plan_cache.get("hits", 0) / lookups, 4) if lookups else 0.0
        )
    return totals


def _percentile(sorted_values: list[float], quantile: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(quantile * (len(sorted_values) - 1)))
    return sorted_values[index]


class ServerMetrics:
    """Counters and latency window of one running service."""

    def __init__(self, latency_window: int = 2048):
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._sessions_opened = 0
        self._sessions_active = 0
        self._sessions_completed = 0
        self._sessions_failed = 0
        self._sessions_rejected = 0
        self._bytes_in = 0
        self._bytes_out = 0
        self._peak_watermark = 0
        #: most recent session latencies, seconds (bounded window so a
        #: long-lived server cannot grow without bound)
        self._latencies: deque[float] = deque(maxlen=latency_window)
        #: most recent times-to-first-result, seconds — how long after
        #: OPEN the first serialized output fragment existed.  Sessions
        #: with empty results record nothing here.
        self._ttfrs: deque[float] = deque(maxlen=latency_window)
        # shared-stream (multiplex) accounting: streams are the
        # published documents, subscribers the queries riding them
        # (each subscriber also holds a session slot and is therefore
        # counted in the session counters above).
        self._streams_opened = 0
        self._streams_active = 0
        self._streams_completed = 0
        self._streams_failed = 0
        self._subscribers_opened = 0
        self._subscribers_active = 0
        self._subscribers_completed = 0
        self._subscribers_failed = 0
        self._peak_fanout = 0
        # checkpoint/resume accounting (DESIGN.md §16): snapshot sizes
        # share the bounded-window discipline of the latency deques
        self._checkpoints_taken = 0
        self._sessions_resumed = 0
        self._snapshot_bytes: deque[int] = deque(maxlen=latency_window)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def session_opened(self) -> None:
        with self._lock:
            self._sessions_opened += 1
            self._sessions_active += 1

    def session_finished(
        self,
        latency_seconds: float,
        watermark: int,
        time_to_first_result: float | None = None,
    ) -> None:
        with self._lock:
            self._sessions_active -= 1
            self._sessions_completed += 1
            self._latencies.append(latency_seconds)
            if time_to_first_result is not None:
                self._ttfrs.append(time_to_first_result)
            if watermark > self._peak_watermark:
                self._peak_watermark = watermark

    def session_failed(self) -> None:
        with self._lock:
            self._sessions_active -= 1
            self._sessions_failed += 1

    def session_rejected(self) -> None:
        with self._lock:
            self._sessions_rejected += 1

    def stream_opened(self) -> None:
        with self._lock:
            self._streams_opened += 1
            self._streams_active += 1

    def stream_finished(self, fanout: int) -> None:
        with self._lock:
            self._streams_active -= 1
            self._streams_completed += 1
            if fanout > self._peak_fanout:
                self._peak_fanout = fanout

    def stream_failed(self) -> None:
        with self._lock:
            self._streams_active -= 1
            self._streams_failed += 1

    def subscriber_opened(self, fanout: int) -> None:
        """*fanout* is the stream's subscriber count including this one."""
        with self._lock:
            self._subscribers_opened += 1
            self._subscribers_active += 1
            if fanout > self._peak_fanout:
                self._peak_fanout = fanout

    def subscriber_finished(self) -> None:
        with self._lock:
            self._subscribers_active -= 1
            self._subscribers_completed += 1

    def subscriber_failed(self) -> None:
        with self._lock:
            self._subscribers_active -= 1
            self._subscribers_failed += 1

    def checkpoint_taken(self, snapshot_bytes: int) -> None:
        with self._lock:
            self._checkpoints_taken += 1
            self._snapshot_bytes.append(snapshot_bytes)

    def session_resumed(self) -> None:
        """A RESUME rebuilt a session here (also counted as opened)."""
        with self._lock:
            self._sessions_resumed += 1

    def add_bytes_in(self, count: int) -> None:
        with self._lock:
            self._bytes_in += count

    def add_bytes_out(self, count: int) -> None:
        with self._lock:
            self._bytes_out += count

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def snapshot(self, plan_cache=None, dfa=None, programs=None,
                 codegen=None, multiplex=None) -> dict:
        """A JSON-ready view of the registry.

        *plan_cache* takes a :class:`~repro.core.plan.PlanCacheStats`;
        when given, the snapshot includes the compile-once counters and
        the hit rate the service's shared cache achieves.  *dfa* takes
        the aggregate returned by
        :meth:`~repro.core.plan.PlanCache.dfa_stats` — the occupancy of
        the compiled kernels' shared transition memos (how much of the
        per-token work the connections have amortized away).
        *programs* takes
        :meth:`~repro.core.plan.PlanCache.program_stats` — the compiled
        operator programs backing the evaluation side.  *codegen* takes
        :meth:`~repro.core.plan.PlanCache.codegen_stats` — how many
        plans carry generated-code kernels and the generated-source
        footprint they hold (DESIGN.md §12).  *multiplex* takes the
        scheduler's live shared-stream occupancy (DESIGN.md §13); the
        stream/subscriber counters recorded here are merged into it.
        """
        with self._lock:
            latencies = sorted(self._latencies)
            ttfrs = sorted(self._ttfrs)
            snapshot_sizes = sorted(self._snapshot_bytes)
            snap = {
                "uptime_s": round(time.monotonic() - self._started, 3),
                "sessions": {
                    "opened": self._sessions_opened,
                    "active": self._sessions_active,
                    "completed": self._sessions_completed,
                    "failed": self._sessions_failed,
                    "rejected": self._sessions_rejected,
                },
                "bytes": {"in": self._bytes_in, "out": self._bytes_out},
                "peak_buffer_watermark": self._peak_watermark,
                "latency_ms": {
                    "count": len(latencies),
                    "p50": round(_percentile(latencies, 0.50) * 1000, 3),
                    "p99": round(_percentile(latencies, 0.99) * 1000, 3),
                },
                "ttfr_ms": {
                    "count": len(ttfrs),
                    "p50": round(_percentile(ttfrs, 0.50) * 1000, 3),
                    "p99": round(_percentile(ttfrs, 0.99) * 1000, 3),
                },
                "checkpoints": {
                    "taken": self._checkpoints_taken,
                    "sessions_resumed": self._sessions_resumed,
                    "snapshot_bytes": {
                        "count": len(snapshot_sizes),
                        "p50": _percentile(snapshot_sizes, 0.50),
                        "p99": _percentile(snapshot_sizes, 0.99),
                    },
                },
            }
        if plan_cache is not None:
            lookups = plan_cache.hits + plan_cache.misses
            snap["plan_cache"] = {
                "hits": plan_cache.hits,
                "misses": plan_cache.misses,
                "canonical_reuses": plan_cache.canonical_reuses,
                "size": plan_cache.size,
                "capacity": plan_cache.capacity,
                "hit_rate": round(plan_cache.hits / lookups, 4) if lookups else 0.0,
            }
        if dfa is not None:
            snap["dfa"] = dict(dfa)
        if programs is not None:
            snap["programs"] = dict(programs)
        if codegen is not None:
            snap["codegen"] = dict(codegen)
        if multiplex is not None:
            with self._lock:
                snap["multiplex"] = {
                    "streams": {
                        "opened": self._streams_opened,
                        "active": self._streams_active,
                        "completed": self._streams_completed,
                        "failed": self._streams_failed,
                    },
                    "subscribers": {
                        "opened": self._subscribers_opened,
                        "active": self._subscribers_active,
                        "completed": self._subscribers_completed,
                        "failed": self._subscribers_failed,
                    },
                    "peak_fanout": self._peak_fanout,
                    **dict(multiplex),
                }
        return snap
