"""Session multiplexing: admission control over a shared plan cache.

The scheduler is the server's policy layer.  It owns one
:class:`~repro.core.engine.GCXEngine` (and therefore one shared
:class:`~repro.core.plan.PlanCache`: every connection compiling the
same query gets the same immutable plan, analysis running once), and
it enforces the only queueing discipline the service has: at most
``max_sessions`` concurrent :class:`~repro.core.session.StreamSession`
instances; everything beyond that is *refused* (the caller sends BUSY),
never queued, so overload degrades into fast rejections instead of
unbounded memory growth.

Per-session flow control is not here — it falls out of the session's
own bounded chunk channel: ``ManagedSession.feed`` blocks while the
channel is full, and the connection handler awaits that call before
reading the next frame, so a fast producer is paused at the socket.
"""

from __future__ import annotations

import itertools
import threading
import time

from repro.core.engine import GCXEngine, RunResult
from repro.core.session import SessionStateError
from repro.server.metrics import ServerMetrics

#: default admission bound of a service
DEFAULT_MAX_SESSIONS = 64

#: default bound on concurrently live shared streams (DESIGN.md §13);
#: subscribers are bounded separately — each holds a session slot
DEFAULT_MAX_STREAMS = 16


def split_admission(max_sessions: int, workers: int) -> list[int]:
    """Split a global admission cap across a worker pool.

    Every worker gets ``max_sessions // workers`` slots and the
    remainder is spread over the first ``max_sessions % workers``
    workers, so the per-worker caps always sum to the global cap
    (DESIGN.md §14) — the fleet as a whole admits exactly as many
    sessions as one process with the same ``--max-sessions`` would.
    Every worker keeps at least one slot, so oversized pools degrade
    into extra capacity rather than dead workers.
    """
    workers = max(1, workers)
    base, remainder = divmod(max(1, max_sessions), workers)
    return [max(1, base + (1 if index < remainder else 0)) for index in range(workers)]


class ManagedSession:
    """One admitted session plus its accounting.

    Wraps a :class:`~repro.core.session.StreamSession` so that exactly
    one release — on :meth:`finish` or :meth:`abort`, whichever comes
    first — returns the admission slot and records the outcome.
    """

    def __init__(self, scheduler: "SessionScheduler", session, session_id: int):
        self._scheduler = scheduler
        self._session = session
        self.id = session_id
        self._opened = time.perf_counter()
        self._released = False
        #: result bytes delivered to the client so far, cumulative
        #: across resumes (:meth:`SessionScheduler.try_resume` seeds it
        #: from the snapshot) — the session-absolute output offset a
        #: SNAPSHOT frame reports (DESIGN.md §16)
        self.delivered_bytes = 0
        #: input offset of the last checkpoint, for the server-driven
        #: ``--checkpoint-interval`` cadence
        self.last_checkpoint_bytes = 0

    def feed(self, chunk: bytes) -> None:
        """Forward one raw input chunk (blocks under backpressure).

        The service hands the CHUNK frame payload over verbatim —
        sessions are bytes-native, so the wire bytes reach the lexer
        without a decode pass.  Byte accounting is the caller's job
        (the service counts the frame payload length).
        """
        self._session.feed(chunk)

    def next_output(
        self, max_bytes: int | None = None, timeout: float | None = None
    ) -> bytes | None:
        """Block for the next serialized output fragment (the RESULT
        pump's feed) — UTF-8 ``bytes``, cut at character boundaries,
        ready to be a RESULT frame payload; ``None`` once evaluation
        ended and all output was taken (see
        :meth:`StreamSession.next_output`)."""
        return self._session.next_output(max_bytes, timeout)

    def finish(self) -> RunResult:
        """Close the input side and collect the result.

        ``result.output`` holds only what no concurrent consumer
        already drained — for the service that is whatever the RESULT
        pump had not yet picked up.
        """
        result = self._session.finish()
        self._scheduler._release(
            self, result, self._session.time_to_first_output
        )
        return result

    def abort(self) -> None:
        """Tear the session down (errors, client gone, shutdown)."""
        self._session.abort()
        self._scheduler._release(self, None)

    # -- checkpointing (DESIGN.md §16) ---------------------------------

    @property
    def checkpointable(self) -> bool:
        return self._session.checkpointable

    @property
    def bytes_fed(self) -> int:
        """Document bytes consumed — the SNAPSHOT input offset."""
        return self._session.bytes_fed

    def freeze(self) -> None:
        self._session.freeze()

    def thaw(self) -> None:
        self._session.thaw()

    def snapshot(self) -> bytes:
        """Encode the frozen session (see
        :meth:`StreamSession.snapshot`)."""
        return self._session.snapshot()


class ManagedSubscriber:
    """One admitted shared-stream subscriber plus its accounting.

    A subscriber holds a regular admission slot — N queries riding one
    stream cost the same admission as N independent sessions; what
    they share is the lex+project work, not the cap — and is released
    exactly once, on :meth:`finish` or :meth:`abort`.
    """

    def __init__(
        self,
        scheduler: "SessionScheduler",
        stream: "ManagedStream",
        subscriber,
        subscriber_id: int,
    ):
        self._scheduler = scheduler
        self.stream = stream
        self._subscriber = subscriber
        self.id = subscriber_id
        self._opened = time.perf_counter()
        self._released = False

    def next_output(
        self, max_bytes: int | None = None, timeout: float | None = None
    ) -> bytes | None:
        """The subscriber's RESULT-pump feed (see
        :meth:`ManagedSession.next_output`)."""
        return self._subscriber.next_output(max_bytes, timeout)

    def finish(self) -> RunResult:
        """Collect this subscriber's result once the stream ended."""
        result = self._subscriber.finish()
        self._scheduler._release_subscriber(
            self, result, self._subscriber.time_to_first_output
        )
        return result

    def abort(self) -> None:
        """Drop the subscription (errors, client gone, shutdown)."""
        self._subscriber.abort()
        self._scheduler._release_subscriber(self, None)


class ManagedStream:
    """One named shared stream plus its accounting.

    Created on first SUBSCRIBE (or PUBLISH) of a name; removed from
    the registry when the publisher finishes or the stream is aborted.
    Wraps a :class:`~repro.multiplex.session.SharedStreamSession`; the
    subscriber set grows through :meth:`SessionScheduler.try_subscribe`
    and freezes at the publisher's first chunk.
    """

    def __init__(self, scheduler: "SessionScheduler", name: str, shared):
        self._scheduler = scheduler
        self.name = name
        self._shared = shared
        self._publisher_bound = False
        self._released = False

    @property
    def fanout(self) -> int:
        return len(self._shared.subscribers)

    @property
    def sealed(self) -> bool:
        return self._shared.sealed

    @property
    def bytes_in(self) -> int:
        return self._shared.bytes_fed

    def feed(self, chunk: bytes) -> None:
        """Forward one raw publisher chunk (blocks under backpressure
        from the slowest subscriber; the first chunk seals the
        subscriber set)."""
        self._shared.feed(chunk)

    def finish(self) -> dict:
        """End of the published input; returns the stream summary."""
        summary = self._shared.finish()
        self._scheduler._release_stream(self, failed=False)
        return summary

    def abort(self) -> None:
        """Tear the stream down, subscribers included."""
        self._shared.abort()
        self._scheduler._release_stream(self, failed=True)

    def occupancy(self) -> dict:
        """One live stream's line in the STATS multiplex section."""
        return {
            "name": self.name,
            "subscribers": self.fanout,
            "sealed": self.sealed,
            "bytes_in": self.bytes_in,
        }


class SessionScheduler:
    """Admit sessions while capacity lasts; refuse cleanly beyond it."""

    def __init__(
        self,
        engine: GCXEngine | None = None,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        metrics: ServerMetrics | None = None,
        max_pending_output: int | None = None,
        max_streams: int = DEFAULT_MAX_STREAMS,
    ):
        #: all sessions share this engine's plan cache; record_series is
        #: off because a server never plots per-token series and the
        #: series would grow with the document
        self.engine = engine if engine is not None else GCXEngine(record_series=False)
        self.max_sessions = max(1, max_sessions)
        self.metrics = metrics if metrics is not None else ServerMetrics()
        #: output-side backpressure bound handed to every admitted
        #: session: beyond this many undrained serialized characters the
        #: evaluator pauses until the consumer (the service's RESULT
        #: pump) catches up.  ``None`` = unbounded — the right default
        #: for direct callers that only read output at ``finish()``.
        self.max_pending_output = max_pending_output
        self.max_streams = max(1, max_streams)
        self._lock = threading.Lock()
        self._active = 0
        self._ids = itertools.count(1)
        #: live shared streams by name (DESIGN.md §13)
        self._streams: dict[str, ManagedStream] = {}

    @property
    def active(self) -> int:
        """Sessions currently holding an admission slot."""
        with self._lock:
            return self._active

    def try_admit(
        self, query_text: str, checkpointable: bool = False
    ) -> ManagedSession | None:
        """Admit a session for *query_text*, or ``None`` when full.

        Compilation goes through the shared plan cache; compile errors
        (unparsable query, unsupported fragment) propagate to the
        caller after the provisional slot is returned.  *checkpointable*
        pins the session to the snapshot-safe table kernels so a later
        CHECKPOINT can freeze and encode it (DESIGN.md §16).
        """
        with self._lock:
            if self._active >= self.max_sessions:
                self.metrics.session_rejected()
                return None
            self._active += 1
        try:
            plan = self.engine.compile(query_text)
            session = self.engine.session(
                plan,
                max_pending_output=self.max_pending_output,
                # bytes in (raw CHUNK payloads), bytes out (RESULT
                # payloads): no decode/encode pass on the wire path.
                binary_output=True,
                checkpointable=checkpointable,
            )
        except BaseException:
            with self._lock:
                self._active -= 1
            raise
        self.metrics.session_opened()
        return ManagedSession(self, session, next(self._ids))

    def try_resume(self, blob: bytes) -> ManagedSession | None:
        """Rebuild a checkpointed session from *blob*, or ``None`` when
        full.

        The blob carries its own plan text, so resumption works on any
        worker — including one that never saw the original OPEN; the
        plan compiles through this scheduler's shared cache.  Snapshot
        errors (stale format version, plan mismatch, truncation)
        propagate after the provisional slot is returned, exactly like
        compile errors in :meth:`try_admit`.
        """
        with self._lock:
            if self._active >= self.max_sessions:
                self.metrics.session_rejected()
                return None
            self._active += 1
        try:
            session = self.engine.restore_session(
                blob, max_pending_output=self.max_pending_output
            )
        except BaseException:
            with self._lock:
                self._active -= 1
            raise
        self.metrics.session_opened()
        self.metrics.session_resumed()
        managed = ManagedSession(self, session, next(self._ids))
        managed.last_checkpoint_bytes = session.bytes_fed
        # Output offsets are session-absolute across resumes: a later
        # SNAPSHOT must report the cumulative delivered position, not
        # bytes sent over this connection, because the client rolls its
        # assembled output back to exactly that offset.
        managed.delivered_bytes = session.delivered_output
        return managed

    def _release(
        self,
        managed: ManagedSession,
        result: RunResult | None,
        time_to_first_output: float | None = None,
    ) -> None:
        with self._lock:
            if managed._released:
                return
            managed._released = True
            self._active -= 1
        if result is not None:
            self.metrics.session_finished(
                time.perf_counter() - managed._opened,
                result.stats.watermark,
                time_to_first_result=time_to_first_output,
            )
        else:
            self.metrics.session_failed()

    # ------------------------------------------------------------------
    # shared streams (DESIGN.md §13)
    # ------------------------------------------------------------------

    def _stream_for(self, name: str) -> ManagedStream | None:
        """Get or create the live stream *name* (``None`` when the
        registry is at ``max_streams``).  Caller holds ``_lock``."""
        stream = self._streams.get(name)
        if stream is None:
            if len(self._streams) >= self.max_streams:
                return None
            stream = ManagedStream(self, name, self.engine.shared_session())
            self._streams[name] = stream
            self.metrics.stream_opened()
        return stream

    def try_subscribe(
        self, stream_name: str, query_text: str
    ) -> ManagedSubscriber | None:
        """Attach a query to the named shared stream, or ``None`` when
        full (session cap — every subscriber holds a session slot — or
        stream cap for a first subscriber).

        Compile errors propagate after the provisional slot is
        returned; subscribing to a stream that already started
        streaming raises ``SessionStateError`` (the caller answers
        ERROR, exactly like a failed OPEN).
        """
        with self._lock:
            if self._active >= self.max_sessions:
                self.metrics.session_rejected()
                return None
            stream = self._stream_for(stream_name)
            if stream is None:
                self.metrics.session_rejected()
                return None
            self._active += 1
        try:
            plan = self.engine.compile(query_text)
            subscriber = stream._shared.subscribe(
                plan,
                max_pending_output=self.max_pending_output,
                binary_output=True,
            )
        except BaseException:
            with self._lock:
                self._active -= 1
            raise
        self.metrics.session_opened()
        self.metrics.subscriber_opened(stream.fanout)
        return ManagedSubscriber(self, stream, subscriber, next(self._ids))

    def try_publish(self, stream_name: str) -> ManagedStream | None:
        """Bind a publisher to the named shared stream, or ``None``
        when the registry is at ``max_streams``.

        Publishing an (as yet) subscriber-less name is allowed — the
        stream then projects everything away in one skip.  A second
        publisher for a live name raises ``SessionStateError``.
        """
        with self._lock:
            stream = self._stream_for(stream_name)
            if stream is None:
                return None
            if stream._publisher_bound:
                raise SessionStateError(
                    f"stream {stream_name!r} already has a publisher"
                )
            stream._publisher_bound = True
        return stream

    def _release_subscriber(
        self,
        managed: ManagedSubscriber,
        result: RunResult | None,
        time_to_first_output: float | None = None,
    ) -> None:
        with self._lock:
            if managed._released:
                return
            managed._released = True
            self._active -= 1
        if result is not None:
            self.metrics.session_finished(
                time.perf_counter() - managed._opened,
                result.stats.watermark,
                time_to_first_result=time_to_first_output,
            )
            self.metrics.subscriber_finished()
        else:
            self.metrics.session_failed()
            self.metrics.subscriber_failed()

    def _release_stream(self, managed: ManagedStream, failed: bool) -> None:
        with self._lock:
            if managed._released:
                return
            managed._released = True
            if self._streams.get(managed.name) is managed:
                del self._streams[managed.name]
        if failed:
            self.metrics.stream_failed()
        else:
            self.metrics.stream_finished(managed.fanout)

    def _multiplex_snapshot(self) -> dict:
        """Live shared-stream occupancy for the STATS frame."""
        with self._lock:
            streams = list(self._streams.values())
        live = [stream.occupancy() for stream in streams]
        product = {"states": 0, "element_transitions": 0, "text_transitions": 0}
        for stream in streams:
            plan = stream._shared.multiplex_plan
            if plan is not None:
                stats = plan.stats()
                for key in product:
                    product[key] += stats[key]
        return {"live": live, "product_dfa": product}

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Service metrics plus the shared plan cache's counters, the
        compiled kernels' transition-memo occupancy, the operator
        programs' footprint, the generated-code kernels' count and
        source footprint, and the shared-stream occupancy."""
        return self.metrics.snapshot(
            plan_cache=self.engine.plan_cache.stats,
            dfa=self.engine.plan_cache.dfa_stats(),
            programs=self.engine.plan_cache.program_stats(),
            codegen=self.engine.plan_cache.codegen_stats(),
            multiplex=self._multiplex_snapshot(),
        )
