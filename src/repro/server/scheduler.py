"""Session multiplexing: admission control over a shared plan cache.

The scheduler is the server's policy layer.  It owns one
:class:`~repro.core.engine.GCXEngine` (and therefore one shared
:class:`~repro.core.plan.PlanCache`: every connection compiling the
same query gets the same immutable plan, analysis running once), and
it enforces the only queueing discipline the service has: at most
``max_sessions`` concurrent :class:`~repro.core.session.StreamSession`
instances; everything beyond that is *refused* (the caller sends BUSY),
never queued, so overload degrades into fast rejections instead of
unbounded memory growth.

Per-session flow control is not here — it falls out of the session's
own bounded chunk channel: ``ManagedSession.feed`` blocks while the
channel is full, and the connection handler awaits that call before
reading the next frame, so a fast producer is paused at the socket.
"""

from __future__ import annotations

import itertools
import threading
import time

from repro.core.engine import GCXEngine, RunResult
from repro.server.metrics import ServerMetrics

#: default admission bound of a service
DEFAULT_MAX_SESSIONS = 64


class ManagedSession:
    """One admitted session plus its accounting.

    Wraps a :class:`~repro.core.session.StreamSession` so that exactly
    one release — on :meth:`finish` or :meth:`abort`, whichever comes
    first — returns the admission slot and records the outcome.
    """

    def __init__(self, scheduler: "SessionScheduler", session, session_id: int):
        self._scheduler = scheduler
        self._session = session
        self.id = session_id
        self._opened = time.perf_counter()
        self._released = False

    def feed(self, chunk: bytes) -> None:
        """Forward one raw input chunk (blocks under backpressure).

        The service hands the CHUNK frame payload over verbatim —
        sessions are bytes-native, so the wire bytes reach the lexer
        without a decode pass.  Byte accounting is the caller's job
        (the service counts the frame payload length).
        """
        self._session.feed(chunk)

    def next_output(
        self, max_bytes: int | None = None, timeout: float | None = None
    ) -> bytes | None:
        """Block for the next serialized output fragment (the RESULT
        pump's feed) — UTF-8 ``bytes``, cut at character boundaries,
        ready to be a RESULT frame payload; ``None`` once evaluation
        ended and all output was taken (see
        :meth:`StreamSession.next_output`)."""
        return self._session.next_output(max_bytes, timeout)

    def finish(self) -> RunResult:
        """Close the input side and collect the result.

        ``result.output`` holds only what no concurrent consumer
        already drained — for the service that is whatever the RESULT
        pump had not yet picked up.
        """
        result = self._session.finish()
        self._scheduler._release(
            self, result, self._session.time_to_first_output
        )
        return result

    def abort(self) -> None:
        """Tear the session down (errors, client gone, shutdown)."""
        self._session.abort()
        self._scheduler._release(self, None)


class SessionScheduler:
    """Admit sessions while capacity lasts; refuse cleanly beyond it."""

    def __init__(
        self,
        engine: GCXEngine | None = None,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        metrics: ServerMetrics | None = None,
        max_pending_output: int | None = None,
    ):
        #: all sessions share this engine's plan cache; record_series is
        #: off because a server never plots per-token series and the
        #: series would grow with the document
        self.engine = engine if engine is not None else GCXEngine(record_series=False)
        self.max_sessions = max(1, max_sessions)
        self.metrics = metrics if metrics is not None else ServerMetrics()
        #: output-side backpressure bound handed to every admitted
        #: session: beyond this many undrained serialized characters the
        #: evaluator pauses until the consumer (the service's RESULT
        #: pump) catches up.  ``None`` = unbounded — the right default
        #: for direct callers that only read output at ``finish()``.
        self.max_pending_output = max_pending_output
        self._lock = threading.Lock()
        self._active = 0
        self._ids = itertools.count(1)

    @property
    def active(self) -> int:
        """Sessions currently holding an admission slot."""
        with self._lock:
            return self._active

    def try_admit(self, query_text: str) -> ManagedSession | None:
        """Admit a session for *query_text*, or ``None`` when full.

        Compilation goes through the shared plan cache; compile errors
        (unparsable query, unsupported fragment) propagate to the
        caller after the provisional slot is returned.
        """
        with self._lock:
            if self._active >= self.max_sessions:
                self.metrics.session_rejected()
                return None
            self._active += 1
        try:
            plan = self.engine.compile(query_text)
            session = self.engine.session(
                plan,
                max_pending_output=self.max_pending_output,
                # bytes in (raw CHUNK payloads), bytes out (RESULT
                # payloads): no decode/encode pass on the wire path.
                binary_output=True,
            )
        except BaseException:
            with self._lock:
                self._active -= 1
            raise
        self.metrics.session_opened()
        return ManagedSession(self, session, next(self._ids))

    def _release(
        self,
        managed: ManagedSession,
        result: RunResult | None,
        time_to_first_output: float | None = None,
    ) -> None:
        with self._lock:
            if managed._released:
                return
            managed._released = True
            self._active -= 1
        if result is not None:
            self.metrics.session_finished(
                time.perf_counter() - managed._opened,
                result.stats.watermark,
                time_to_first_result=time_to_first_output,
            )
        else:
            self.metrics.session_failed()

    def snapshot(self) -> dict:
        """Service metrics plus the shared plan cache's counters, the
        compiled kernels' transition-memo occupancy, the operator
        programs' footprint and the generated-code kernels' count and
        source footprint."""
        return self.metrics.snapshot(
            plan_cache=self.engine.plan_cache.stats,
            dfa=self.engine.plan_cache.dfa_stats(),
            programs=self.engine.plan_cache.program_stats(),
            codegen=self.engine.plan_cache.codegen_stats(),
        )
