"""Concurrent query service: serve many streaming sessions per process.

The paper's point — active buffer garbage collection keeps per-stream
memory tiny — only pays off when many streams share one process.  This
package turns the compile-once / stream-many core into a measurable
multi-client service (DESIGN.md §8):

* :mod:`repro.server.protocol` — length-prefixed frames (OPEN / CHUNK /
  FINISH / RESULT / ERROR / BUSY / STATS) usable over asyncio or
  blocking sockets;
* :mod:`repro.server.scheduler` — admission control: at most
  ``max_sessions`` concurrent :class:`~repro.core.session.StreamSession`
  instances over one shared :class:`~repro.core.plan.PlanCache`;
* :mod:`repro.server.service` — the asyncio TCP server with
  per-connection backpressure and graceful shutdown;
* :mod:`repro.server.metrics` — a lock-safe registry behind the STATS
  frame and ``gcx stats``;
* :mod:`repro.server.client` — the blocking client the CLI, tests and
  ``benchmarks/bench_server.py`` drive the server with;
* :mod:`repro.server.workers` — the multi-process worker pool
  (``gcx serve --workers N``): N shared-nothing server processes on
  one SO_REUSEPORT listen port (fd-passing fallback), scaling the
  service past the GIL (DESIGN.md §14).
"""

import importlib

#: public name -> home module; resolved lazily (PEP 562) so that
#: importing one light module (e.g. ``repro.server.protocol`` for
#: DEFAULT_PORT in the CLI) does not drag in asyncio, sockets and the
#: executor machinery of the whole service stack
_EXPORTS = {
    "DEFAULT_PORT": "repro.server.protocol",
    "Frame": "repro.server.protocol",
    "FrameType": "repro.server.protocol",
    "ProtocolError": "repro.server.protocol",
    "GCXClient": "repro.server.client",
    "QueryOutcome": "repro.server.client",
    "ServerBusyError": "repro.server.client",
    "ServerError": "repro.server.client",
    "ServerMetrics": "repro.server.metrics",
    "ManagedSession": "repro.server.scheduler",
    "ManagedStream": "repro.server.scheduler",
    "ManagedSubscriber": "repro.server.scheduler",
    "SessionScheduler": "repro.server.scheduler",
    "GCXServer": "repro.server.service",
    "ServerThread": "repro.server.service",
    "WorkerConfig": "repro.server.workers",
    "WorkerSupervisor": "repro.server.workers",
    "aggregate_snapshots": "repro.server.metrics",
    "fetch_fleet_stats": "repro.server.workers",
    "reuseport_available": "repro.server.workers",
    "split_admission": "repro.server.scheduler",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    home = _EXPORTS.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(home), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
