"""The asyncio TCP service: many concurrent streaming sessions, one process.

Each connection is one handler task reading frames in order.  The
pull-chain work — ``feed()`` under backpressure, ``finish()`` — runs in
a bounded thread pool via ``run_in_executor`` so the event loop never
blocks; because the handler *awaits* each feed before reading the next
frame, a session whose chunk channel is full transparently pauses that
connection's reads (per-connection backpressure) while every other
connection keeps streaming.

Failure semantics (DESIGN.md §8):

* admission refused → BUSY; the connection stays usable and may retry;
* query compile error / malformed XML / evaluation error → one ERROR
  frame with a one-line message; the remainder of that query's frames
  is drained and discarded so a pipelining client never deadlocks, and
  the connection stays usable for the next OPEN;
* framing error or protocol-state violation (OPEN mid-session, CHUNK
  before any OPEN) → ERROR, then the connection closes: the byte
  stream (or the client's view of the conversation) can no longer be
  trusted.

Shutdown closes the listener, cancels the connection tasks and aborts
their sessions; :class:`ServerThread` packages start/stop on a daemon
thread for blocking callers (tests, benchmarks, the CI smoke job).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.evaluator import EvaluationError
from repro.core.session import SessionStateError
from repro.server.protocol import (
    FrameType,
    ProtocolError,
    encode_frame,
    read_frame,
)
from repro.server.scheduler import DEFAULT_MAX_SESSIONS, SessionScheduler
from repro.xmlio.errors import XmlStarvedError

#: everything a query can fail with that deserves an ERROR frame (the
#: ValueError family covers XmlSyntaxError, XQueryParseError,
#: NormalizationError, AnalysisError, MatcherError, ...)
QUERY_ERRORS = (ValueError, XmlStarvedError, EvaluationError, SessionStateError)

#: serialized output is returned in RESULT frames of at most this size,
#: so one huge result never occupies a single giant frame
DEFAULT_RESULT_FRAME_SIZE = 64 * 1024


def _one_line(exc: BaseException) -> str:
    """A single-line ``Type: message`` rendering of an exception."""
    text = f"{type(exc).__name__}: {exc}"
    return text.splitlines()[0] if text else type(exc).__name__


def _abort_orphaned_admission(future) -> None:
    """Release a session admitted after its handler was cancelled.

    ``abort()`` joins the session's worker thread, so it runs on a
    throwaway thread rather than the event loop (the server's executor
    may already be shutting down when this fires).
    """
    try:
        managed = future.result()
    except BaseException:  # noqa: BLE001 - admission failed: nothing to release
        return
    if managed is not None:
        threading.Thread(
            target=managed.abort, name="gcx-abort-orphan", daemon=True
        ).start()


class GCXServer:
    """Asyncio TCP front end over a :class:`SessionScheduler`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        scheduler: SessionScheduler | None = None,
        result_frame_size: int = DEFAULT_RESULT_FRAME_SIZE,
    ):
        self.host = host
        self.port = port  # 0 = ephemeral; replaced by the bound port on start()
        self.scheduler = (
            scheduler
            if scheduler is not None
            else SessionScheduler(max_sessions=max_sessions)
        )
        self.result_frame_size = max(1, result_frame_size)
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        # feed()/finish() block (backpressure, drain); give every
        # admissible session its own executor slot so one stalled
        # producer cannot starve the others.
        self._executor = ThreadPoolExecutor(
            max_workers=self.scheduler.max_sessions + 4,
            thread_name_prefix="gcx-serve",
        )

    @property
    def metrics(self):
        return self.scheduler.metrics

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "GCXServer":
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(self._on_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Stop accepting, cancel live connections, abort their sessions.

        Handlers are cancelled *before* ``wait_closed()`` is awaited:
        from Python 3.12.1 on, ``wait_closed`` blocks until every
        connection handler returns, so the old order would deadlock on
        a client parked in ``read_frame``.
        """
        if self._server is not None:
            self._server.close()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # per-connection protocol
    # ------------------------------------------------------------------

    async def _on_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._handle_connection(reader, writer)
        except asyncio.CancelledError:
            # Shutdown cancelled this connection: end the task cleanly
            # (start_server's done-callback re-raises a cancelled state
            # as event-loop noise otherwise).
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _send(self, writer, ftype: FrameType, payload: bytes | str = b"") -> None:
        writer.write(encode_frame(ftype, payload))
        await writer.drain()

    async def _handle_connection(self, reader, writer) -> None:
        loop = asyncio.get_running_loop()
        session = None  # the ManagedSession of the query in flight
        discarding = False  # drain this query's frames after an ERROR
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError as exc:
                    with contextlib.suppress(ConnectionError):
                        await self._send(writer, FrameType.ERROR, _one_line(exc))
                    return
                if frame is None:
                    return

                if frame.type is FrameType.STATS:
                    payload = json.dumps(self.scheduler.snapshot(), sort_keys=True)
                    await self._send(writer, FrameType.STATS, payload)

                elif frame.type is FrameType.OPEN:
                    if session is not None:
                        await self._send(
                            writer, FrameType.ERROR, "OPEN while a session is active"
                        )
                        return
                    # An OPEN always starts a fresh query — it ends any
                    # drain from a previous refusal, so a client that got
                    # ERROR/BUSY can retry on the same connection.
                    discarding = False
                    try:
                        query_text = frame.text
                    except UnicodeDecodeError as exc:
                        await self._send(writer, FrameType.ERROR, _one_line(exc))
                        discarding = True
                        continue
                    # Compilation (parse + static analysis on a cache
                    # miss) is CPU work: keep it off the event loop.
                    admit = loop.run_in_executor(
                        self._executor, self.scheduler.try_admit, query_text
                    )
                    try:
                        session = await asyncio.shield(admit)
                    except asyncio.CancelledError:
                        # Shutdown cancelled this handler while admission
                        # was still running on its executor thread; the
                        # slot it may yet win must not leak.
                        admit.add_done_callback(_abort_orphaned_admission)
                        raise
                    except QUERY_ERRORS as exc:
                        await self._send(writer, FrameType.ERROR, _one_line(exc))
                        discarding = True  # drop this query's pipelined frames
                        continue
                    if session is None:
                        await self._send(
                            writer,
                            FrameType.BUSY,
                            f"server is at its {self.scheduler.max_sessions}-session limit",
                        )
                        discarding = True  # drop this query's pipelined frames
                        continue
                    await self._send(writer, FrameType.OPENED, str(session.id))

                elif frame.type is FrameType.CHUNK:
                    if discarding:
                        continue
                    if session is None:
                        await self._send(writer, FrameType.ERROR, "CHUNK before OPEN")
                        return
                    self.metrics.add_bytes_in(len(frame.payload))
                    try:
                        await loop.run_in_executor(
                            self._executor, session.feed, frame.text
                        )
                    except QUERY_ERRORS as exc:
                        session, discarding = await self._fail_query(
                            writer, session, exc
                        )

                elif frame.type is FrameType.FINISH:
                    if discarding:
                        # End of the query whose ERROR was already sent.
                        discarding = False
                        continue
                    if session is None:
                        await self._send(writer, FrameType.ERROR, "FINISH before OPEN")
                        return
                    try:
                        result = await loop.run_in_executor(
                            self._executor, session.finish
                        )
                    except QUERY_ERRORS as exc:
                        # Nothing of this query follows FINISH: no drain.
                        session, _ = await self._fail_query(writer, session, exc)
                        discarding = False
                        continue
                    session = None
                    await self._send_result(writer, result)

                else:
                    await self._send(
                        writer, FrameType.ERROR, f"unexpected {frame.type.name} frame"
                    )
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; the finally block reclaims the slot
        finally:
            if session is not None:
                # Never block the event loop on the worker join.
                self._executor.submit(session.abort)

    async def _fail_query(self, writer, session, exc) -> tuple[None, bool]:
        """Send ERROR, reclaim the slot, and switch to draining mode."""
        self._executor.submit(session.abort)
        await self._send(writer, FrameType.ERROR, _one_line(exc))
        return None, True

    async def _send_result(self, writer, result) -> None:
        output = result.output
        # Slice by characters so every RESULT frame stays valid UTF-8 on
        # its own (the byte size is bounded by 4x the character count);
        # the bytes_out metric counts actual wire bytes.
        step = self.result_frame_size
        for start in range(0, len(output), step):
            part = output[start : start + step].encode("utf-8")
            self.metrics.add_bytes_out(len(part))
            await self._send(writer, FrameType.RESULT, part)
        summary = json.dumps(
            {
                "elapsed_s": round(result.stats.elapsed, 6),
                "watermark": result.stats.watermark,
                "tokens": result.stats.tokens,
                "output_chars": result.stats.output_chars,
            },
            sort_keys=True,
        )
        await self._send(writer, FrameType.FINISH, summary)


class ServerThread:
    """A :class:`GCXServer` running on a background daemon thread.

    Blocking code — tests, ``benchmarks/bench_server.py``, the CI smoke
    job — uses this as a context manager::

        with ServerThread(max_sessions=8) as handle:
            client = GCXClient(handle.host, handle.port)
            ...
    """

    def __init__(self, **server_kwargs):
        self._server_kwargs = server_kwargs
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self.server: GCXServer | None = None
        self.host: str | None = None
        self.port: int | None = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="gcx-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread did not start within 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):  # loop already closed
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._startup_error = exc
        finally:
            self._ready.set()

    async def _amain(self) -> None:
        server = GCXServer(**self._server_kwargs)
        await server.start()
        self.server = server
        self.host = server.host
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.shutdown()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
