"""The asyncio TCP service: many concurrent streaming sessions, one process.

One process is also the unit of sharding: ``gcx serve --workers N``
(:mod:`repro.server.workers`, DESIGN.md §14) runs N of these servers
in separate processes over one listen port — each constructed with a
pre-bound ``listen_sock`` (SO_REUSEPORT) or fed accepted sockets via
:meth:`GCXServer.adopt_connection` (fd passing), and a
``stats_provider`` that swaps the local STATS payload for the
supervisor's fleet aggregate.

Each connection is one handler task reading frames in order.  The
pull-chain work — ``feed()`` under backpressure, ``finish()`` — runs in
a bounded thread pool via ``run_in_executor`` so the event loop never
blocks; because the handler *awaits* each feed before reading the next
frame, a session whose chunk channel is full transparently pauses that
connection's reads (per-connection backpressure) while every other
connection keeps streaming.

The data path is bytes end to end (DESIGN.md §11): CHUNK frame
payloads are fed to the session verbatim — no decode pass; the
bytes-domain lexer scans the wire bytes directly — and the session's
bytes-native output channel hands the RESULT pump UTF-8 fragments that
go on the wire verbatim — no re-encode pass.  ``bytes_in`` /
``bytes_out`` therefore count raw frame payload lengths on both sides.

Results stream (DESIGN.md §10): alongside each admitted session runs a
RESULT *pump* task that blocks on the session's output channel and
forwards every produced fragment as a bounded RESULT frame — a client
receives its first results while it is still sending CHUNK frames.
The output channel itself is bounded (``max_pending_output``), so a
slow reader pauses evaluation instead of accumulating the serialized
result in memory; whatever the pump has not picked up when ``finish``
completes is flushed after the pump ends, before the FINISH summary.

Checkpoint/resume (DESIGN.md §16): a CHECKPOINT frame (or the
server-driven ``checkpoint_interval`` cadence, or a draining worker's
shutdown path) freezes the session, lets the pump drain the produced
output, and answers one SNAPSHOT frame carrying the input/output
offsets plus the versioned snapshot blob before thawing; RESUME
rebuilds a session from such a blob — on any worker, in any process —
and the conversation continues exactly like after OPEN.  The optional
``fault_plan`` (:mod:`repro.testing.faults`) deterministically injects
worker crashes, feed failures and frame delays/duplicates/truncations
to prove those paths.

Failure semantics (DESIGN.md §8):

* admission refused → BUSY; the connection stays usable and may retry;
* query compile error / malformed XML / evaluation error → one ERROR
  frame with a one-line message; the remainder of that query's frames
  is drained and discarded so a pipelining client never deadlocks, and
  the connection stays usable for the next OPEN;
* framing error or protocol-state violation (OPEN mid-session, CHUNK
  before any OPEN) → ERROR, then the connection closes: the byte
  stream (or the client's view of the conversation) can no longer be
  trusted.

Shared streams (DESIGN.md §13): SUBSCRIBE attaches a query to a named
stream (admission counts the subscriber against the session cap) and
hands the rest of that conversation to a per-subscriber pump; PUBLISH
binds the connection as the stream's publisher, whose CHUNK frames
drive **one** lex+project pass serving every subscriber.  A failed
SUBSCRIBE or PUBLISH enters the same drain mode as a failed OPEN.

Shutdown closes the listener, cancels the connection tasks and aborts
their sessions; :class:`ServerThread` packages start/stop on a daemon
thread for blocking callers (tests, benchmarks, the CI smoke job).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.evaluator import EvaluationError
from repro.core.session import SessionStateError
from repro.server.protocol import (
    HEADER,
    SNAPSHOT_OFFSETS,
    FrameType,
    ProtocolError,
    encode_frame,
    read_frame,
)
from repro.server.scheduler import (
    DEFAULT_MAX_SESSIONS,
    DEFAULT_MAX_STREAMS,
    SessionScheduler,
)
from repro.testing.faults import InjectedFault
from repro.xmlio.errors import XmlStarvedError

#: everything a query can fail with that deserves an ERROR frame (the
#: ValueError family covers XmlSyntaxError, XQueryParseError,
#: NormalizationError, AnalysisError, MatcherError, snapshot refusals
#: — SnapshotFormatError, SnapshotPlanMismatch — and the fault
#: harness's injected feed failures)
QUERY_ERRORS = (
    ValueError,
    XmlStarvedError,
    EvaluationError,
    SessionStateError,
    InjectedFault,
)

#: serialized output is returned in RESULT frames of at most this size,
#: so one huge result never occupies a single giant frame
DEFAULT_RESULT_FRAME_SIZE = 64 * 1024


def _one_line(exc: BaseException) -> str:
    """A single-line ``Type: message`` rendering of an exception."""
    text = f"{type(exc).__name__}: {exc}"
    return text.splitlines()[0] if text else type(exc).__name__


def _abort_orphaned_admission(future) -> None:
    """Release a session admitted after its handler was cancelled.

    ``abort()`` joins the session's worker thread, so it runs on a
    throwaway thread rather than the event loop (the server's executor
    may already be shutting down when this fires).
    """
    try:
        managed = future.result()
    except BaseException:  # noqa: BLE001 - admission failed: nothing to release
        return
    if managed is not None:
        threading.Thread(
            target=managed.abort, name="gcx-abort-orphan", daemon=True
        ).start()


class GCXServer:
    """Asyncio TCP front end over a :class:`SessionScheduler`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        scheduler: SessionScheduler | None = None,
        result_frame_size: int = DEFAULT_RESULT_FRAME_SIZE,
        max_streams: int = DEFAULT_MAX_STREAMS,
        listen_sock=None,
        stats_provider=None,
        checkpoint_interval: int = 0,
        fault_plan=None,
    ):
        self.host = host
        #: server-driven checkpoint cadence in input bytes (0 = only on
        #: client CHECKPOINT frames): every time a checkpointable
        #: session's fed bytes advance this far past its last
        #: checkpoint, the server pushes an unsolicited SNAPSHOT frame
        self.checkpoint_interval = max(0, checkpoint_interval)
        #: optional :class:`repro.testing.faults.FaultPlan` — the
        #: deterministic fault-injection harness (DESIGN.md §16)
        self.fault_plan = fault_plan
        #: set while draining: handlers push a checkpoint to their
        #: client before the conversation is allowed to wind down
        self._drain_checkpoint = asyncio.Event()
        self.port = port  # 0 = ephemeral; replaced by the bound port on start()
        #: a pre-bound listening socket to serve instead of binding
        #: host/port — how a worker process shares one port with its
        #: siblings via SO_REUSEPORT (DESIGN.md §14)
        self.listen_sock = listen_sock
        #: when set, STATS frames are answered with this callable's
        #: dict instead of the local scheduler snapshot — a pool worker
        #: plugs in the supervisor's fleet aggregation here.  Called on
        #: an executor thread (it may do blocking control-channel I/O);
        #: any failure falls back to the local snapshot.
        self.stats_provider = stats_provider
        self.result_frame_size = max(1, result_frame_size)
        self.scheduler = (
            scheduler
            if scheduler is not None
            else SessionScheduler(
                max_sessions=max_sessions,
                # output-side backpressure: a session may run at most a
                # few frames ahead of its RESULT pump
                max_pending_output=4 * self.result_frame_size,
                max_streams=max_streams,
            )
        )
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        # feed()/finish() block (backpressure, drain) and every session
        # additionally parks one RESULT-pump call in next_output();
        # two slots per admissible session (subscribers hold session
        # slots, so their pumps are covered) plus one feed slot per
        # live shared stream's publisher plus slack for admissions and
        # STATS, so a stalled producer or a quiet pump can never starve
        # the others.
        self._executor = ThreadPoolExecutor(
            max_workers=2 * self.scheduler.max_sessions
            + self.scheduler.max_streams
            + 4,
            thread_name_prefix="gcx-serve",
        )

    @property
    def metrics(self):
        return self.scheduler.metrics

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "GCXServer":
        """Bind (or adopt ``listen_sock``) and start accepting."""
        if self.listen_sock is not None:
            self._server = await asyncio.start_server(
                self._on_client, sock=self.listen_sock
            )
        else:
            self._server = await asyncio.start_server(
                self._on_client, self.host, self.port
            )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def adopt_connection(self, sock) -> None:
        """Serve one already-accepted TCP connection (the fd-passing
        fallback of DESIGN.md §14: a parent acceptor hands accepted
        sockets to workers over a Unix socket).  Runs the full
        per-connection protocol; returns when the conversation ends."""
        reader, writer = await asyncio.open_connection(sock=sock)
        await self._on_client(reader, writer)

    async def drain(self, timeout: float = 30.0) -> bool:
        """Graceful drain: stop accepting, let live conversations end.

        Closes the listener (new connection attempts are refused —
        under SO_REUSEPORT the kernel routes them to sibling workers
        instead) and waits up to *timeout* seconds for every open
        connection to finish its conversation and disconnect.  Returns
        ``True`` when the server emptied out, ``False`` on timeout
        (the caller then escalates to :meth:`shutdown`, which aborts
        whatever is left).
        """
        if self._server is not None:
            self._server.close()
        # Drain-to-checkpoint (DESIGN.md §16): every connection with a
        # checkpointable session in flight pushes one SNAPSHOT to its
        # client, so a SIGTERMed worker's sessions can be resumed
        # elsewhere even when their clients never asked to checkpoint.
        self._drain_checkpoint.set()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while self._connections and loop.time() < deadline:
            await asyncio.sleep(0.05)
        return not self._connections

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Stop accepting, cancel live connections, abort their sessions.

        Handlers are cancelled *before* ``wait_closed()`` is awaited:
        from Python 3.12.1 on, ``wait_closed`` blocks until every
        connection handler returns, so the old order would deadlock on
        a client parked in ``read_frame``.
        """
        if self._server is not None:
            self._server.close()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # per-connection protocol
    # ------------------------------------------------------------------

    async def _on_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._handle_connection(reader, writer)
        except asyncio.CancelledError:
            # Shutdown cancelled this connection: end the task cleanly
            # (start_server's done-callback re-raises a cancelled state
            # as event-loop noise otherwise).
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _send(
        self, writer, ftype: FrameType, payload: bytes | str = b"", lock=None
    ) -> None:
        """Write one frame.  *lock* serializes writers that share the
        connection: the handler and the RESULT pump both send, and two
        tasks awaiting ``writer.drain()`` concurrently is unsafe (the
        transport supports a single drain waiter)."""
        if lock is None:
            writer.write(encode_frame(ftype, payload))
            await writer.drain()
        else:
            async with lock:
                writer.write(encode_frame(ftype, payload))
                await writer.drain()

    async def _handle_connection(self, reader, writer) -> None:
        loop = asyncio.get_running_loop()
        send_lock = asyncio.Lock()  # handler + pump share the writer
        session = None  # the ManagedSession of the query in flight
        pump = None  # the RESULT-pump task of that session
        publishing = None  # the ManagedStream this connection publishes
        subscription = None  # the latest ManagedSubscriber on this connection
        sub_pump = None  # that subscriber's RESULT/FINISH pump task
        discarding = False  # drain this query's frames after an ERROR
        arm_checkpoint = False  # CHECKPOINT before OPEN arms the next session
        drain_checkpointed = False  # one drain-driven SNAPSHOT per connection
        read_task = None  # outstanding read, kept across drain wake-ups
        try:
            while True:
                if read_task is None:
                    read_task = asyncio.ensure_future(read_frame(reader))
                if (
                    self._drain_checkpoint.is_set()
                    and not drain_checkpointed
                    and session is not None
                    and session.checkpointable
                ):
                    # Drain-to-checkpoint: push this session's state to
                    # the client before the worker winds down, so the
                    # client can RESUME it on a sibling (DESIGN.md §16).
                    drain_checkpointed = True
                    try:
                        pump = await self._checkpoint_session(
                            writer, session, pump, loop, send_lock
                        )
                    except QUERY_ERRORS as exc:
                        session, pump, discarding = await self._fail_query(
                            writer, session, pump, exc, send_lock
                        )
                if not self._drain_checkpoint.is_set():
                    # Race the read against the drain signal so a parked
                    # reader still checkpoints when SIGTERM arrives.
                    drain_wait = asyncio.ensure_future(
                        self._drain_checkpoint.wait()
                    )
                    await asyncio.wait(
                        {read_task, drain_wait},
                        return_when=asyncio.FIRST_COMPLETED,
                    )
                    drain_wait.cancel()
                    if not read_task.done():
                        continue  # drain fired: checkpoint at the loop top
                try:
                    frame = await read_task
                except ProtocolError as exc:
                    read_task = None
                    with contextlib.suppress(ConnectionError):
                        await self._send(
                            writer, FrameType.ERROR, _one_line(exc), lock=send_lock
                        )
                    return
                read_task = None
                if frame is None:
                    return

                if frame.type is FrameType.STATS:
                    snapshot = None
                    if self.stats_provider is not None:
                        # Fleet aggregation does blocking control-
                        # channel I/O: keep it off the event loop, and
                        # fall back to the local snapshot if the
                        # supervisor is unreachable.
                        try:
                            snapshot = await loop.run_in_executor(
                                self._executor, self.stats_provider
                            )
                        except Exception:  # noqa: BLE001 - degraded STATS
                            snapshot = None
                    if snapshot is None:
                        snapshot = self.scheduler.snapshot()
                    payload = json.dumps(snapshot, sort_keys=True)
                    await self._send(
                        writer, FrameType.STATS, payload, lock=send_lock
                    )

                elif frame.type is FrameType.OPEN:
                    if session is not None or publishing is not None:
                        await self._send(
                            writer,
                            FrameType.ERROR,
                            "OPEN while a session is active",
                            lock=send_lock,
                        )
                        return
                    # An OPEN always starts a fresh query — it ends any
                    # drain from a previous refusal, so a client that got
                    # ERROR/BUSY can retry on the same connection.
                    discarding = False
                    try:
                        query_text = frame.text
                    except UnicodeDecodeError as exc:
                        await self._send(
                            writer, FrameType.ERROR, _one_line(exc), lock=send_lock
                        )
                        discarding = True
                        continue
                    # Compilation (parse + static analysis on a cache
                    # miss) is CPU work: keep it off the event loop.
                    checkpointable = arm_checkpoint or bool(
                        self.checkpoint_interval
                    )
                    arm_checkpoint = False
                    admit = loop.run_in_executor(
                        self._executor,
                        self.scheduler.try_admit,
                        query_text,
                        checkpointable,
                    )
                    try:
                        session = await asyncio.shield(admit)
                    except asyncio.CancelledError:
                        # Shutdown cancelled this handler while admission
                        # was still running on its executor thread; the
                        # slot it may yet win must not leak.
                        admit.add_done_callback(_abort_orphaned_admission)
                        raise
                    except QUERY_ERRORS as exc:
                        await self._send(
                            writer, FrameType.ERROR, _one_line(exc), lock=send_lock
                        )
                        discarding = True  # drop this query's pipelined frames
                        continue
                    if session is None:
                        await self._send(
                            writer,
                            FrameType.BUSY,
                            f"server is at its {self.scheduler.max_sessions}-session limit",
                            lock=send_lock,
                        )
                        discarding = True  # drop this query's pipelined frames
                        continue
                    await self._send(
                        writer, FrameType.OPENED, str(session.id), lock=send_lock
                    )
                    # Stream results out while input is still arriving.
                    pump = asyncio.create_task(
                        self._pump_results(writer, session, loop, send_lock)
                    )

                elif frame.type is FrameType.CHECKPOINT:
                    if discarding:
                        continue
                    if publishing is not None or (
                        sub_pump is not None and not sub_pump.done()
                    ):
                        await self._send(
                            writer,
                            FrameType.ERROR,
                            "CHECKPOINT on a shared-stream conversation",
                            lock=send_lock,
                        )
                        return
                    if session is None:
                        # Arm: the next OPEN admits a checkpointable
                        # session (pinned to the snapshot-safe kernels).
                        arm_checkpoint = True
                        continue
                    try:
                        pump = await self._checkpoint_session(
                            writer, session, pump, loop, send_lock
                        )
                    except QUERY_ERRORS as exc:
                        # e.g. CHECKPOINT on a session that was not
                        # opened checkpointable: the session cannot be
                        # trusted to continue a conversation the client
                        # thinks is checkpointed — fail it like a query
                        # error and drain.
                        session, pump, discarding = await self._fail_query(
                            writer, session, pump, exc, send_lock
                        )

                elif frame.type is FrameType.RESUME:
                    if session is not None or publishing is not None:
                        await self._send(
                            writer,
                            FrameType.ERROR,
                            "RESUME while a session is active",
                            lock=send_lock,
                        )
                        return
                    # Like OPEN: a RESUME starts a fresh conversation
                    # and ends any drain from a previous refusal.
                    discarding = False
                    arm_checkpoint = False
                    admit = loop.run_in_executor(
                        self._executor, self.scheduler.try_resume, frame.payload
                    )
                    try:
                        session = await asyncio.shield(admit)
                    except asyncio.CancelledError:
                        admit.add_done_callback(_abort_orphaned_admission)
                        raise
                    except QUERY_ERRORS as exc:
                        # Snapshot refusals land here: a stale format
                        # version, a plan the blob was not taken
                        # against, or a truncated blob — refused, never
                        # misread (DESIGN.md §16).
                        await self._send(
                            writer, FrameType.ERROR, _one_line(exc), lock=send_lock
                        )
                        discarding = True
                        continue
                    if session is None:
                        await self._send(
                            writer,
                            FrameType.BUSY,
                            f"server is at its {self.scheduler.max_sessions}-session limit",
                            lock=send_lock,
                        )
                        discarding = True
                        continue
                    await self._send(
                        writer, FrameType.OPENED, str(session.id), lock=send_lock
                    )
                    pump = asyncio.create_task(
                        self._pump_results(writer, session, loop, send_lock)
                    )

                elif frame.type is FrameType.SUBSCRIBE:
                    if session is not None or publishing is not None:
                        await self._send(
                            writer,
                            FrameType.ERROR,
                            "SUBSCRIBE while a session is active",
                            lock=send_lock,
                        )
                        return
                    if sub_pump is not None and not sub_pump.done():
                        await self._send(
                            writer,
                            FrameType.ERROR,
                            "SUBSCRIBE while a subscription is active",
                            lock=send_lock,
                        )
                        return
                    # Like OPEN: a SUBSCRIBE starts a fresh conversation
                    # and ends any drain from a previous refusal.
                    discarding = False
                    try:
                        stream_name, sep, query_text = frame.text.partition("\n")
                    except UnicodeDecodeError as exc:
                        await self._send(
                            writer, FrameType.ERROR, _one_line(exc), lock=send_lock
                        )
                        discarding = True
                        continue
                    if not sep:
                        await self._send(
                            writer,
                            FrameType.ERROR,
                            "SUBSCRIBE payload must be 'stream\\nquery'",
                            lock=send_lock,
                        )
                        discarding = True
                        continue
                    admit = loop.run_in_executor(
                        self._executor,
                        self.scheduler.try_subscribe,
                        stream_name,
                        query_text,
                    )
                    try:
                        subscription = await asyncio.shield(admit)
                    except asyncio.CancelledError:
                        admit.add_done_callback(_abort_orphaned_admission)
                        raise
                    except QUERY_ERRORS as exc:
                        # Compile failure or a stream that already
                        # started streaming: same drain mode as a
                        # failed OPEN, so pipelined CHUNK/FINISH
                        # frames never kill the connection.
                        await self._send(
                            writer, FrameType.ERROR, _one_line(exc), lock=send_lock
                        )
                        discarding = True
                        continue
                    if subscription is None:
                        await self._send(
                            writer,
                            FrameType.BUSY,
                            "server is at its session or stream limit",
                            lock=send_lock,
                        )
                        discarding = True
                        continue
                    await self._send(
                        writer, FrameType.OPENED, str(subscription.id),
                        lock=send_lock,
                    )
                    # The rest of this subscription is server-driven:
                    # the pump streams RESULT frames while the
                    # publisher feeds, then delivers the FINISH
                    # summary (or ERROR) once the stream ends.
                    sub_pump = asyncio.create_task(
                        self._pump_subscriber(
                            writer, subscription, loop, send_lock
                        )
                    )

                elif frame.type is FrameType.PUBLISH:
                    if session is not None or publishing is not None:
                        await self._send(
                            writer,
                            FrameType.ERROR,
                            "PUBLISH while a session is active",
                            lock=send_lock,
                        )
                        return
                    discarding = False
                    try:
                        stream_name = frame.text
                    except UnicodeDecodeError as exc:
                        await self._send(
                            writer, FrameType.ERROR, _one_line(exc), lock=send_lock
                        )
                        discarding = True
                        continue
                    try:
                        # Cheap (no compile): builds at most an empty
                        # shared session; fine on the event loop.
                        publishing = self.scheduler.try_publish(stream_name)
                    except QUERY_ERRORS as exc:
                        # e.g. a second publisher for a live stream —
                        # drain mode, exactly like a failed OPEN.
                        await self._send(
                            writer, FrameType.ERROR, _one_line(exc), lock=send_lock
                        )
                        discarding = True
                        continue
                    if publishing is None:
                        await self._send(
                            writer,
                            FrameType.BUSY,
                            f"server is at its "
                            f"{self.scheduler.max_streams}-stream limit",
                            lock=send_lock,
                        )
                        discarding = True
                        continue
                    await self._send(
                        writer, FrameType.OPENED, stream_name, lock=send_lock
                    )

                elif frame.type is FrameType.CHUNK:
                    if discarding:
                        continue
                    if publishing is not None:
                        self.metrics.add_bytes_in(len(frame.payload))
                        try:
                            # The shared stream's driver backpressures
                            # through feed() just like a session: a
                            # slow subscriber pauses this read loop.
                            await loop.run_in_executor(
                                self._executor, publishing.feed, frame.payload
                            )
                        except QUERY_ERRORS as exc:
                            publishing, discarding = await self._fail_stream(
                                writer, publishing, exc, send_lock
                            )
                        continue
                    if session is None:
                        await self._send(
                            writer,
                            FrameType.ERROR,
                            "CHUNK before OPEN",
                            lock=send_lock,
                        )
                        return
                    self.metrics.add_bytes_in(len(frame.payload))
                    if self.fault_plan is not None:
                        # The harness may SIGKILL this very process
                        # (kill_at) — exactly the crash the checkpoint
                        # path exists for — or raise InjectedFault
                        # (fail_feed_at), which maps to ERROR below.
                        try:
                            self.fault_plan.on_feed(len(frame.payload))
                        except InjectedFault as exc:
                            session, pump, discarding = await self._fail_query(
                                writer, session, pump, exc, send_lock
                            )
                            continue
                    try:
                        # Raw payload bytes, no decode pass: the
                        # session's lexer scans the wire bytes
                        # directly (invalid UTF-8 surfaces as an
                        # XmlSyntaxError with a byte position, mapped
                        # to an ERROR frame like any query failure).
                        await loop.run_in_executor(
                            self._executor, session.feed, frame.payload
                        )
                    except QUERY_ERRORS as exc:
                        session, pump, discarding = await self._fail_query(
                            writer, session, pump, exc, send_lock
                        )
                        continue
                    if (
                        self.checkpoint_interval
                        and session.checkpointable
                        and session.bytes_fed - session.last_checkpoint_bytes
                        >= self.checkpoint_interval
                    ):
                        # Server-driven cadence: unsolicited SNAPSHOT
                        # every checkpoint_interval input bytes.
                        try:
                            pump = await self._checkpoint_session(
                                writer, session, pump, loop, send_lock
                            )
                        except QUERY_ERRORS as exc:
                            session, pump, discarding = await self._fail_query(
                                writer, session, pump, exc, send_lock
                            )

                elif frame.type is FrameType.FINISH:
                    if discarding:
                        # End of the query whose ERROR was already sent.
                        discarding = False
                        continue
                    if publishing is not None:
                        try:
                            summary = await loop.run_in_executor(
                                self._executor, publishing.finish
                            )
                        except QUERY_ERRORS as exc:
                            publishing, _ = await self._fail_stream(
                                writer, publishing, exc, send_lock
                            )
                            discarding = False
                            continue
                        publishing = None
                        # Subscribers get their RESULT/FINISH frames
                        # from their own pumps; the publisher gets the
                        # stream-level summary.
                        await self._send(
                            writer,
                            FrameType.FINISH,
                            json.dumps(summary, sort_keys=True),
                            lock=send_lock,
                        )
                        continue
                    if session is None:
                        await self._send(
                            writer,
                            FrameType.ERROR,
                            "FINISH before OPEN",
                            lock=send_lock,
                        )
                        return
                    try:
                        result = await loop.run_in_executor(
                            self._executor, session.finish
                        )
                    except QUERY_ERRORS as exc:
                        # Nothing of this query follows FINISH: no drain.
                        session, pump, _ = await self._fail_query(
                            writer, session, pump, exc, send_lock
                        )
                        discarding = False
                        continue
                    session = None
                    # The pump ends once the closed output channel is
                    # empty; wait so RESULT frames never trail FINISH.
                    if pump is not None:
                        await pump
                        pump = None
                    await self._send_result(writer, result, send_lock)

                else:
                    await self._send(
                        writer,
                        FrameType.ERROR,
                        f"unexpected {frame.type.name} frame",
                        lock=send_lock,
                    )
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; the finally block reclaims the slot
        finally:
            if read_task is not None:
                read_task.cancel()
            if pump is not None:
                pump.cancel()
            if sub_pump is not None:
                sub_pump.cancel()
            if session is not None:
                # Never block the event loop on the worker join.  The
                # abort also closes the output channel, releasing the
                # pump's executor thread.
                self._executor.submit(session.abort)
            if subscription is not None:
                # Idempotent after a delivered FINISH (the slot is
                # released exactly once); otherwise drops this
                # subscriber out of the shared stream — the driver
                # keeps serving the others.
                self._executor.submit(subscription.abort)
            if publishing is not None:
                # Publisher gone mid-stream: the whole stream fails
                # (subscribers see the input break off, their pumps
                # report ERROR) and the name is freed.
                self._executor.submit(publishing.abort)

    async def _checkpoint_session(
        self, writer, session, pump, loop, lock
    ) -> asyncio.Task:
        """Freeze *session*, drain its output, send one SNAPSHOT frame,
        thaw — the checkpoint sequence of DESIGN.md §16.

        The pump is awaited *between* freeze and encode: freezing marks
        the output channel, the pump forwards the produced tail and
        exits, so by the time the blob is cut every produced result
        byte is on the wire **before** the SNAPSHOT frame — frame order
        is what makes the reported output offset the exact replay
        point.  Returns the fresh pump of the thawed session; raises
        ``SessionStateError`` (→ ERROR) for non-checkpointable
        sessions, leaving the session untouched.
        """
        await loop.run_in_executor(self._executor, session.freeze)
        if pump is not None:
            await pump  # drains the frozen channel's tail, then ends
        blob = await loop.run_in_executor(self._executor, session.snapshot)
        self.metrics.checkpoint_taken(len(blob))
        session.last_checkpoint_bytes = session.bytes_fed
        payload = (
            SNAPSHOT_OFFSETS.pack(session.bytes_fed, session.delivered_bytes)
            + blob
        )
        await self._send(writer, FrameType.SNAPSHOT, payload, lock=lock)
        await loop.run_in_executor(self._executor, session.thaw)
        return asyncio.create_task(
            self._pump_results(writer, session, loop, lock)
        )

    async def _pump_results(self, writer, session, loop, lock) -> None:
        """Forward output fragments as RESULT frames while they are
        produced — the session's output channel blocks the executor
        thread until a fragment exists, and ends the loop (``None``)
        once evaluation finished and everything was taken (or the
        session froze for a checkpoint and the tail was drained)."""
        while True:
            part = await loop.run_in_executor(
                self._executor, session.next_output, self.result_frame_size
            )
            if part is None:
                return
            if not part:
                continue
            # The output channel is bytes-native (UTF-8-encoded once as
            # produced, cut at character boundaries): the fragment IS
            # the frame payload — no re-encode pass, and bytes_out
            # counts the actual wire bytes by construction.
            self.metrics.add_bytes_out(len(part))
            if self.fault_plan is not None and await self._faulty_result(
                writer, part, lock
            ):
                return
            try:
                await self._send(writer, FrameType.RESULT, part, lock=lock)
            except ConnectionError:
                return  # client gone; the handler cleans up
            session.delivered_bytes += len(part)

    async def _faulty_result(self, writer, part, lock) -> bool:
        """Apply the fault plan to one outbound RESULT fragment.

        Returns ``True`` when the pump must stop (the harness severed
        the connection).  Delay and duplicate happen around the normal
        send in :meth:`_pump_results`; truncation writes a deliberately
        short frame and kills the transport, simulating a worker dying
        mid-frame.
        """
        action = self.fault_plan.on_result(len(part))
        if action.delay_s:
            await asyncio.sleep(action.delay_s)
        if action.truncate_to is not None:
            async with lock:
                writer.write(
                    HEADER.pack(int(FrameType.RESULT), len(part))
                    + part[: action.truncate_to]
                )
                with contextlib.suppress(ConnectionError):
                    await writer.drain()
            writer.close()
            return True
        if action.duplicate:
            with contextlib.suppress(ConnectionError):
                await self._send(writer, FrameType.RESULT, part, lock=lock)
        return False

    async def _pump_subscriber(self, writer, subscription, loop, lock) -> None:
        """Serve one shared-stream subscription end to end: forward
        RESULT frames while the publisher's stream runs, then — once
        the output channel drains — collect the subscriber's result
        and send its FINISH summary (or the ERROR that felled the
        stream or this plan's evaluation)."""
        while True:
            part = await loop.run_in_executor(
                self._executor, subscription.next_output, self.result_frame_size
            )
            if part is None:
                break
            if not part:
                continue
            self.metrics.add_bytes_out(len(part))
            try:
                await self._send(writer, FrameType.RESULT, part, lock=lock)
            except ConnectionError:
                return  # client gone; the handler cleans up
        try:
            result = await loop.run_in_executor(
                self._executor, subscription.finish
            )
        except QUERY_ERRORS as exc:
            self._executor.submit(subscription.abort)
            with contextlib.suppress(ConnectionError):
                await self._send(writer, FrameType.ERROR, _one_line(exc), lock=lock)
            return
        with contextlib.suppress(ConnectionError):
            await self._send_result(writer, result, lock)

    async def _fail_stream(self, writer, stream, exc, lock) -> tuple[None, bool]:
        """Send ERROR for a failed shared stream and enter drain mode.

        The abort tears the stream down; each subscriber's pump
        reports the failure on its own connection (their pipelines
        saw the same broadcast error)."""
        self._executor.submit(stream.abort)
        await self._send(writer, FrameType.ERROR, _one_line(exc), lock=lock)
        return None, True

    async def _fail_query(
        self, writer, session, pump, exc, lock
    ) -> tuple[None, None, bool]:
        """Send ERROR, reclaim the slot, and switch to draining mode.

        The abort closes the session's output channel, which ends the
        pump; awaiting it *before* the ERROR frame guarantees no stale
        RESULT frame can trail the error on the wire.  The abort
        itself is awaited too, so by the time the client reads the
        ERROR the slot is reclaimed and the failed-session counter is
        settled — a STATS request right after the ERROR sees them.
        """
        aborted = asyncio.get_running_loop().run_in_executor(
            self._executor, session.abort
        )
        if pump is not None:
            await pump
        await aborted
        await self._send(writer, FrameType.ERROR, _one_line(exc), lock=lock)
        return None, None, True

    async def _send_result(self, writer, result, lock) -> None:
        # The RESULT pump already streamed everything it saw; what is
        # left is the tail finish() drained after the pump stopped.
        output = result.output
        # Slice by characters so every RESULT frame stays valid UTF-8 on
        # its own (the byte size is bounded by 4x the character count);
        # the bytes_out metric counts actual wire bytes.
        step = self.result_frame_size
        for start in range(0, len(output), step):
            part = output[start : start + step].encode("utf-8")
            self.metrics.add_bytes_out(len(part))
            await self._send(writer, FrameType.RESULT, part, lock=lock)
        summary = json.dumps(
            {
                "elapsed_s": round(result.stats.elapsed, 6),
                "watermark": result.stats.watermark,
                "tokens": result.stats.tokens,
                "output_chars": result.stats.output_chars,
            },
            sort_keys=True,
        )
        await self._send(writer, FrameType.FINISH, summary, lock=lock)


class ServerThread:
    """A :class:`GCXServer` running on a background daemon thread.

    Blocking code — tests, ``benchmarks/bench_server.py``, the CI smoke
    job — uses this as a context manager::

        with ServerThread(max_sessions=8) as handle:
            client = GCXClient(handle.host, handle.port)
            ...
    """

    def __init__(self, **server_kwargs):
        self._server_kwargs = server_kwargs
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self.server: GCXServer | None = None
        self.host: str | None = None
        self.port: int | None = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="gcx-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread did not start within 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):  # loop already closed
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._startup_error = exc
        finally:
            self._ready.set()

    async def _amain(self) -> None:
        server = GCXServer(**self._server_kwargs)
        await server.start()
        self.server = server
        self.host = server.host
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.shutdown()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
