"""Length-prefixed framing for the query service.

One frame is a 5-byte header — one byte of frame type, four bytes of
big-endian payload length — followed by the payload::

    +------+----------------+=================+
    | type | payload length |     payload     |
    | (1B) |   (4B, BE)     | (length bytes)  |
    +------+----------------+=================+

Textual payloads (queries, XML chunks, results, error messages, JSON
stats) are UTF-8.  The same encoding serves three transports: the
asyncio server (:func:`read_frame`), the blocking client
(:func:`read_frame_blocking`) and anything byte-at-a-time
(:class:`FrameDecoder`), so the tests can drive each against the
others.

Conversation shape (client frames on the left, server on the right)::

    OPEN(query)       ->
                      <-  OPENED(session id)   | BUSY(reason) | ERROR(msg)
    CHUNK(xml)*       ->
                      <-  RESULT(output part)*     (streamed as produced)
    FINISH()          ->
                      <-  RESULT(output part)*
                      <-  FINISH(session stats JSON)  | ERROR(msg)
    STATS()           ->
                      <-  STATS(metrics JSON)

The STATS payload is one server's metrics snapshot — except against a
worker pool (``gcx serve --workers N``, DESIGN.md §14), where the
answering worker returns the fleet-aggregated shape instead:
``{"fleet": {...}, "totals": {...}, "per_worker": [...]}`` — totals
summed (peaks/percentiles as maxima) across every worker plus the
per-worker breakdown, whichever worker the connection landed on.

Shared streams (DESIGN.md §13) replace OPEN with a pub/sub pair: any
number of subscriber connections attach queries to a *named* stream,
then one publisher connection feeds the document once and every
subscriber receives its own results — one lex+project pass serving
all of them::

    SUBSCRIBE("name\n" + query)  ->
                      <-  OPENED(subscriber id) | BUSY(reason) | ERROR(msg)
                      ...            (the publisher's stream runs) ...
                      <-  RESULT(output part)*     (this query's results)
                      <-  FINISH(session stats JSON)  | ERROR(msg)

    PUBLISH(name)     ->
                      <-  OPENED(stream name) | BUSY(reason) | ERROR(msg)
    CHUNK(xml)*       ->          (first CHUNK seals the subscriber set)
    FINISH()          ->
                      <-  FINISH(stream summary JSON)  | ERROR(msg)

A failed SUBSCRIBE or PUBLISH behaves exactly like a failed OPEN: the
server answers ERROR or BUSY and *drains* that conversation's
pipelined CHUNK/FINISH frames, so the connection stays usable.

Results stream: RESULT frames may arrive any time after OPENED — the
server emits output fragments while the client is still sending CHUNK
frames — so a client that interleaves other requests (e.g. STATS) on a
connection with a session in flight must be prepared to see RESULT
frames first.  The blocking :class:`~repro.server.client.GCXClient`
handles this by draining inbound frames into an ordered queue while it
sends (so pipelining can never wedge against the stream) and consuming
them in ``finish()`` — or earlier via ``recv_result()``.

Checkpoint/resume (DESIGN.md §16): a CHECKPOINT frame *before* OPEN
marks the next session checkpointable (pinning it to the snapshot-safe
table kernels); a CHECKPOINT frame *during* the session freezes it,
drains the produced output, and answers with one SNAPSHOT frame whose
payload is ``SNAPSHOT_OFFSETS`` (input offset = document bytes
consumed, output offset = result bytes already sent on this
connection) followed by the versioned snapshot blob.  Because frames
are ordered, by the time the client reads the SNAPSHOT it has read
exactly ``output offset`` result bytes — the pair is the replay
point.  The server may also emit SNAPSHOT unsolicited, either on a
configured byte interval (``gcx serve --checkpoint-interval``) or when
a draining worker pushes state out before shutting down.  RESUME
carries a previously received blob and behaves exactly like OPEN
(OPENED / BUSY / ERROR), rebuilding the session — on any worker, in
any process — at the checkpointed offsets::

    CHECKPOINT()      ->                       (empty: arm checkpointing)
    OPEN(query)       ->
                      <-  OPENED(session id)
    CHUNK(xml)*       ->
                      <-  RESULT(output part)*
    CHECKPOINT()      ->
                      <-  RESULT(output part)*   (the drained tail)
                      <-  SNAPSHOT(offsets + blob)
    ...                                        (connection dies) ...
    RESUME(blob)      ->                       (fresh connection/worker)
                      <-  OPENED(session id)
    CHUNK(xml)*       ->                       (replay from input offset)
    FINISH()          ->
                      <-  RESULT(output part)*
                      <-  FINISH(session stats JSON)

A BUSY or a query ERROR (compile failure, malformed XML, evaluation
error) leaves the connection usable: the client may OPEN again
(overload is refusal, never queueing — DESIGN.md §8).  Two failure
classes close the connection instead: framing-level
:class:`ProtocolError` cases, because byte streams cannot resynchronise
after a corrupt header, and protocol-state violations (OPEN while a
session is active, CHUNK/FINISH before any OPEN), because they mean
the client's view of the conversation has diverged from the server's.
"""

from __future__ import annotations

import enum
import struct
from typing import NamedTuple

#: default TCP port of the service (``gcx serve`` / ``gcx stats``)
DEFAULT_PORT = 7733

#: frame header: type byte + big-endian payload length
HEADER = struct.Struct(">BI")

#: refuse frames larger than this (a corrupt header otherwise asks the
#: reader to allocate gigabytes)
MAX_PAYLOAD = 64 * 1024 * 1024

#: prefix of every SNAPSHOT payload: input offset (bytes of the
#: document fed before the checkpoint) and output offset (bytes of
#: result already sent on this connection), both big-endian u64; the
#: versioned snapshot blob (DESIGN.md §16) follows
SNAPSHOT_OFFSETS = struct.Struct(">QQ")


class ProtocolError(ValueError):
    """The byte stream is not a well-formed frame sequence."""


class FrameType(enum.IntEnum):
    """Wire identifiers of the frame kinds."""

    OPEN = 1  # client: start a session; payload = query text
    CHUNK = 2  # client: next XML input chunk
    FINISH = 3  # client: end of input / server: end of results (+stats)
    RESULT = 4  # server: one part of the serialized output
    ERROR = 5  # server: evaluation or protocol failure, one line
    BUSY = 6  # server: admission refused, retry later
    STATS = 7  # client: request metrics / server: metrics JSON
    OPENED = 8  # server: session admitted; payload = session id
    SUBSCRIBE = 9  # client: attach a query to a shared stream;
    #                payload = "stream name\n" + query text
    PUBLISH = 10  # client: feed a shared stream; payload = stream name
    CHECKPOINT = 11  # client: before OPEN (empty payload) — open the
    #                  next session checkpointable; during a session —
    #                  snapshot it now (DESIGN.md §16)
    SNAPSHOT = 12  # server: one session checkpoint; payload =
    #                SNAPSHOT_OFFSETS(input offset, output offset) +
    #                the versioned snapshot blob
    RESUME = 13  # client: rebuild a session from a snapshot blob;
    #              payload = the blob; answered like OPEN (OPENED/BUSY)


class Frame(NamedTuple):
    """One decoded frame."""

    type: FrameType
    payload: bytes

    @property
    def text(self) -> str:
        """The payload decoded as UTF-8."""
        return self.payload.decode("utf-8")


def _check_header(type_byte: int, length: int, max_payload: int) -> FrameType:
    try:
        ftype = FrameType(type_byte)
    except ValueError:
        raise ProtocolError(f"unknown frame type {type_byte}") from None
    if length > max_payload:
        raise ProtocolError(
            f"frame payload of {length} bytes exceeds the {max_payload} limit"
        )
    return ftype


def encode_frame(ftype: FrameType, payload: bytes | str = b"") -> bytes:
    """Serialize one frame; *payload* strings are UTF-8 encoded."""
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the {MAX_PAYLOAD} limit"
        )
    return HEADER.pack(int(ftype), len(payload)) + payload


class FrameDecoder:
    """Incremental decoder: feed bytes in arbitrary pieces, get frames.

    Mirrors the incremental lexer's contract — any split point is fine,
    state survives between ``feed()`` calls.
    """

    def __init__(self, max_payload: int = MAX_PAYLOAD):
        self._buffer = bytearray()
        self._max_payload = max_payload

    def feed(self, data: bytes) -> list[Frame]:
        """Decode every complete frame now available."""
        self._buffer.extend(data)
        frames: list[Frame] = []
        while len(self._buffer) >= HEADER.size:
            type_byte, length = HEADER.unpack_from(self._buffer)
            ftype = _check_header(type_byte, length, self._max_payload)
            end = HEADER.size + length
            if len(self._buffer) < end:
                break
            frames.append(Frame(ftype, bytes(self._buffer[HEADER.size : end])))
            del self._buffer[:end]
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)


async def read_frame(reader, max_payload: int = MAX_PAYLOAD) -> Frame | None:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``None`` on a clean end of stream (connection closed at a
    frame boundary); raises :class:`ProtocolError` when the stream ends
    mid-frame or the header is invalid.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed inside a frame header") from None
    type_byte, length = HEADER.unpack(header)
    ftype = _check_header(type_byte, length, max_payload)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed inside a frame payload") from None
    return Frame(ftype, payload)


def _recv_exactly(sock, count: int) -> bytes:
    """Blocking read of exactly *count* bytes (short only at EOF)."""
    parts = bytearray()
    while len(parts) < count:
        piece = sock.recv(count - len(parts))
        if not piece:
            break
        parts.extend(piece)
    return bytes(parts)


def read_frame_blocking(sock, max_payload: int = MAX_PAYLOAD) -> Frame | None:
    """Read one frame from a blocking socket (``None`` at clean EOF)."""
    header = _recv_exactly(sock, HEADER.size)
    if not header:
        return None
    if len(header) < HEADER.size:
        raise ProtocolError("connection closed inside a frame header")
    type_byte, length = HEADER.unpack(header)
    ftype = _check_header(type_byte, length, max_payload)
    payload = _recv_exactly(sock, length)
    if len(payload) < length:
        raise ProtocolError("connection closed inside a frame payload")
    return Frame(ftype, payload)
