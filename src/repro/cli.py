"""Command-line interface: run queries, explain static analysis,
profile buffer behaviour, generate workloads.

Subcommands::

    gcx run QUERY.xq INPUT.xml [--engine gcx] [--stats] [--chunk-size N]
            [--interpreted] [--no-codegen] [--no-fused-lexer]
    gcx multiplex INPUT.xml -q Q1.xq -q Q2.xq ... [--stats]
    gcx explain QUERY.xq
    gcx profile QUERY.xq INPUT.xml [--width 72] [--height 16]
    gcx xmark --scale 1.0 [--seed 42]
    gcx serve [--host H] [--port P] [--max-sessions N] [--max-streams N]
              [--workers N] [--pool-mode auto|reuseport|fdpass]
              [--checkpoint-interval N] [--fault-plan SPEC]
    gcx stats [--host H] [--port P] [--json]

``multiplex`` evaluates several queries over one document in a single
shared lex+project pass (DESIGN.md §13): every query subscribes to one
:class:`~repro.multiplex.session.SharedStreamSession`, subtrees no
query needs are skipped once at lexer speed for all of them, and each
query's output is byte-identical to running it alone.

(``gcx`` is the console script; ``python -m repro.cli`` works too.)

Documents are never slurped — and never decoded up front: the input
file is read **in binary** in ``--chunk-size`` pieces and pushed
through a :class:`~repro.core.session.StreamSession` (GCX-family
engines) or the engine's chunked pull path (the DOM baseline), so the
CLI exercises exactly the compile-once / stream-many, bytes-domain
architecture the library exposes (DESIGN.md §11); the lexer scans the
raw bytes and decodes text lazily.  ``serve`` exposes the
same session layer over TCP (DESIGN.md §8); ``stats`` asks a running
server for its live metrics.

Failures — unparsable queries, malformed or truncated XML
(:class:`~repro.xmlio.errors.XmlSyntaxError`), a starved incremental
lexer (:class:`~repro.xmlio.errors.XmlStarvedError`), evaluation
errors — exit non-zero with a one-line ``error:`` message, never a
traceback.

``serve --workers N`` (N > 1) runs the multi-process worker pool
(DESIGN.md §14): N shared-nothing server processes on one listen port
— SO_REUSEPORT where the platform has it, the supervisor's fd-passing
acceptor otherwise — scaling throughput past the GIL.  ``gcx stats``
against a pool reports fleet-wide totals plus the per-worker
breakdown, whichever worker answers.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.baselines import (
    FluxLikeEngine,
    FullDomEngine,
    ProjectionOnlyEngine,
)
from repro.bench.reporting import ascii_plot
from repro.core.engine import DEFAULT_CHUNK_SIZE, GCXEngine, _file_chunks
from repro.core.evaluator import EvaluationError
from repro.core.session import SessionStateError
from repro.xmark.generator import XMARK_DTD, generate_document
from repro.server.protocol import DEFAULT_PORT
from repro.xmlio.dtd import parse_dtd
from repro.xmlio.errors import XmlStarvedError

#: everything a command may fail with that deserves a one-line
#: ``error:`` message and exit code 1 instead of a traceback (the
#: ValueError family covers XmlSyntaxError, XQueryParseError,
#: AnalysisError, ...; OSError covers missing files and refused
#: connections)
_CLI_ERRORS = (
    ValueError,
    OSError,
    XmlStarvedError,
    EvaluationError,
    SessionStateError,
)


def _make_engine(
    name: str,
    interpreted: bool = False,
    codegen: bool = True,
    fused_lexer: bool = True,
):
    """Build the chosen engine; *interpreted* selects the oracle pair
    ``compiled=False, compiled_eval=False`` (interpreting NFA projector
    + interpreting pull evaluator) on the GCX-family engines for A/B
    runs against the compiled kernels — it bypasses the generated-code
    kernels with them.  *codegen* = False keeps the compiled table
    kernels but disables the per-plan generated code (DESIGN.md §12);
    *fused_lexer* = False keeps the generated kernels but feeds them
    per-event instead of through the fused batch lexer front-end
    (DESIGN.md §15).  The DOM baseline has none of these tiers, so the
    flags are no-ops there."""
    toggles = (
        {"compiled": False, "compiled_eval": False}
        if interpreted
        else {"codegen": codegen, "fused_lexer": fused_lexer}
    )
    if name == "gcx":
        return GCXEngine(**toggles)
    if name == "dom":
        return FullDomEngine()
    if name == "projection":
        return ProjectionOnlyEngine(**toggles)
    if name == "flux":
        return FluxLikeEngine(dtd=parse_dtd(XMARK_DTD), **toggles)
    raise ValueError(f"unknown engine {name!r}")


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _evaluate(engine, query_text, input_path, chunk_size, output_stream=None):
    """Compile once, then stream the document file through the engine.

    The file is opened in binary: chunks are raw UTF-8 bytes all the
    way to the lexer (invalid UTF-8 in decoded content surfaces as an
    ``XmlSyntaxError`` with a byte position, not a decode crash)."""
    chunk_size = max(1, chunk_size)
    with open(input_path, "rb") as handle:
        if isinstance(engine, GCXEngine):
            session = engine.session(
                engine.compile(query_text), output_stream=output_stream
            )
            for chunk in _file_chunks(handle, chunk_size):
                session.feed(chunk)
            return session.finish()
        return engine.run(
            engine.compile(query_text), handle, chunk_size=chunk_size
        )


def _cmd_run(args) -> int:
    engine = _make_engine(
        args.engine,
        interpreted=args.interpreted,
        codegen=args.codegen,
        fused_lexer=args.fused_lexer,
    )
    # GCX-family sessions emit results incrementally to stdout; the
    # DOM baseline has no streaming output, so its result is printed
    # after the fact.
    stream = sys.stdout if isinstance(engine, GCXEngine) else None
    result = _evaluate(
        engine, _read(args.query), args.input, args.chunk_size, stream
    )
    print(result.output)
    if args.stats:
        print(result.stats.summary(), file=sys.stderr)
    return 0


def _cmd_multiplex(args) -> int:
    """N queries, one document, one shared lex+project pass."""
    engine = _make_engine("gcx", codegen=args.codegen)
    shared = engine.shared_session()
    subscribers = [
        (path, shared.subscribe(engine.compile(_read(path))))
        for path in args.query
    ]
    chunk_size = max(1, args.chunk_size)
    with open(args.input, "rb") as handle:
        for chunk in _file_chunks(handle, chunk_size):
            shared.feed(chunk)
    summary = shared.finish()
    for path, subscriber in subscribers:
        result = subscriber.finish()
        if len(subscribers) > 1:
            print(f"=== {path}")
        print(result.output)
        if args.stats:
            print(f"{path}: {result.stats.summary()}", file=sys.stderr)
    if args.stats:
        print(
            f"stream: {json.dumps(summary, sort_keys=True)}", file=sys.stderr
        )
    return 0


def _cmd_explain(args) -> int:
    compiled = GCXEngine().compile(_read(args.query))
    print(compiled.describe())
    return 0


def _cmd_profile(args) -> int:
    engine = _make_engine(args.engine)
    result = _evaluate(engine, _read(args.query), args.input, args.chunk_size)
    print(
        ascii_plot(
            result.stats.series,
            width=args.width,
            height=args.height,
            title=f"buffer profile ({engine.name})",
        )
    )
    print(result.stats.summary())
    return 0


def _cmd_xmark(args) -> int:
    sys.stdout.write(generate_document(args.scale, args.seed))
    return 0


def _cmd_serve(args) -> int:
    if args.workers > 1:
        return _serve_pool(args)
    import asyncio

    from repro.server.service import GCXServer

    fault_plan = None
    if args.fault_plan:
        from repro.testing.faults import FaultPlan

        fault_plan = FaultPlan.parse(args.fault_plan)

    async def _main() -> None:
        server = GCXServer(
            host=args.host,
            port=args.port,
            max_sessions=args.max_sessions,
            max_streams=args.max_streams,
            checkpoint_interval=args.checkpoint_interval,
            fault_plan=fault_plan,
        )
        await server.start()
        print(
            f"gcx server listening on {server.host}:{server.port} "
            f"(max {server.scheduler.max_sessions} concurrent sessions, "
            f"{server.scheduler.max_streams} shared streams; "
            "Ctrl-C to stop)",
            file=sys.stderr,
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("gcx server stopped", file=sys.stderr)
    return 0


def _serve_pool(args) -> int:
    """``serve --workers N``: supervise the worker pool until a
    signal arrives, then drain gracefully (DESIGN.md §14)."""
    import signal
    import threading

    from repro.server.workers import WorkerSupervisor

    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_args: stop.set())
    supervisor = WorkerSupervisor(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_sessions=args.max_sessions,
        max_streams=args.max_streams,
        mode=args.pool_mode,
        checkpoint_interval=args.checkpoint_interval,
        fault_plan=args.fault_plan,
    )
    supervisor.start()
    try:
        print(
            f"gcx worker pool listening on {supervisor.host}:{supervisor.port} "
            f"({supervisor.workers} workers, mode {supervisor.mode}, "
            f"max {supervisor.max_sessions} concurrent sessions fleet-wide; "
            "Ctrl-C to drain and stop)",
            file=sys.stderr,
            flush=True,
        )
        stop.wait()
        print("gcx worker pool draining", file=sys.stderr, flush=True)
    finally:
        supervisor.stop(graceful=True)
    print("gcx worker pool stopped", file=sys.stderr)
    return 0


def _flatten(mapping: dict, prefix: str = ""):
    """``{'a': {'b': 1}} -> [('a.b', 1)]``; list items get ``[i]``."""
    for key, value in sorted(mapping.items()):
        if isinstance(value, dict):
            yield from _flatten(value, f"{prefix}{key}.")
        elif isinstance(value, list):
            for index, item in enumerate(value):
                if isinstance(item, dict):
                    yield from _flatten(item, f"{prefix}{key}[{index}].")
                else:
                    yield f"{prefix}{key}[{index}]", item
        else:
            yield f"{prefix}{key}", value


def _stats_tables(snapshot: dict) -> str:
    """Render a metrics snapshot as aligned per-section tables.

    Top-level scalars (``uptime_s``, ``peak_buffer_watermark``) form
    the first table; every nested section — ``sessions``, ``bytes``,
    ``dfa``, ``codegen``, ``multiplex``, ... — becomes its own block
    with the keys flattened relative to the section and the values
    right-aligned, so ``gcx stats`` reads as a report rather than a
    JSON dump.  A fleet snapshot (``gcx stats`` against
    ``serve --workers N``) renders the same way: ``fleet`` and
    ``totals`` as sections, the ``per_worker`` list as one section
    with ``[i].``-prefixed rows.
    """
    blocks: list[tuple[str, list[tuple[str, str]]]] = []
    scalars = [
        (key, str(value))
        for key, value in sorted(snapshot.items())
        if not isinstance(value, (dict, list))
    ]
    if scalars:
        blocks.append(("server", scalars))
    for key, value in sorted(snapshot.items()):
        if isinstance(value, (dict, list)):
            section = value if isinstance(value, dict) else {key: value}
            rows = [(name, str(cell)) for name, cell in _flatten(section)]
            blocks.append((key, rows))
    lines: list[str] = []
    for title, rows in blocks:
        if lines:
            lines.append("")
        lines.append(title)
        if not rows:
            lines.append("  (empty)")
            continue
        name_width = max(len(name) for name, _ in rows)
        value_width = max(len(cell) for _, cell in rows)
        for name, cell in rows:
            lines.append(f"  {name:<{name_width}}  {cell:>{value_width}}")
    return "\n".join(lines)


def _cmd_stats(args) -> int:
    from repro.server.client import GCXClient

    with GCXClient(args.host, args.port, timeout=args.timeout) as client:
        snapshot = client.stats()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(_stats_tables(snapshot))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gcx",
        description="GCX reproduction: streaming XQuery with active GC",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="evaluate a query over a document")
    run.add_argument("query", help="path to the query file")
    run.add_argument("input", help="path to the XML input")
    run.add_argument(
        "--engine",
        default="gcx",
        choices=("gcx", "dom", "projection", "flux"),
        help="engine to use",
    )
    run.add_argument("--stats", action="store_true", help="print run statistics")
    run.add_argument(
        "--interpreted",
        action="store_true",
        help="run the interpreting oracles (NFA projector + pull "
        "evaluator) instead of the compiled kernels, for A/B runs; "
        "output is byte-identical",
    )
    run.add_argument(
        "--no-codegen",
        dest="codegen",
        action="store_false",
        help="keep the compiled table kernels but disable the per-plan "
        "generated-code kernels, for A/B runs; output is byte-identical "
        "(--interpreted bypasses codegen implicitly)",
    )
    run.add_argument(
        "--no-fused-lexer",
        dest="fused_lexer",
        action="store_false",
        help="keep the generated kernels but feed the projector "
        "per-event instead of through the fused batch lexer front-end, "
        "for A/B runs; output is byte-identical",
    )
    run.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="input read size in bytes (default %(default)s)",
    )
    run.set_defaults(func=_cmd_run)

    multiplex = sub.add_parser(
        "multiplex",
        help="evaluate several queries over one document in one shared pass",
    )
    multiplex.add_argument("input", help="path to the XML input")
    multiplex.add_argument(
        "-q",
        "--query",
        action="append",
        required=True,
        help="path to a query file (repeat for each subscribed query)",
    )
    multiplex.add_argument(
        "--stats",
        action="store_true",
        help="print per-query and stream statistics to stderr",
    )
    multiplex.add_argument(
        "--no-codegen",
        dest="codegen",
        action="store_false",
        help="disable the per-plan generated-code kernels, for A/B runs",
    )
    multiplex.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="input read size in bytes (default %(default)s)",
    )
    multiplex.set_defaults(func=_cmd_multiplex)

    explain = sub.add_parser(
        "explain", help="show roles and the rewritten query (static analysis)"
    )
    explain.add_argument("query", help="path to the query file")
    explain.set_defaults(func=_cmd_explain)

    profile = sub.add_parser(
        "profile", help="plot buffered nodes per input token"
    )
    profile.add_argument("query", help="path to the query file")
    profile.add_argument("input", help="path to the XML input")
    profile.add_argument(
        "--engine",
        default="gcx",
        choices=("gcx", "dom", "projection", "flux"),
    )
    profile.add_argument("--width", type=int, default=72)
    profile.add_argument("--height", type=int, default=16)
    profile.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="input read size in bytes (default %(default)s)",
    )
    profile.set_defaults(func=_cmd_profile)

    xmark = sub.add_parser("xmark", help="generate an XMark-style document")
    xmark.add_argument("--scale", type=float, default=1.0)
    xmark.add_argument("--seed", type=int, default=42)
    xmark.set_defaults(func=_cmd_xmark)

    serve = sub.add_parser(
        "serve", help="serve concurrent streaming sessions over TCP"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="admission bound: concurrent sessions beyond this get BUSY "
        "(default %(default)s)",
    )
    serve.add_argument(
        "--max-streams",
        type=int,
        default=16,
        help="bound on concurrently live shared (SUBSCRIBE/PUBLISH) "
        "streams; subscribers count against --max-sessions "
        "(default %(default)s)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes sharing the listen port; >1 runs the "
        "shared-nothing pool (SO_REUSEPORT or fd-passing) and splits "
        "--max-sessions across workers (default %(default)s)",
    )
    serve.add_argument(
        "--pool-mode",
        default="auto",
        choices=("auto", "reuseport", "fdpass"),
        help="how pool workers share the port: kernel SO_REUSEPORT "
        "load balancing or the supervisor's fd-passing acceptor "
        "(default: reuseport where available)",
    )
    serve.add_argument(
        "--checkpoint-interval",
        type=int,
        default=0,
        help="push an unsolicited SNAPSHOT frame to the client every "
        "N input bytes per session (0 = only on client CHECKPOINT "
        "frames); sessions are then opened checkpointable "
        "(default %(default)s)",
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        help="deterministic fault injection, e.g. "
        "'seed=42,kill_at=100000' — SIGKILL the worker when its fed "
        "input crosses the offset; see repro.testing.faults for the "
        "full key set (testing only)",
    )
    serve.set_defaults(func=_cmd_serve)

    stats = sub.add_parser(
        "stats", help="print a running server's live metrics"
    )
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=DEFAULT_PORT)
    stats.add_argument("--timeout", type=float, default=10.0)
    stats.add_argument(
        "--json", action="store_true", help="raw JSON instead of one line per metric"
    )
    stats.set_defaults(func=_cmd_stats)

    return parser


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except _CLI_ERRORS as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
