"""XMark queries adapted to the GCX fragment.

The paper evaluates Q1, Q6, Q8, Q13 and Q20, "adapted as described at
[the GCX download page], to match the XQuery fragment supported by
GCX".  That page is offline; the adaptations below are re-derived from
the original XMark queries under the fragment's restrictions (no
aggregation, no let, single construction level per expression) so that
each query keeps the *operator shape* that drives its buffer profile:

* **Q1** — exact-match filter on people (streamable, tiny buffer);
* **Q6** — descendant-axis scan of the regions section (streamable;
  FluXQuery reports n/a on the descendant axis);
* **Q8** — value join people ⋈ closed_auctions (inherently blocking,
  buffer linear in the input);
* **Q13** — reconstruction of australian items (streamable, subtree
  copies);
* **Q20** — income classification of people (streamable with multiple
  sequential passes over the people section, answered from the buffer).

Aggregations (``count`` in Q6/Q8/Q20) are replaced by emitting the
counted items themselves — the data flow and therefore the buffering
behaviour is unchanged; only the final fold is missing (GCX "does not
yet cover aggregation").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AdaptedQuery:
    """One adapted XMark query with its provenance documented."""

    key: str
    title: str
    original: str
    text: str
    #: expected buffering class from the paper: "streaming" queries run
    #: in O(1)-ish buffer, "blocking" ones are linear in the input.
    blocking: bool
    #: FluXQuery cannot run descendant-axis queries (Figure 5 "n/a").
    flux_supported: bool = True


Q1 = AdaptedQuery(
    key="q1",
    title="Name of the person with id person0",
    original=(
        'for $b in /site/people/person[@id="person0"] return $b/name/text()'
    ),
    text="""
<result> {
  for $p in /site/people/person return
    if ($p/@id = "person0") then <name>{ $p/name/text() }</name> else ()
} </result>
""",
    blocking=False,
)

Q6 = AdaptedQuery(
    key="q6",
    title="Items anywhere below the regions section",
    original="for $b in //site/regions return count($b//item)",
    text="""
<result> {
  for $r in /site/regions return
    for $i in $r/descendant::item return
      <item>{ $i/name/text() }</item>
} </result>
""",
    blocking=False,
    flux_supported=False,
)

Q8 = AdaptedQuery(
    key="q8",
    title="Purchases per person (value join people x closed_auctions)",
    original=(
        "for $p in /site/people/person let $a := for $t in "
        "/site/closed_auctions/closed_auction where $t/buyer/@person = $p/@id "
        'return $t return <item person="{$p/name/text()}">{count($a)}</item>'
    ),
    text="""
<result> {
  for $s in /site return
    for $cl in $s/closed_auctions return
      for $pp in $s/people return
        for $p in $pp/person return
          <item>{
            <person>{ $p/name/text() }</person>,
            for $t in $cl/closed_auction return
              if ($t/buyer/@person = $p/@id) then $t/price else ()
          }</item>
} </result>
""",
    blocking=True,
)

Q13 = AdaptedQuery(
    key="q13",
    title="Names and descriptions of items in Australia",
    original=(
        "for $i in /site/regions/australia/item return "
        '<item name="{$i/name/text()}">{$i/description}</item>'
    ),
    text="""
<result> {
  for $i in /site/regions/australia/item return
    <item>{ $i/name, $i/description }</item>
} </result>
""",
    blocking=False,
)

Q20 = AdaptedQuery(
    key="q20",
    title="People classified by income bracket (single pass)",
    original=(
        "count(...) per income bracket over /site/people/person/profile/@income"
    ),
    text="""
<result> {
  for $p in /site/people/person return
    <person>{
      $p/name,
      if ($p/profile/@income >= 100000) then <preferred></preferred> else (),
      if ($p/profile/@income >= 30000 and $p/profile/@income < 100000)
        then <standard></standard> else (),
      if ($p/profile/@income < 30000) then <challenge></challenge> else (),
      if (not(exists $p/profile/@income)) then <na></na> else ()
    }</person>
} </result>
""",
    blocking=False,
)

#: Q20 restructured to group output by bracket instead of by person.
#: Requires four sequential passes over the people section; GCX answers
#: passes 2–4 from its buffer, so the whole section stays buffered
#: until the last pass — a workload where active GC degenerates to
#: static projection.  Used by the ablation benchmark, not by the
#: Figure 5 reproduction (the paper's constant 1.2 MB for Q20 implies
#: the authors' adaptation was single-pass).
Q20_GROUPED = AdaptedQuery(
    key="q20-grouped",
    title="People per income bracket (grouped output, four passes)",
    original=Q20.original,
    text="""
<result> {
  <preferred>{
    for $p in /site/people/person return
      if ($p/profile/@income >= 100000) then $p/name else ()
  }</preferred>,
  <standard>{
    for $p in /site/people/person return
      if ($p/profile/@income >= 30000 and $p/profile/@income < 100000)
      then $p/name else ()
  }</standard>,
  <challenge>{
    for $p in /site/people/person return
      if ($p/profile/@income < 30000) then $p/name else ()
  }</challenge>,
  <na>{
    for $p in /site/people/person return
      if (not(exists $p/profile/@income)) then $p/name else ()
  }</na>
} </result>
""",
    blocking=True,
)


# ---------------------------------------------------------------------------
# Original-form queries (extension).
#
# Our engine extends the GCX fragment with aggregation and attribute
# value templates (README "Limitations", DESIGN.md §6 moved these from
# out-of-scope to implemented extension), which lets the XMark queries
# run much closer to their published form than the 2007 adaptations.
# ---------------------------------------------------------------------------

Q6_ORIGINAL = AdaptedQuery(
    key="q6-original",
    title="Number of items below the regions section (original count form)",
    original="for $b in //site/regions return count($b//item)",
    text="""
<result> {
  for $r in /site/regions return count($r//item)
} </result>
""",
    blocking=False,
    flux_supported=False,
)

Q8_ORIGINAL = AdaptedQuery(
    key="q8-original",
    title="Purchase count per person (original count + name attribute)",
    original=(
        "for $p in /site/people/person let $a := for $t in "
        "/site/closed_auctions/closed_auction where $t/buyer/@person = $p/@id "
        'return $t return <item person="{$p/name/text()}">{count($a)}</item>'
    ),
    text="""
<result> {
  for $s in /site return
    for $cl in $s/closed_auctions return
      for $pp in $s/people return
        for $p in $pp/person return
          <item person="{$p/name/text()}">{
            for $t in $cl/closed_auction return
              if ($t/buyer/@person = $p/@id) then <sale>{ $t/price/text() }</sale>
              else ()
          }</item>
} </result>
""",
    blocking=True,
)

Q13_ORIGINAL = AdaptedQuery(
    key="q13-original",
    title="Australian items with the name as attribute (original form)",
    original=(
        "for $i in /site/regions/australia/item return "
        '<item name="{$i/name/text()}">{$i/description}</item>'
    ),
    text="""
<result> {
  for $i in /site/regions/australia/item return
    <item name="{$i/name/text()}">{ $i/description }</item>
} </result>
""",
    blocking=False,
)

# Q20's original form counts a *filtered* FLWOR result per bracket
# (count over an inner for/where), which aggregation over paths cannot
# express; it stays adapted (single pass, Q20 above) with the grouped
# variant Q20_GROUPED as the multi-pass study.

ADAPTED_QUERIES: dict[str, AdaptedQuery] = {
    query.key: query for query in (Q1, Q6, Q8, Q13, Q20)
}

EXTRA_QUERIES: dict[str, AdaptedQuery] = {
    query.key: query
    for query in (Q20_GROUPED, Q6_ORIGINAL, Q8_ORIGINAL, Q13_ORIGINAL)
}

#: 8 distinct single-pass queries over the people / closed_auctions
#: sections: the shared-stream workload (DESIGN.md §13) used by the CI
#: multiplex smoke leg and the ``server_8queries_shared`` benchmark.
#: All are streamable with tiny buffers, so what the benchmark compares
#: is exactly the work multiplexing de-duplicates — the per-session
#: lex+project pass — not evaluator-side buffering artifacts.
MULTIPLEX_QUERIES: list[str] = [
    "for $p in /site/people/person return $p/name",
    "for $p in /site/people/person return $p/emailaddress",
    "for $p in /site/people/person return"
    " <contact>{$p/name, $p/phone}</contact>",
    "let $n := count(/site/people/person) return <people>{$n}</people>",
    "for $c in /site/closed_auctions/closed_auction return $c/price",
    "for $c in /site/closed_auctions/closed_auction return"
    " <sale>{$c/price, $c/date}</sale>",
    "for $c in /site/closed_auctions/closed_auction return $c/quantity",
    "let $n := count(/site/closed_auctions/closed_auction)"
    " return <sold>{$n}</sold>",
]
