"""Deterministic XMark-style auction document generator.

The real XMark generator (``xmlgen``) produces an internet-auction
document whose root ``site`` contains six sections in a fixed order —
regions, categories, catgraph, people, open_auctions, closed_auctions
(paper, Section 3: "The XMark DTD divides the document into six larger
sections").  The GCX buffer plots (Figure 4) depend on precisely this
section order and on the join cardinality between people and closed
auctions, so the generator reproduces that skeleton with deterministic
pseudo-random content.

A ``scale`` of 1.0 yields a document of roughly 60 kB; scale grows all
section cardinalities linearly, like XMark's scaling factor.  Use
:func:`scale_for_bytes` to pick a scale for a target document size.
"""

from __future__ import annotations

import random

_WORDS = (
    "gold silver vintage rare antique crafted polished signed boxed mint "
    "classic limited edition original restored ornate carved painted "
    "handmade imported ceramic wooden brass copper ivory jade pearl"
).split()

_FIRST_NAMES = (
    "Ada Alan Barbara Carl Dana Edsger Fran Grace Hal Irene John Kim "
    "Leslie Maurice Niklaus Olga Peter Quinn Rosa Stan Tony Ursula "
    "Vint Wanda Xia Yves Zoe"
).split()

_LAST_NAMES = (
    "Lovelace Turing Liskov Sagan Scott Dijkstra Allen Hopper Abelson "
    "Greif McCarthy Knuth Lamport Wilkes Wirth Sokolova Naur Quincey "
    "Parks Ulam Hoare Franklin Cerf Wozniak Jiang Meyer Zuse"
).split()

_COUNTRIES = "Germany France Japan Brazil Canada Kenya Australia".split()
_CITIES = "Saarbruecken Lyon Osaka Recife Toronto Nairobi Perth".split()

_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

#: Minimal XMark-style DTD: enough structure for the FluX-like
#: baseline's schema knowledge (sequence order of the six sections).
XMARK_DTD = """
<!ELEMENT site (regions, categories, catgraph, people,
                open_auctions, closed_auctions)>
<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>
<!ELEMENT item (location, quantity, name, payment, description, shipping,
                incategory*, mailbox)>
<!ELEMENT categories (category*)>
<!ELEMENT category (name, description)>
<!ELEMENT catgraph (edge*)>
<!ELEMENT people (person*)>
<!ELEMENT person (name, emailaddress, phone, address?, creditcard?, profile?)>
<!ELEMENT address (street, city, country, zipcode)>
<!ELEMENT profile (interest*, education?, business, age?)>
<!ELEMENT open_auctions (open_auction*)>
<!ELEMENT open_auction (initial, bidder*, current, itemref, seller,
                        annotation, quantity, type)>
<!ELEMENT bidder (date, increase, personref)>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction (seller, buyer, itemref, price, date, quantity,
                          type, annotation)>
<!ELEMENT annotation (author, description, happiness)>
"""


class XMarkGenerator:
    """Generates one deterministic auction document.

    Args:
        scale: linear section-size multiplier (1.0 ≈ 60 kB).
        seed: PRNG seed; identical (scale, seed) pairs produce
            byte-identical documents.
    """

    def __init__(self, scale: float = 1.0, seed: int = 42):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed
        self._rng = random.Random(seed)
        self.n_items_per_region = max(1, round(8 * scale))
        self.n_categories = max(1, round(6 * scale))
        self.n_edges = max(1, round(8 * scale))
        self.n_persons = max(2, round(25 * scale))
        self.n_open = max(1, round(12 * scale))
        self.n_closed = max(1, round(10 * scale))

    # -- vocabulary helpers --------------------------------------------------

    def _words(self, low: int, high: int) -> str:
        count = self._rng.randint(low, high)
        return " ".join(self._rng.choice(_WORDS) for _ in range(count))

    def _person_name(self) -> str:
        return (
            f"{self._rng.choice(_FIRST_NAMES)} {self._rng.choice(_LAST_NAMES)}"
        )

    # -- sections -----------------------------------------------------------

    def generate(self) -> str:
        """Produce the complete document as a string."""
        self._rng = random.Random(self.seed)
        out: list[str] = ["<site>"]
        self._regions(out)
        self._categories(out)
        self._catgraph(out)
        self._people(out)
        self._open_auctions(out)
        self._closed_auctions(out)
        out.append("</site>")
        return "".join(out)

    def _regions(self, out: list[str]) -> None:
        out.append("<regions>")
        item_id = 0
        for region in _REGIONS:
            out.append(f"<{region}>")
            for _ in range(self.n_items_per_region):
                self._item(out, item_id, region)
                item_id += 1
            out.append(f"</{region}>")
        out.append("</regions>")

    def _item(self, out: list[str], item_id: int, region: str) -> None:
        rng = self._rng
        out.append(f'<item id="item{item_id}">')
        out.append(f"<location>{rng.choice(_COUNTRIES)}</location>")
        out.append(f"<quantity>{rng.randint(1, 5)}</quantity>")
        out.append(f"<name>{self._words(2, 4)}</name>")
        out.append("<payment>Creditcard</payment>")
        out.append(
            "<description><parlist><listitem><text>"
            + self._words(4, 12)
            + "</text></listitem></parlist></description>"
        )
        out.append("<shipping>Will ship internationally</shipping>")
        category = rng.randrange(max(1, self.n_categories))
        out.append(f'<incategory category="category{category}"></incategory>')
        out.append(
            "<mailbox><mail>"
            f"<from>{self._person_name()}</from>"
            f"<to>{self._person_name()}</to>"
            f"<date>{self._date()}</date>"
            f"<text>{self._words(3, 8)}</text>"
            "</mail></mailbox>"
        )
        out.append("</item>")

    def _categories(self, out: list[str]) -> None:
        out.append("<categories>")
        for i in range(self.n_categories):
            out.append(
                f'<category id="category{i}">'
                f"<name>{self._words(1, 2)}</name>"
                f"<description><text>{self._words(3, 8)}</text></description>"
                "</category>"
            )
        out.append("</categories>")

    def _catgraph(self, out: list[str]) -> None:
        out.append("<catgraph>")
        for _ in range(self.n_edges):
            a = self._rng.randrange(self.n_categories)
            b = self._rng.randrange(self.n_categories)
            out.append(f'<edge from="category{a}" to="category{b}"></edge>')
        out.append("</catgraph>")

    def _people(self, out: list[str]) -> None:
        rng = self._rng
        out.append("<people>")
        for i in range(self.n_persons):
            out.append(f'<person id="person{i}">')
            out.append(f"<name>{self._person_name()}</name>")
            out.append(
                f"<emailaddress>mailto:person{i}@auction.example</emailaddress>"
            )
            out.append(f"<phone>+49 {rng.randint(100, 999)} {rng.randint(1000, 9999)}</phone>")
            if rng.random() < 0.6:
                out.append(
                    "<address>"
                    f"<street>{rng.randint(1, 99)} {rng.choice(_WORDS)} St</street>"
                    f"<city>{rng.choice(_CITIES)}</city>"
                    f"<country>{rng.choice(_COUNTRIES)}</country>"
                    f"<zipcode>{rng.randint(10000, 99999)}</zipcode>"
                    "</address>"
                )
            if rng.random() < 0.5:
                out.append(
                    f"<creditcard>{rng.randint(1000, 9999)} "
                    f"{rng.randint(1000, 9999)}</creditcard>"
                )
            if rng.random() < 0.85:
                income = rng.randint(9000, 200000)
                out.append(f'<profile income="{income}">')
                for _ in range(rng.randint(0, 3)):
                    cat = rng.randrange(self.n_categories)
                    out.append(f'<interest category="category{cat}"></interest>')
                if rng.random() < 0.5:
                    out.append("<education>Graduate School</education>")
                out.append(f"<business>{'Yes' if rng.random() < 0.3 else 'No'}</business>")
                if rng.random() < 0.7:
                    out.append(f"<age>{rng.randint(18, 80)}</age>")
                out.append("</profile>")
            out.append("</person>")
        out.append("</people>")

    def _open_auctions(self, out: list[str]) -> None:
        rng = self._rng
        total_items = self.n_items_per_region * len(_REGIONS)
        out.append("<open_auctions>")
        for i in range(self.n_open):
            out.append(f'<open_auction id="open_auction{i}">')
            out.append(f"<initial>{rng.randint(1, 300)}.{rng.randint(0, 99):02d}</initial>")
            for _ in range(rng.randint(0, 4)):
                out.append(
                    "<bidder>"
                    f"<date>{self._date()}</date>"
                    f"<increase>{rng.randint(1, 50)}.00</increase>"
                    f'<personref person="person{rng.randrange(self.n_persons)}">'
                    "</personref>"
                    "</bidder>"
                )
            out.append(f"<current>{rng.randint(1, 600)}.00</current>")
            out.append(f'<itemref item="item{rng.randrange(total_items)}"></itemref>')
            out.append(f'<seller person="person{rng.randrange(self.n_persons)}"></seller>')
            out.append(
                "<annotation>"
                f'<author person="person{rng.randrange(self.n_persons)}"></author>'
                f"<description><text>{self._words(3, 10)}</text></description>"
                "<happiness>7</happiness>"
                "</annotation>"
            )
            out.append(f"<quantity>{rng.randint(1, 3)}</quantity>")
            out.append("<type>Regular</type>")
            out.append("</open_auction>")
        out.append("</open_auctions>")

    def _closed_auctions(self, out: list[str]) -> None:
        rng = self._rng
        total_items = self.n_items_per_region * len(_REGIONS)
        out.append("<closed_auctions>")
        for i in range(self.n_closed):
            out.append("<closed_auction>")
            out.append(f'<seller person="person{rng.randrange(self.n_persons)}"></seller>')
            out.append(f'<buyer person="person{rng.randrange(self.n_persons)}"></buyer>')
            out.append(f'<itemref item="item{rng.randrange(total_items)}"></itemref>')
            out.append(f"<price>{rng.randint(5, 800)}.{rng.randint(0, 99):02d}</price>")
            out.append(f"<date>{self._date()}</date>")
            out.append(f"<quantity>{rng.randint(1, 3)}</quantity>")
            out.append("<type>Regular</type>")
            out.append(
                "<annotation>"
                f'<author person="person{rng.randrange(self.n_persons)}"></author>'
                f"<description><text>{self._words(3, 10)}</text></description>"
                "<happiness>9</happiness>"
                "</annotation>"
            )
            out.append("</closed_auction>")
        out.append("</closed_auctions>")

    def _date(self) -> str:
        rng = self._rng
        return f"{rng.randint(1, 28):02d}/{rng.randint(1, 12):02d}/{rng.randint(1999, 2006)}"


def generate_document(scale: float = 1.0, seed: int = 42) -> str:
    """Generate one XMark-style document (see :class:`XMarkGenerator`)."""
    return XMarkGenerator(scale, seed).generate()


def scale_for_bytes(target_bytes: int, seed: int = 42) -> float:
    """Scale whose generated document is approximately *target_bytes*.

    Calibrated with a probe at scale 1.0 (document size grows linearly
    in scale, so one probe suffices).
    """
    probe = len(generate_document(1.0, seed))
    return max(target_bytes / probe, 0.05)
