"""XMark-style workload: data generator and adapted benchmark queries.

The paper evaluates GCX on documents produced by the XMark benchmark
generator [20] and on XMark queries "adapted … to match the XQuery
fragment supported by GCX" (the original adaptations were published on
the now-offline GCX download page; ours are re-derived and documented
per query in :mod:`repro.xmark.queries`).
"""

from repro.xmark.generator import XMarkGenerator, generate_document, XMARK_DTD
from repro.xmark.queries import ADAPTED_QUERIES, EXTRA_QUERIES, AdaptedQuery

__all__ = [
    "ADAPTED_QUERIES",
    "EXTRA_QUERIES",
    "AdaptedQuery",
    "XMARK_DTD",
    "XMarkGenerator",
    "generate_document",
]
