"""The compile-once plan layer.

Splitting compilation from execution is what lets one process serve
many streams: parsing, normalization, static analysis and signOff
insertion run **once** per distinct query, producing an immutable
:class:`QueryPlan` that any number of concurrent runs and
:class:`~repro.core.session.StreamSession` instances share.  The
runtime state of a run (matcher instances, buffer, statistics) is
created per stream from the plan — never stored on it.

:class:`PlanCache` is a thread-safe LRU over plans, keyed by the
*normalized* query text: two sources that differ only in whitespace —
or that normalize to the same core form — share a single plan.  Its
hit/miss counters make the compile-once guarantee observable (and
testable): running one query over N documents must report exactly one
miss.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.analysis import StaticAnalysis
from repro.core.codegen import PlanKernels
from repro.core.matcher import PathDFA, PathMatcher
from repro.core.program import OperatorProgram
from repro.xquery import ast as q
from repro.xquery.pretty import pretty_print


@dataclass
class QueryPlan:
    """A query after static analysis, ready to run over any stream.

    Plans are immutable in practice: every field is produced by the
    compiler and never mutated by the runtime, so a plan may be shared
    freely between concurrent sessions.  ``matcher`` included: it holds
    only the compiled projection paths — per-stream match state lives
    in the projector's state-instance lists — so every run and session
    of this plan drives the same matcher object.

    ``dfa`` is the compiled kernel of the same projection paths
    (DESIGN.md §9): a lazy DFA whose states are interned multisets of
    NFA instances and whose per-``(state, tag)`` transitions are
    memoized on first sight.  The memo is *logically* immutable — it
    only ever gains entries, each derived deterministically from the
    immutable path set — so one dfa is shared by every run, session and
    server connection of the plan (the PlanCache hands all of them the
    same object), and a tag seen by any session is a dict-lookup for
    all of them from then on.  Per-stream state is a stack of state
    ids in the projector, never stored here.
    """

    source: str
    parsed: q.Query
    normalized: q.Query
    analysis: StaticAnalysis
    rewritten: q.Query
    matcher: PathMatcher
    #: lazy-DFA twin of ``matcher``; ``None`` only for hand-built plans
    #: of tools that bypass the engine compiler (they fall back to the
    #: interpreting projector).
    dfa: PathDFA | None = None
    #: operator program of ``rewritten`` (DESIGN.md §10) — the compiled
    #: evaluation kernel, immutable and shared by every run and session
    #: of the plan.  ``None`` when the query is outside the compiled
    #: fragment or the plan was hand-built; runs then fall back to the
    #: interpreting :class:`~repro.core.evaluator.PullEvaluator`.
    program: OperatorProgram | None = None
    #: per-plan generated-code kernels (DESIGN.md §12): specialized
    #: Python for the projector/evaluator hot loops, exec-compiled once
    #: at plan-compile time inside the cache's single-flight.  ``None``
    #: when generation declined (or for hand-built plans); runs then
    #: use the table-driven kernels — the fallback is silent and
    #: byte-identical.  Evicting the plan drops the kernels and their
    #: source with it; re-admission regenerates them exactly once.
    kernels: PlanKernels | None = None

    def matcher_spec(self) -> list[tuple[str, object]]:
        """The ``(role name, projection path)`` pairs behind
        ``matcher`` — kept public for tools that build their own."""
        return [(role.name, role.path) for role in self.analysis.roles]

    def canonical_text(self) -> str:
        """Whitespace-stable text of the normalized query — the cache
        key under which equivalent sources share one plan."""
        return pretty_print(self.normalized)

    def describe(self) -> str:
        """Role table plus the rewritten query — the textual analogue
        of the demo's static-analysis visualisation (Figure 3(a))."""
        return (
            "roles:\n"
            + self.analysis.describe_roles()
            + "\n\nrewritten query:\n"
            + pretty_print(self.rewritten)
        )


#: Backwards-compatible name: the pre-refactor engine called its
#: compiled form ``CompiledQuery``.
CompiledQuery = QueryPlan


@dataclass(frozen=True)
class PlanCacheStats:
    """Counters of one :class:`PlanCache` (a snapshot)."""

    hits: int
    misses: int
    #: distinct sources that normalized to an already-cached plan
    canonical_reuses: int
    size: int
    capacity: int

    @property
    def compiles(self) -> int:
        """Number of times the full compile pipeline actually ran."""
        return self.misses

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"canonical_reuses={self.canonical_reuses} "
            f"size={self.size}/{self.capacity}"
        )


class _Flight:
    """One in-progress compilation that other threads can wait on."""

    __slots__ = ("event", "error")

    def __init__(self):
        self.event = threading.Event()
        self.error: BaseException | None = None


class PlanCache:
    """Thread-safe LRU cache of :class:`QueryPlan` objects.

    Two-level keying: the primary key is the **exact** source text
    (cheap to probe, and never wrong — whitespace can be significant
    inside string literals, so the source is never normalized), and on
    a primary miss the query's canonical (parsed + normalized) text is
    consulted, so differently-written but equivalent queries converge
    on one shared plan object without re-running static analysis.

    Compilation is *single-flight*: when N threads miss on the same
    plan at once, exactly one runs the static analysis while the others
    wait on its result — a guarantee a multi-session server relies on,
    since 64 connections opening the same query must not trigger 64
    analyses.  ``misses`` therefore counts actual compilations.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        #: primary key -> (plan, canonical key)
        self._plans: OrderedDict[tuple, tuple[QueryPlan, tuple]] = OrderedDict()
        #: canonical key -> primary key currently holding the plan
        self._canonical: dict[tuple, tuple] = {}
        #: compilation key -> in-progress flight other threads join
        self._inflight: dict[tuple, _Flight] = {}
        self._hits = 0
        self._misses = 0
        self._canonical_reuses = 0

    @staticmethod
    def source_key(query_text: str, namespace: str = "") -> tuple:
        """Exact-text key for *query_text*.

        Deliberately *not* whitespace-normalized: whitespace may be
        significant inside string literals, so textual equivalence is
        decided on the normalized query (the canonical key), never by
        mangling the source.  *namespace* separates engines whose
        compile pipelines differ (e.g. the FluX-like baseline coarsens
        signOff placements) when they share one cache.
        """
        return (namespace, query_text)

    def get_or_compile(
        self,
        query_text: str,
        compile_fn,
        namespace: str = "",
        canonicalize_fn=None,
    ) -> QueryPlan:
        """Return the cached plan for *query_text*, compiling on a miss.

        ``compile_fn(query_text) -> QueryPlan`` runs outside the lock.
        ``canonicalize_fn(query_text) -> (canonical_text, context)``,
        when given, lets the cache recognise a differently-written
        equivalent of an already-cached query *before* the expensive
        analysis runs (the context — e.g. the parsed/normalized ASTs —
        is passed back to ``compile_fn(query_text, context)`` on a real
        miss so the work is not repeated).  Concurrent first
        compilations of one plan are single-flighted: one thread runs
        ``compile_fn`` while the rest wait and then take the cached
        result (a compile failure is re-raised in every waiter).
        """
        key = self.source_key(query_text, namespace)
        with self._lock:
            entry = self._plans.get(key)
            if entry is not None:
                self._plans.move_to_end(key)
                self._hits += 1
                return entry[0]
        context = None
        canonical = None
        if canonicalize_fn is not None:
            canonical_text, context = canonicalize_fn(query_text)
            canonical = (namespace, canonical_text)
        # Flights dedupe on the canonical key when one is known (so
        # differently-written equivalents share one compilation) and on
        # the exact source key otherwise.
        flight_key = canonical if canonical is not None else key
        while True:
            with self._lock:
                entry = self._plans.get(key)
                if entry is not None:
                    self._plans.move_to_end(key)
                    self._hits += 1
                    return entry[0]
                if canonical is not None:
                    holder = self._canonical.get(canonical)
                    if holder is not None and holder in self._plans:
                        # A differently-written equivalent is already
                        # cached; alias this source to the existing plan
                        # without re-running the analysis.
                        plan = self._plans[holder][0]
                        self._canonical_reuses += 1
                        self._store(key, plan, canonical)
                        return plan
                flight = self._inflight.get(flight_key)
                if flight is None:
                    flight = _Flight()
                    self._inflight[flight_key] = flight
                    break  # this thread owns the compilation
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            # The owner stored its plan before signalling; loop to
            # re-probe (and recompile only if it was already evicted).
        try:
            plan = (
                compile_fn(query_text)
                if context is None
                else compile_fn(query_text, context)
            )
            if canonical is None:
                canonical = (namespace, plan.canonical_text())
            with self._lock:
                self._misses += 1
                holder = self._canonical.get(canonical)
                if holder is not None and holder in self._plans:
                    plan = self._plans[holder][0]
                self._store(key, plan, canonical)
            return plan
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            # Always retire the flight and wake the waiters — a failure
            # anywhere above (compile, canonical_text, storage) must
            # never leave them blocked on an unsignalled event.
            with self._lock:
                self._inflight.pop(flight_key, None)
            flight.event.set()

    def _store(self, key: tuple, plan: QueryPlan, canonical: tuple) -> None:
        """Insert under the lock and evict past capacity."""
        self._plans[key] = (plan, canonical)
        self._plans.move_to_end(key)
        self._canonical.setdefault(canonical, key)
        while len(self._plans) > self.capacity:
            old_key, (_plan, old_canonical) = self._plans.popitem(last=False)
            if self._canonical.get(old_canonical) == old_key:
                # Remap the canonical alias to a surviving holder of
                # the same plan, if any — equivalent sources that are
                # still cached keep serving canonical hits.
                for other_key, (_p, other_canonical) in self._plans.items():
                    if other_canonical == old_canonical:
                        self._canonical[old_canonical] = other_key
                        break
                else:
                    del self._canonical[old_canonical]

    def dfa_stats(self) -> dict:
        """Aggregate lazy-DFA memo occupancy over the cached plans.

        Server observability (the STATS frame): how many distinct plans
        carry a compiled kernel, and how many DFA states / memoized
        transitions their shared memos hold in total.  Plans cached
        under several source keys (canonical aliases) count once.
        """
        with self._lock:
            plans = {id(plan): plan for plan, _canonical in self._plans.values()}
        snapshot = {
            "plans": 0,
            "states": 0,
            "element_transitions": 0,
            "text_transitions": 0,
        }
        for plan in plans.values():
            dfa = getattr(plan, "dfa", None)
            if dfa is None:
                continue
            stats = dfa.stats()
            snapshot["plans"] += 1
            snapshot["states"] += stats["states"]
            snapshot["element_transitions"] += stats["element_transitions"]
            snapshot["text_transitions"] += stats["text_transitions"]
        return snapshot

    def program_stats(self) -> dict:
        """Aggregate operator-program occupancy over the cached plans.

        The evaluation-side twin of :meth:`dfa_stats` (server
        observability): how many distinct plans carry a compiled
        operator program, how many ops those programs hold in total,
        and how many plans fell back to the interpreting evaluator.
        Plans cached under several source keys count once.
        """
        with self._lock:
            plans = {id(plan): plan for plan, _canonical in self._plans.values()}
        snapshot = {"plans": 0, "ops": 0, "slots": 0, "fallbacks": 0}
        for plan in plans.values():
            program = getattr(plan, "program", None)
            if program is None:
                snapshot["fallbacks"] += 1
                continue
            snapshot["plans"] += 1
            snapshot["ops"] += program.op_count
            snapshot["slots"] += program.n_slots
        return snapshot

    def codegen_stats(self) -> dict:
        """Aggregate generated-kernel occupancy over the cached plans.

        The codegen twin of :meth:`dfa_stats` / :meth:`program_stats`
        (server observability, DESIGN.md §12): how many plans carry
        generated kernels on each side, the total generated-source
        footprint in characters, and how many plans fell back entirely
        to the table-driven kernels.  Plans cached under several source
        keys count once; evicting a plan removes its kernels (and their
        source chars) from this snapshot.
        """
        with self._lock:
            plans = {id(plan): plan for plan, _canonical in self._plans.values()}
        snapshot = {
            "plans": 0,
            "projector_kernels": 0,
            "evaluator_kernels": 0,
            "lexer_kernels": 0,
            "source_chars": 0,
            "fallbacks": 0,
        }
        for plan in plans.values():
            kernels = getattr(plan, "kernels", None)
            if kernels is None:
                snapshot["fallbacks"] += 1
                continue
            snapshot["plans"] += 1
            snapshot["projector_kernels"] += kernels.projector is not None
            snapshot["evaluator_kernels"] += kernels.evaluator is not None
            snapshot["lexer_kernels"] += (
                getattr(kernels, "lexer", None) is not None
            )
            snapshot["source_chars"] += kernels.source_chars
        return snapshot

    def clear(self) -> None:
        """Drop all cached plans and reset the counters."""
        with self._lock:
            self._plans.clear()
            self._canonical.clear()
            self._hits = 0
            self._misses = 0
            self._canonical_reuses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    @property
    def stats(self) -> PlanCacheStats:
        with self._lock:
            return PlanCacheStats(
                hits=self._hits,
                misses=self._misses,
                canonical_reuses=self._canonical_reuses,
                size=len(self._plans),
                capacity=self.capacity,
            )
